//! Resolved-IR interpreter: the hot execution path of the reproduction.
//!
//! # Why this pass exists
//!
//! The original tree-walking interpreter ([`crate::interp`], kept as the
//! differential oracle) performs a string-keyed `HashMap` scan over the
//! scope stack for **every** variable read and write, a string lookup for
//! every call, and a global field-name map probe for every member access.
//! Since the paper's entire evaluation (matmul, heat, satellite, LAMA)
//! runs through the interpreter, that dispatch overhead — not the
//! runtime or the schedule — dominated every measured number.
//!
//! This module lowers each function **once** into a resolved execution
//! form before interpretation:
//!
//! * **Slot-indexed frames** — identifiers become `Local(slot)` /
//!   `Global(index)` indices into a flat `Vec<Scalar>` frame. No hashing,
//!   no scope-stack scan, and spawning a parallel iteration's private
//!   frame is a `memcpy` instead of a `HashMap` clone.
//! * **Interned symbols** — function names and struct fields are interned
//!   to `u32` symbols ([`cfront::intern`]); calls resolve at lower time to
//!   a function id (or a builtin symbol), and member accesses resolve to a
//!   constant slot offset keyed by `(struct, field)` — fixing the latent
//!   aliasing between same-named fields of different structs.
//! * **Pre-resolved literals** — string literals and `printf` format
//!   strings are captured at lower time; `sizeof` folds to a constant.
//! * **Lower-time OpenMP recognition** — `#pragma omp parallel for`
//!   regions are matched against the following loop once, so the parallel
//!   driver starts from pre-parsed bounds instead of re-inspecting the
//!   AST.
//!
//! # Pure-call memoization
//!
//! On top of the resolved IR sits a bounded memo cache for calls to
//! functions the `purec_core::purity` pass **verified** pure. This is the
//! paper's contract made into a runtime win: per the `pure`/`c_ffi_pure`
//! optimization rule, *consecutive calls to a pure function with equal
//! arguments may be eliminated* — verified purity means the result
//! depends only on the arguments, so the second evaluation can be a table
//! lookup.
//!
//! ## Safety argument (why purity ⇒ cacheable)
//!
//! Verified purity alone is *not* sufficient for whole-program
//! memoization: the verifier (matching GCC `pure` semantics) permits
//! reading global memory and reading through `pure` pointer parameters,
//! and both can change between non-consecutive calls. The resolver
//! therefore narrows the cacheable set to functions that are
//! **const-like** — a fixpoint over the call graph requiring each
//! function to
//!
//! 1. be verified pure by the purity pass (no side effects, proven);
//! 2. take only by-value scalar parameters and return a scalar (so the
//!    key `(fn, coerced args)` fully determines the input state and the
//!    cached value aliases nothing);
//! 3. reference no globals and perform no memory operation at all (no
//!    arrays, structs, string literals, derefs, `&`, or allocation), so
//!    the result cannot observe mutable state and a cache hit cannot skip
//!    an observable effect;
//! 4. call only other cacheable functions or allocation-free math
//!    builtins.
//!
//! Under 1–4 a call's value is a pure function of its key, and skipping
//! the body changes nothing observable except the executed-operation
//! counters — exactly the `modulo cache hits` caveat the differential
//! tests allow. Hits and misses are surfaced in
//! [`crate::value::CounterSnapshot`] as `memo_hits` / `memo_misses`.
//!
//! The cache is bounded ([`MEMO_CAPACITY`] entries); once full it stops
//! inserting (no eviction), which keeps hot entries — the recursion base
//! cases that dominate e.g. `fib` — resident.
//!
//! # Scoping: one deliberate divergence from the oracle
//!
//! The resolver implements **C block scoping**: each `{}` block (and
//! each `for` header) opens a scope, shadowing allocates a fresh slot,
//! and a name is invisible outside its declaring scope. The legacy
//! tree-walker instead keeps one flat name map per function call (and
//! scans caller frames), so for programs that *shadow* a name in a
//! nested block, or read a variable after its scope ends, the oracle
//! returns the pre-C89 "last writer wins" answer while this engine
//! returns the ISO-C one (or an "unknown variable" error for
//! use-after-scope). The differential guarantee — bit-identical
//! `RunResult`s — therefore holds for programs without block-level
//! shadowing or out-of-scope reads, which includes everything the
//! chain's codegen emits and the paper's evaluation programs. See
//! `scoping_divergence_from_oracle_is_iso_c` in the tests for the
//! exact behaviours.

use crate::builtins::{call_builtin, format_printf};
use crate::cache::ClockCache;
use crate::interp::{
    parse_omp_parallel_for, InterpOptions, RaceVerdict, RunResult, RuntimeError, Trap, VerdictMap,
};
use crate::value::{Counters, FuelBudget, Memory, Ptr, RaceAccumulator, Scalar, TrackSets};
use cfront::ast::*;
use cfront::intern::{Interner, Symbol};
use cfront::span::Span;
use machine::OmpSchedule;
use machine::{global_pool, parallel_for, parallel_for_pooled, PureFuture, ThreadPool};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

type RtResult<T> = Result<T, RuntimeError>;

/// Bound on memo-cache entries; at capacity, CLOCK eviction recycles
/// cold entries (counted as `memo_evictions`).
pub const MEMO_CAPACITY: usize = 1 << 16;

// ---------------------------------------------------------------------------
// Resolved IR
// ---------------------------------------------------------------------------

/// Value-coercion performed on declaration init, cast and parameter
/// binding — the resolved form of [`Type`]-directed `coerce`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Coerce {
    /// Pointer or otherwise untouched target.
    None,
    /// `float` / `double` target: integer values become floats.
    ToFloat,
    /// Integer target: float values truncate.
    ToInt,
}

impl Coerce {
    fn of(ty: &Type) -> Coerce {
        if ty.is_pointer() {
            return Coerce::None;
        }
        match &ty.base {
            BaseType::Float | BaseType::Double => Coerce::ToFloat,
            b if b.is_integer() => Coerce::ToInt,
            _ => Coerce::None,
        }
    }

    #[inline]
    pub(crate) fn apply(self, v: Scalar) -> Scalar {
        match (self, v) {
            (Coerce::ToFloat, Scalar::I(i)) => Scalar::F(i as f64),
            (Coerce::ToInt, Scalar::F(f)) => Scalar::I(f as i64),
            _ => v,
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) struct RExpr {
    pub(crate) kind: RExprKind,
    pub(crate) span: Span,
}

#[derive(Debug, Clone)]
pub(crate) enum RExprKind {
    Int(i64),
    Float(f64),
    /// Pre-captured string literal (one char per slot + NUL at runtime).
    Str(Arc<str>),
    Local(u32),
    Global(u32),
    /// Identifier that resolved to nothing — errors when evaluated,
    /// matching the tree-walker's runtime "unknown variable".
    Unknown(Symbol),
    Unary(UnOp, Box<RExpr>),
    Binary(BinOp, Box<RExpr>, Box<RExpr>),
    Assign {
        op: Option<BinOp>,
        place: RPlace,
        value: Box<RExpr>,
    },
    /// `++` / `--` in their four forms.
    IncDec(UnOp, RPlace),
    AddrOf(RPlace),
    Ternary(Box<RExpr>, Box<RExpr>, Box<RExpr>),
    /// Call to a user-defined function, resolved to its id.
    CallUser {
        fid: u32,
        args: Vec<RExpr>,
    },
    /// Call that did not resolve to a definition: builtin or undefined,
    /// decided at runtime by name.
    CallBuiltin {
        name: Symbol,
        args: Vec<RExpr>,
    },
    /// `printf` with an optionally pre-captured format string.
    Printf {
        fmt: Option<Arc<str>>,
        fmt_expr: Option<Box<RExpr>>,
        args: Vec<RExpr>,
    },
    /// Call through a non-identifier callee — unsupported, runtime error.
    IndirectCall,
    /// Rvalue use of an lvalue expression (index / member access).
    Load(RPlace),
    Cast(Coerce, Box<RExpr>),
    /// `{a, b, c}` initializer tree (lowered from the `__initlist` marker).
    InitList(Vec<RExpr>),
    Comma(Box<RExpr>, Box<RExpr>),
}

#[derive(Debug, Clone)]
pub(crate) struct RPlace {
    pub(crate) kind: RPlaceKind,
    pub(crate) span: Span,
}

#[derive(Debug, Clone)]
pub(crate) enum RPlaceKind {
    Local(u32),
    Global(u32),
    Unknown(Symbol),
    Index(Box<RExpr>, Box<RExpr>),
    Deref(Box<RExpr>),
    /// Member access with the `(struct, field)`-resolved constant offset.
    Member {
        base: Box<RExpr>,
        offset: i64,
    },
    /// Member whose struct could not be determined and whose name is
    /// ambiguous or unknown — errors when evaluated.
    MemberUnknown {
        base: Box<RExpr>,
        name: Symbol,
    },
    NotLvalue,
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum SlotRef {
    Local(u32),
    Global(u32),
}

#[derive(Debug, Clone)]
pub(crate) struct RDecl {
    pub(crate) target: SlotRef,
    pub(crate) kind: RDeclKind,
}

#[derive(Debug, Clone)]
pub(crate) enum RDeclKind {
    Array {
        dims: Vec<RExpr>,
        init: Option<RExpr>,
    },
    Struct {
        size: usize,
    },
    Scalar {
        init: Option<RExpr>,
        coerce: Coerce,
    },
}

#[derive(Debug, Clone)]
pub(crate) struct RStmt {
    pub(crate) kind: RStmtKind,
    pub(crate) span: Span,
}

#[derive(Debug, Clone)]
pub(crate) enum RStmtKind {
    Decl(Vec<RDecl>),
    Expr(Option<RExpr>),
    Block(Vec<RStmt>),
    If {
        cond: RExpr,
        then_branch: Box<RStmt>,
        else_branch: Option<Box<RStmt>>,
    },
    While {
        cond: RExpr,
        body: Box<RStmt>,
    },
    DoWhile {
        body: Box<RStmt>,
        cond: RExpr,
    },
    For {
        init: Option<Box<RStmt>>,
        cond: Option<RExpr>,
        step: Option<RExpr>,
        body: Box<RStmt>,
        /// Loop belongs to a polycc-generated affine nest (announced by a
        /// `#pragma affine` marker): the bytecode tier may lower it with
        /// the fused `AffineHead`/`AffineNext` opcodes. The resolved-IR
        /// engine executes it exactly like any other `for`.
        affine: bool,
    },
    Return(Option<RExpr>),
    Break,
    Continue,
    /// `#pragma omp parallel for` + loop, pre-matched at lower time.
    OmpFor(Box<ROmpFor>),
    /// Pragma/empty statement — executes as a step-counted no-op.
    Nop,
    /// `slot = f(args)` where `f` is verified-pure, const-like and
    /// spawn-worthy ([`crate::spawn`]): may run as a pure-call future on
    /// the worker pool, with the matching [`RStmtKind::AwaitSlots`]
    /// forcing the result before its first use. With futures disabled
    /// it executes exactly as the original call statement.
    SpawnPure(Box<RSpawn>),
    /// Join point of a spawn batch: force the listed slots (in spawn
    /// order) before the next dependent statement executes. Slots whose
    /// spawn ran inline are already resolved and skip silently.
    AwaitSlots(Vec<u32>),
}

/// One rewritten spawnable call site (see [`crate::spawn`]).
#[derive(Debug, Clone)]
pub(crate) struct RSpawn {
    /// Target local slot of the assignment/declaration.
    pub(crate) slot: u32,
    /// Callee function id (always `cacheable` and `spawn_heavy`).
    pub(crate) fid: u32,
    /// Result coercion of the original declaration/assignment target.
    pub(crate) coerce: Coerce,
    /// Argument expressions, evaluated eagerly by the spawning thread in
    /// original program order.
    pub(crate) args: Vec<RExpr>,
}

#[derive(Debug, Clone)]
pub(crate) struct ROmpFor {
    pub(crate) schedule: OmpSchedule,
    /// `Err` carries the tree-walker's exact diagnostic for unsupported
    /// loop headers, raised when the region executes.
    pub(crate) header: Result<ROmpHeader, String>,
    /// Static race verdict (Unknown when no analysis ran).
    pub(crate) verdict: RaceVerdict,
    pub(crate) span: Span,
}

#[derive(Debug, Clone)]
pub(crate) struct ROmpHeader {
    pub(crate) iter_slot: u32,
    pub(crate) lb: RExpr,
    pub(crate) ub: RExpr,
    pub(crate) ub_inclusive: bool,
    pub(crate) body: RStmt,
}

/// One resolved function definition.
#[derive(Debug)]
pub(crate) struct RFunc {
    pub(crate) name: Symbol,
    pub(crate) params: Vec<(u32, Coerce)>,
    pub(crate) frame_size: usize,
    pub(crate) body: Vec<RStmt>,
    pub(crate) span: Span,
    /// Participates in pure-call memoization (see module docs).
    pub(crate) cacheable: bool,
    /// Worth running as a future: cacheable *and* coarse enough (it
    /// loops, recurses, or calls a function that does — see
    /// [`crate::spawn`]'s granularity heuristic).
    pub(crate) spawn_heavy: bool,
}

/// A translation unit lowered for execution.
pub struct ResolvedProgram {
    pub(crate) funcs: Vec<RFunc>,
    pub(crate) by_name: HashMap<String, u32>,
    pub(crate) global_decls: Vec<RDecl>,
    pub(crate) nglobals: usize,
    pub(crate) interner: Interner,
    /// `(span.start, span.end)` of every member expression → resolved
    /// `(offset, is_array)`; shared with the legacy tree-walker so the
    /// oracle also keys field offsets by `(struct, field)`.
    #[cfg_attr(not(any(test, feature = "legacy-oracle")), allow(dead_code))]
    pub(crate) member_table: HashMap<(u32, u32), (usize, bool)>,
    /// `(struct, field)` → layout; the single source of the offset
    /// algorithm, also consumed by the legacy oracle's `ProgramData`.
    pub(crate) field_offsets: HashMap<(String, String), (usize, bool)>,
    /// Field name → layout when identical across every declaring struct;
    /// `None` marks an ambiguous name.
    #[cfg_attr(not(any(test, feature = "legacy-oracle")), allow(dead_code))]
    pub(crate) field_unique: HashMap<String, Option<(usize, bool)>>,
    /// Struct name → size in slots.
    #[cfg_attr(not(any(test, feature = "legacy-oracle")), allow(dead_code))]
    pub(crate) struct_sizes: HashMap<String, usize>,
    /// Whether any function is memo-eligible (skips cache setup if not).
    pub(crate) any_cacheable: bool,
}

impl ResolvedProgram {
    /// Names of functions that participate in pure-call memoization.
    pub fn cacheable_functions(&self) -> Vec<&str> {
        self.funcs
            .iter()
            .filter(|f| f.cacheable)
            .map(|f| self.interner.resolve(f.name))
            .collect()
    }

    /// Functions the granularity heuristic considers worth spawning
    /// (cacheable ∧ loops/recurses, transitively).
    pub fn spawn_heavy_functions(&self) -> Vec<&str> {
        self.funcs
            .iter()
            .filter(|f| f.spawn_heavy)
            .map(|f| self.interner.resolve(f.name))
            .collect()
    }

    /// `(function, spawn sites)` for every function containing at least
    /// one rewritten pure-call spawn site (introspection / tests /
    /// `purec --stats`).
    pub fn spawn_sites(&self) -> Vec<(&str, usize)> {
        self.funcs
            .iter()
            .filter_map(|f| {
                let n = crate::spawn::count_spawns(&f.body);
                (n > 0).then(|| (self.interner.resolve(f.name), n))
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct VarInfo {
    slot: u32,
    ty: Type,
    array_dims: usize,
}

#[derive(Clone)]
struct FieldInfo {
    offset: usize,
    is_array: bool,
    ty: Type,
    array_dims: usize,
}

struct StructLayout {
    size: usize,
    fields: HashMap<String, FieldInfo>,
}

pub(crate) struct Lowerer<'a> {
    interner: Interner,
    unit: &'a TranslationUnit,
    /// Function name → id for *definitions* (they shadow prototypes).
    fn_ids: HashMap<String, u32>,
    /// Return types for definitions and prototypes (type inference).
    fn_ret: HashMap<String, Type>,
    structs: HashMap<String, StructLayout>,
    /// Field name → layout when unambiguous across all structs.
    field_fallback: HashMap<String, Option<FieldInfo>>,
    globals: HashMap<String, VarInfo>,
    nglobals: u32,
    /// Static race verdicts keyed by `for`-statement span.
    verdicts: &'a VerdictMap,
    // Per-function state:
    scopes: Vec<HashMap<String, VarInfo>>,
    next_slot: u32,
    member_table: HashMap<(u32, u32), (usize, bool)>,
    /// A `#pragma affine` marker was just lowered: the next `for` (or omp
    /// `for`) heads a polycc-generated affine nest.
    pending_affine: bool,
    /// Depth of affine nests currently being lowered — every `for` inside
    /// one is itself part of the generated nest.
    affine_depth: u32,
}

impl<'a> Lowerer<'a> {
    fn new(unit: &'a TranslationUnit, verdicts: &'a VerdictMap) -> Self {
        let mut interner = Interner::new();
        cfront::visit::collect_symbols(unit, &mut interner);
        let mut structs = HashMap::new();
        let mut field_fallback: HashMap<String, Option<FieldInfo>> = HashMap::new();
        for item in &unit.items {
            if let Item::Struct(s) = item {
                let mut offset = 0usize;
                let mut fields = HashMap::new();
                for field in &s.fields {
                    let len: usize = field
                        .array_dims
                        .iter()
                        .map(|d| match d.kind {
                            ExprKind::IntLit(v) => v.max(1) as usize,
                            _ => 1,
                        })
                        .product();
                    let info = FieldInfo {
                        offset,
                        is_array: !field.array_dims.is_empty(),
                        ty: field.ty.clone(),
                        array_dims: field.array_dims.len(),
                    };
                    match field_fallback.entry(field.name.clone()) {
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(Some(info.clone()));
                        }
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            let same = matches!(
                                e.get(),
                                Some(prev) if prev.offset == info.offset
                                    && prev.is_array == info.is_array
                            );
                            if !same {
                                e.insert(None); // ambiguous across structs
                            }
                        }
                    }
                    fields.insert(field.name.clone(), info);
                    offset += len.max(1);
                }
                structs.insert(
                    s.name.clone(),
                    StructLayout {
                        size: offset.max(1),
                        fields,
                    },
                );
            }
        }
        let mut fn_ids = HashMap::new();
        let mut fn_ret = HashMap::new();
        let mut next_fid = 0u32;
        for f in unit.functions() {
            fn_ret
                .entry(f.name.clone())
                .or_insert_with(|| f.ret.clone());
            if f.is_definition() && !fn_ids.contains_key(&f.name) {
                fn_ids.insert(f.name.clone(), next_fid);
                next_fid += 1;
            }
        }
        Lowerer {
            interner,
            unit,
            fn_ids,
            fn_ret,
            structs,
            field_fallback,
            globals: HashMap::new(),
            nglobals: 0,
            verdicts,
            scopes: Vec::new(),
            next_slot: 0,
            member_table: HashMap::new(),
            pending_affine: false,
            affine_depth: 0,
        }
    }

    fn lower_unit(mut self, pure_fns: &HashSet<String>) -> ResolvedProgram {
        // Globals first, in declaration order, so an initializer can only
        // see globals declared before it (matching runtime declaration
        // order of the tree-walker).
        let mut global_decls = Vec::new();
        for item in &self.unit.items {
            if let Item::Decl(d) = item {
                global_decls.extend(self.lower_declaration(d, true));
            }
        }

        // Function bodies see all globals and all function ids.
        let mut funcs: Vec<Option<RFunc>> = (0..self.fn_ids.len()).map(|_| None).collect();
        for f in self.unit.functions() {
            if !f.is_definition() {
                continue;
            }
            let Some(&fid) = self.fn_ids.get(&f.name) else {
                continue;
            };
            // Definitions override prototypes; the *first* definition wins
            // an id, later redefinitions overwrite its body (mirroring the
            // tree-walker's map insert order).
            funcs[fid as usize] = Some(self.lower_function(f));
        }
        let funcs: Vec<RFunc> = funcs
            .into_iter()
            .map(|f| f.expect("all ids lowered"))
            .collect();

        let mut field_offsets = HashMap::new();
        let mut struct_sizes = HashMap::new();
        for (sname, layout) in &self.structs {
            struct_sizes.insert(sname.clone(), layout.size);
            for (fname, info) in &layout.fields {
                field_offsets.insert((sname.clone(), fname.clone()), (info.offset, info.is_array));
            }
        }
        let field_unique = self
            .field_fallback
            .iter()
            .map(|(k, v)| (k.clone(), v.as_ref().map(|f| (f.offset, f.is_array))))
            .collect();
        let mut prog = ResolvedProgram {
            by_name: self.fn_ids.clone(),
            funcs,
            global_decls,
            nglobals: self.nglobals as usize,
            interner: self.interner,
            member_table: self.member_table,
            field_offsets,
            field_unique,
            struct_sizes,
            any_cacheable: false,
        };
        mark_cacheable(&mut prog, pure_fns);
        prog.any_cacheable = prog.funcs.iter().any(|f| f.cacheable);
        // Spawn-site analysis runs after cacheability: it consumes the
        // verified-pure/const-like verdicts and rewrites independent
        // heavy pure calls into SpawnPure/AwaitSlots batches.
        crate::spawn::analyze(&mut prog);
        prog
    }

    fn lower_function(&mut self, f: &Function) -> RFunc {
        self.scopes.clear();
        self.scopes.push(HashMap::new());
        self.next_slot = 0;
        let mut params = Vec::with_capacity(f.params.len());
        for p in &f.params {
            let slot = self.next_slot;
            self.next_slot += 1;
            params.push((slot, Coerce::of(&p.ty)));
            if let Some(name) = &p.name {
                self.scopes.last_mut().expect("scope").insert(
                    name.clone(),
                    VarInfo {
                        slot,
                        ty: p.ty.clone(),
                        array_dims: 0,
                    },
                );
            }
        }
        let body = f.body.as_ref().expect("definition");
        let stmts = self.lower_block_stmts(body);
        let frame_size = self.next_slot as usize;
        self.scopes.clear();
        RFunc {
            name: self.interner.intern(&f.name),
            params,
            frame_size,
            body: stmts,
            span: f.span,
            cacheable: false,
            spawn_heavy: false,
        }
    }

    // -- scopes ---------------------------------------------------------------

    fn lookup_var(&self, name: &str) -> Option<&VarInfo> {
        for scope in self.scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Some(v);
            }
        }
        None
    }

    fn declare_local(&mut self, name: &str, ty: Type, array_dims: usize) -> u32 {
        let slot = self.next_slot;
        self.next_slot += 1;
        self.scopes.last_mut().expect("scope").insert(
            name.to_string(),
            VarInfo {
                slot,
                ty,
                array_dims,
            },
        );
        slot
    }

    // -- type inference (member-offset resolution) ---------------------------

    /// Best-effort static type of an expression; `None` when unknown.
    fn infer_type(&self, e: &Expr) -> Option<(Type, usize)> {
        match &e.kind {
            ExprKind::Ident(name) => self
                .lookup_var(name)
                .or_else(|| self.globals.get(name))
                .map(|v| (v.ty.clone(), v.array_dims)),
            ExprKind::Index(base, _) => {
                let (ty, dims) = self.infer_type(base)?;
                if dims > 0 {
                    Some((ty, dims - 1))
                } else {
                    ty.deref().map(|t| (t, 0))
                }
            }
            ExprKind::Unary(UnOp::Deref, inner) => {
                let (ty, dims) = self.infer_type(inner)?;
                if dims > 0 {
                    Some((ty, dims - 1))
                } else {
                    ty.deref().map(|t| (t, 0))
                }
            }
            ExprKind::Unary(UnOp::AddrOf, inner) => {
                let (mut ty, dims) = self.infer_type(inner)?;
                ty.ptr.push(PtrLevel::default());
                Some((ty, dims))
            }
            ExprKind::Member { base, member, .. } => {
                let field = self.resolve_field(base, member)?;
                Some((field.ty, field.array_dims))
            }
            ExprKind::Cast(ty, _) => Some((ty.clone(), 0)),
            ExprKind::Call { callee, .. } => {
                let name = callee.as_ident()?;
                self.fn_ret.get(name).map(|t| (t.clone(), 0))
            }
            ExprKind::Assign(_, lhs, _) => self.infer_type(lhs),
            ExprKind::Comma(_, r) => self.infer_type(r),
            _ => None,
        }
    }

    /// Resolve `base.member` / `base->member` to its field layout, keyed
    /// by the inferred struct of `base`; falls back to the field name when
    /// it is unambiguous across every struct in the unit.
    fn resolve_field(&self, base: &Expr, member: &str) -> Option<FieldInfo> {
        let struct_name = self.infer_type(base).and_then(|(ty, _)| match &ty.base {
            BaseType::Struct(name) => Some(name.clone()),
            _ => None,
        });
        if let Some(sname) = struct_name {
            if let Some(layout) = self.structs.get(&sname) {
                if let Some(field) = layout.fields.get(member) {
                    return Some(field.clone());
                }
            }
        }
        self.field_fallback.get(member).cloned().flatten()
    }

    // -- declarations --------------------------------------------------------

    fn lower_declaration(&mut self, d: &Declaration, global: bool) -> Vec<RDecl> {
        let mut out = Vec::with_capacity(d.declarators.len());
        for dec in &d.declarators {
            // Lower the initializer *before* binding the name, matching
            // the tree-walker's evaluate-then-insert order.
            let kind = if !dec.array_dims.is_empty() {
                RDeclKind::Array {
                    dims: dec.array_dims.iter().map(|e| self.lower_expr(e)).collect(),
                    init: dec.init.as_ref().map(|e| self.lower_expr(e)),
                }
            } else if matches!(dec.ty.base, BaseType::Struct(_)) && !dec.ty.is_pointer() {
                let size = match &dec.ty.base {
                    BaseType::Struct(name) => self.structs.get(name).map(|s| s.size).unwrap_or(8),
                    _ => unreachable!(),
                };
                RDeclKind::Struct { size }
            } else {
                RDeclKind::Scalar {
                    init: dec.init.as_ref().map(|e| self.lower_expr(e)),
                    coerce: Coerce::of(&dec.ty),
                }
            };
            let target = if global {
                let idx = self.nglobals;
                self.nglobals += 1;
                self.globals.insert(
                    dec.name.clone(),
                    VarInfo {
                        slot: idx,
                        ty: dec.ty.clone(),
                        array_dims: dec.array_dims.len(),
                    },
                );
                SlotRef::Global(idx)
            } else {
                SlotRef::Local(self.declare_local(&dec.name, dec.ty.clone(), dec.array_dims.len()))
            };
            out.push(RDecl { target, kind });
        }
        out
    }

    // -- statements ----------------------------------------------------------

    fn lower_stmt(&mut self, s: &Stmt) -> RStmt {
        // Only a `for` directly after the marker consumes it; anything
        // else voids it so unrelated later loops are not tagged.
        if !matches!(s.kind, StmtKind::Pragma(_) | StmtKind::For { .. }) {
            self.pending_affine = false;
        }
        let kind = match &s.kind {
            StmtKind::Decl(d) => RStmtKind::Decl(self.lower_declaration(d, false)),
            StmtKind::Expr(Some(e)) => RStmtKind::Expr(Some(self.lower_expr(e))),
            StmtKind::Expr(None) => RStmtKind::Nop,
            StmtKind::Pragma(p) => {
                // polycc's nest marker (kept in the printed C as a no-op
                // pragma so all engines see identical source).
                if p.trim() == "pragma affine" {
                    self.pending_affine = true;
                }
                RStmtKind::Nop
            }
            StmtKind::Block(b) => RStmtKind::Block(self.lower_block_stmts(b)),
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => RStmtKind::If {
                cond: self.lower_expr(cond),
                then_branch: Box::new(self.lower_stmt(then_branch)),
                else_branch: else_branch.as_ref().map(|e| Box::new(self.lower_stmt(e))),
            },
            StmtKind::While { cond, body } => RStmtKind::While {
                cond: self.lower_expr(cond),
                body: Box::new(self.lower_stmt(body)),
            },
            StmtKind::DoWhile { body, cond } => RStmtKind::DoWhile {
                body: Box::new(self.lower_stmt(body)),
                cond: self.lower_expr(cond),
            },
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                let affine = std::mem::take(&mut self.pending_affine) || self.affine_depth > 0;
                // The iterator's scope spans init, cond, step and body.
                self.scopes.push(HashMap::new());
                let rinit = match init.as_ref() {
                    ForInit::Decl(d) => Some(Box::new(RStmt {
                        kind: RStmtKind::Decl(self.lower_declaration(d, false)),
                        span: s.span,
                    })),
                    ForInit::Expr(Some(e)) => Some(Box::new(RStmt {
                        kind: RStmtKind::Expr(Some(self.lower_expr(e))),
                        span: s.span,
                    })),
                    ForInit::Expr(None) => None,
                };
                let rcond = cond.as_ref().map(|c| self.lower_expr(c));
                let rstep = step.as_ref().map(|st| self.lower_expr(st));
                if affine {
                    self.affine_depth += 1;
                }
                let rbody = Box::new(self.lower_stmt(body));
                if affine {
                    self.affine_depth -= 1;
                }
                self.scopes.pop();
                RStmtKind::For {
                    init: rinit,
                    cond: rcond,
                    step: rstep,
                    body: rbody,
                    affine,
                }
            }
            StmtKind::Return(e) => RStmtKind::Return(e.as_ref().map(|e| self.lower_expr(e))),
            StmtKind::Break => RStmtKind::Break,
            StmtKind::Continue => RStmtKind::Continue,
        };
        RStmt { kind, span: s.span }
    }

    /// Lower a block's statements, recognising `#pragma omp parallel for`
    /// regions exactly like the tree-walker's `exec_block`.
    fn lower_block_stmts(&mut self, b: &Block) -> Vec<RStmt> {
        self.scopes.push(HashMap::new());
        let mut out = Vec::with_capacity(b.stmts.len());
        let mut i = 0;
        while i < b.stmts.len() {
            if let StmtKind::Pragma(p) = &b.stmts[i].kind {
                if let Some(schedule) = parse_omp_parallel_for(p) {
                    let mut j = i + 1;
                    while j < b.stmts.len() && matches!(&b.stmts[j].kind, StmtKind::Pragma(_)) {
                        j += 1;
                    }
                    if j < b.stmts.len() && matches!(b.stmts[j].kind, StmtKind::For { .. }) {
                        out.push(self.lower_omp_for(&b.stmts[j], schedule));
                        i = j + 1;
                        continue;
                    }
                }
            }
            out.push(self.lower_stmt(&b.stmts[i]));
            i += 1;
        }
        self.scopes.pop();
        out
    }

    fn lower_omp_for(&mut self, for_stmt: &Stmt, schedule: OmpSchedule) -> RStmt {
        let StmtKind::For {
            init,
            cond,
            step,
            body,
        } = &for_stmt.kind
        else {
            unreachable!("caller matched a For");
        };
        let verdict = self
            .verdicts
            .get(&for_stmt.span)
            .copied()
            .unwrap_or_default();
        let bad = |msg: &str| RStmt {
            kind: RStmtKind::OmpFor(Box::new(ROmpFor {
                schedule,
                header: Err(msg.to_string()),
                verdict,
                span: for_stmt.span,
            })),
            span: for_stmt.span,
        };

        // Header: iterator, bounds, unit stride — mirroring the
        // tree-walker's shape checks, but performed once at lower time.
        let (iter_name, lb_expr) = match init.as_ref() {
            ForInit::Decl(d) if d.declarators.len() == 1 => {
                let dec = &d.declarators[0];
                let Some(init_e) = dec.init.as_ref() else {
                    return bad("parallel loop iterator lacks init");
                };
                (dec.name.clone(), init_e)
            }
            ForInit::Expr(Some(e)) => match &e.kind {
                ExprKind::Assign(AssignOp::Assign, lhs, rhs) => {
                    let Some(name) = lhs.as_ident() else {
                        return bad("bad parallel loop init");
                    };
                    (name.to_string(), rhs.as_ref())
                }
                _ => return bad("bad parallel loop init"),
            },
            _ => return bad("bad parallel loop init"),
        };
        let (ub_expr, ub_inclusive) = match cond.as_ref().map(|c| &c.kind) {
            Some(ExprKind::Binary(BinOp::Lt, _, r)) => (r.as_ref(), false),
            Some(ExprKind::Binary(BinOp::Le, _, r)) => (r.as_ref(), true),
            _ => return bad("parallel loop condition must be < or <="),
        };
        let unit_step = match step.as_ref().map(|s| &s.kind) {
            Some(ExprKind::Unary(UnOp::PreInc | UnOp::PostInc, target)) => {
                target.as_ident() == Some(iter_name.as_str())
            }
            Some(ExprKind::Assign(AssignOp::Add, lhs, rhs)) => {
                lhs.as_ident() == Some(iter_name.as_str())
                    && matches!(rhs.kind, ExprKind::IntLit(1))
            }
            _ => false,
        };
        if !unit_step {
            return bad("parallel loop must have unit increment");
        }

        // Bounds are evaluated in the parent's scope (before the
        // iterator exists).
        let lb = self.lower_expr(lb_expr);
        let ub = self.lower_expr(ub_expr);

        // The iterator is a fresh slot shadowing any outer binding: each
        // parallel iteration owns a private copy in its cloned frame
        // (matching the tree-walker seeding the child's top frame).
        self.scopes.push(HashMap::new());
        let iter_slot = self.declare_local(&iter_name, Type::int(), 0);
        // An affine marker ahead of the omp header covers the whole nest:
        // inner loops of the generated body lower as affine.
        let affine = std::mem::take(&mut self.pending_affine);
        if affine {
            self.affine_depth += 1;
        }
        let rbody = self.lower_stmt(body);
        if affine {
            self.affine_depth -= 1;
        }
        self.scopes.pop();

        RStmt {
            kind: RStmtKind::OmpFor(Box::new(ROmpFor {
                schedule,
                header: Ok(ROmpHeader {
                    iter_slot,
                    lb,
                    ub,
                    ub_inclusive,
                    body: rbody,
                }),
                verdict,
                span: for_stmt.span,
            })),
            span: for_stmt.span,
        }
    }

    // -- expressions ---------------------------------------------------------

    fn lower_expr(&mut self, e: &Expr) -> RExpr {
        let kind = match &e.kind {
            ExprKind::IntLit(v) => RExprKind::Int(*v),
            ExprKind::FloatLit { value, .. } => RExprKind::Float(*value),
            ExprKind::CharLit(c) => RExprKind::Int(*c as i64),
            ExprKind::StrLit(s) => RExprKind::Str(Arc::from(s.as_str())),
            ExprKind::Ident(name) => match self.lookup_var(name) {
                Some(v) => RExprKind::Local(v.slot),
                None => match self.globals.get(name) {
                    Some(g) => RExprKind::Global(g.slot),
                    None => RExprKind::Unknown(self.interner.intern(name)),
                },
            },
            ExprKind::Unary(op, inner) => match op {
                UnOp::PreInc | UnOp::PreDec | UnOp::PostInc | UnOp::PostDec => {
                    RExprKind::IncDec(*op, self.lower_place(inner))
                }
                UnOp::AddrOf => RExprKind::AddrOf(self.lower_place(inner)),
                _ => RExprKind::Unary(*op, Box::new(self.lower_expr(inner))),
            },
            ExprKind::Binary(op, l, r) => RExprKind::Binary(
                *op,
                Box::new(self.lower_expr(l)),
                Box::new(self.lower_expr(r)),
            ),
            ExprKind::Assign(op, lhs, rhs) => RExprKind::Assign {
                op: op.binop(),
                place: self.lower_place(lhs),
                value: Box::new(self.lower_expr(rhs)),
            },
            ExprKind::Ternary(c, t, f) => RExprKind::Ternary(
                Box::new(self.lower_expr(c)),
                Box::new(self.lower_expr(t)),
                Box::new(self.lower_expr(f)),
            ),
            ExprKind::Call { callee, args } => {
                let Some(name) = callee.as_ident() else {
                    return RExpr {
                        kind: RExprKind::IndirectCall,
                        span: e.span,
                    };
                };
                if name == "__initlist" {
                    return RExpr {
                        kind: RExprKind::InitList(
                            args.iter().map(|a| self.lower_expr(a)).collect(),
                        ),
                        span: e.span,
                    };
                }
                if name == "printf" {
                    let fmt = args.first().and_then(|a| match &a.kind {
                        ExprKind::StrLit(s) => Some(Arc::from(s.as_str())),
                        _ => None,
                    });
                    let fmt_expr = match (&fmt, args.first()) {
                        (None, Some(first)) => Some(Box::new(self.lower_expr(first))),
                        _ => None,
                    };
                    let rest = args.iter().skip(1).map(|a| self.lower_expr(a)).collect();
                    RExprKind::Printf {
                        fmt,
                        fmt_expr,
                        args: rest,
                    }
                } else {
                    let largs: Vec<RExpr> = args.iter().map(|a| self.lower_expr(a)).collect();
                    match self.fn_ids.get(name) {
                        Some(&fid) => RExprKind::CallUser { fid, args: largs },
                        None => RExprKind::CallBuiltin {
                            name: self.interner.intern(name),
                            args: largs,
                        },
                    }
                }
            }
            ExprKind::Index(..) | ExprKind::Member { .. } => RExprKind::Load(self.lower_place(e)),
            ExprKind::Cast(ty, inner) => {
                RExprKind::Cast(Coerce::of(ty), Box::new(self.lower_expr(inner)))
            }
            // `sizeof` is the slot size: every scalar occupies one 8-byte
            // slot (see `value::Memory`), so it folds to a constant.
            ExprKind::SizeofType(_) | ExprKind::SizeofExpr(_) => RExprKind::Int(8),
            ExprKind::Comma(l, r) => {
                RExprKind::Comma(Box::new(self.lower_expr(l)), Box::new(self.lower_expr(r)))
            }
        };
        RExpr { kind, span: e.span }
    }

    fn lower_place(&mut self, e: &Expr) -> RPlace {
        let kind = match &e.kind {
            ExprKind::Ident(name) => match self.lookup_var(name) {
                Some(v) => RPlaceKind::Local(v.slot),
                None => match self.globals.get(name) {
                    Some(g) => RPlaceKind::Global(g.slot),
                    None => RPlaceKind::Unknown(self.interner.intern(name)),
                },
            },
            ExprKind::Index(base, idx) => RPlaceKind::Index(
                Box::new(self.lower_expr(base)),
                Box::new(self.lower_expr(idx)),
            ),
            ExprKind::Unary(UnOp::Deref, inner) => {
                RPlaceKind::Deref(Box::new(self.lower_expr(inner)))
            }
            ExprKind::Member { base, member, .. } => match self.resolve_field(base, member) {
                Some(field) => {
                    // Synthesized nodes share Span::DUMMY; recording them
                    // would let distinct access sites collide on one key,
                    // so only real source spans enter the legacy oracle's
                    // side table (its fallback covers the rest).
                    if !e.span.is_empty() {
                        self.member_table
                            .insert((e.span.start, e.span.end), (field.offset, field.is_array));
                    }
                    RPlaceKind::Member {
                        base: Box::new(self.lower_expr(base)),
                        offset: field.offset as i64,
                    }
                }
                None => RPlaceKind::MemberUnknown {
                    base: Box::new(self.lower_expr(base)),
                    name: self.interner.intern(member),
                },
            },
            ExprKind::Cast(_, inner) => return self.lower_place(inner),
            _ => RPlaceKind::NotLvalue,
        };
        RPlace { kind, span: e.span }
    }
}

/// Lower a translation unit; `pure_fns` are the names the purity pass
/// verified (empty set ⇒ memoization disabled); `verdicts` carries the
/// static race analysis results per parallel `for` statement (empty map
/// ⇒ every region defaults to [`RaceVerdict::Unknown`]).
pub fn lower_unit(
    unit: &TranslationUnit,
    pure_fns: &HashSet<String>,
    verdicts: &VerdictMap,
) -> ResolvedProgram {
    Lowerer::new(unit, verdicts).lower_unit(pure_fns)
}

// ---------------------------------------------------------------------------
// Cacheability (memo safety) analysis
// ---------------------------------------------------------------------------

/// Allocation-free math builtins allowed inside cacheable functions.
fn is_pure_math_builtin(name: &str) -> bool {
    matches!(
        name,
        "sin"
            | "sinf"
            | "cos"
            | "cosf"
            | "tan"
            | "tanf"
            | "asin"
            | "asinf"
            | "acos"
            | "acosf"
            | "atan"
            | "atanf"
            | "atan2"
            | "atan2f"
            | "sinh"
            | "cosh"
            | "tanh"
            | "exp"
            | "expf"
            | "log"
            | "logf"
            | "log2"
            | "log2f"
            | "log10"
            | "log10f"
            | "sqrt"
            | "sqrtf"
            | "cbrt"
            | "pow"
            | "powf"
            | "fabs"
            | "fabsf"
            | "floor"
            | "floorf"
            | "ceil"
            | "ceilf"
            | "round"
            | "roundf"
            | "trunc"
            | "fmod"
            | "fmodf"
            | "fmin"
            | "fminf"
            | "fmax"
            | "fmaxf"
            | "hypot"
            | "expm1"
            | "log1p"
            | "copysign"
            | "abs"
            | "labs"
            | "llabs"
            | "__pc_floord"
            | "__pc_ceild"
            | "__pc_max"
            | "__pc_min"
    )
}

/// Local (per-function) memo eligibility + called-function collection.
struct CacheScan<'a> {
    interner: &'a Interner,
    ok: bool,
    calls: Vec<u32>,
}

impl CacheScan<'_> {
    fn scan_stmts(&mut self, stmts: &[RStmt]) {
        for s in stmts {
            self.scan_stmt(s);
        }
    }

    fn scan_stmt(&mut self, s: &RStmt) {
        if !self.ok {
            return;
        }
        match &s.kind {
            RStmtKind::Decl(decls) => {
                for d in decls {
                    match &d.kind {
                        // Arrays/structs are memory — not const-like.
                        RDeclKind::Array { .. } | RDeclKind::Struct { .. } => self.ok = false,
                        RDeclKind::Scalar { init, .. } => {
                            if let Some(i) = init {
                                self.scan_expr(i);
                            }
                        }
                    }
                }
            }
            RStmtKind::Expr(e) => {
                if let Some(e) = e {
                    self.scan_expr(e);
                }
            }
            RStmtKind::Block(b) => self.scan_stmts(b),
            RStmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.scan_expr(cond);
                self.scan_stmt(then_branch);
                if let Some(e) = else_branch {
                    self.scan_stmt(e);
                }
            }
            RStmtKind::While { cond, body } => {
                self.scan_expr(cond);
                self.scan_stmt(body);
            }
            RStmtKind::DoWhile { body, cond } => {
                self.scan_stmt(body);
                self.scan_expr(cond);
            }
            RStmtKind::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                if let Some(i) = init {
                    self.scan_stmt(i);
                }
                if let Some(c) = cond {
                    self.scan_expr(c);
                }
                if let Some(st) = step {
                    self.scan_expr(st);
                }
                self.scan_stmt(body);
            }
            RStmtKind::Return(e) => {
                if let Some(e) = e {
                    self.scan_expr(e);
                }
            }
            RStmtKind::Break | RStmtKind::Continue | RStmtKind::Nop => {}
            // Parallel regions inside cacheable functions are excluded
            // outright (shared-memory interactions).
            RStmtKind::OmpFor(_) => self.ok = false,
            // Spawn sites only exist after this analysis ran (the spawn
            // rewrite consumes cacheability verdicts); treat them like
            // the call they stand for, for robustness.
            RStmtKind::SpawnPure(sp) => {
                self.calls.push(sp.fid);
                for a in &sp.args {
                    self.scan_expr(a);
                }
            }
            RStmtKind::AwaitSlots(_) => {}
        }
    }

    fn scan_expr(&mut self, e: &RExpr) {
        if !self.ok {
            return;
        }
        match &e.kind {
            RExprKind::Int(_) | RExprKind::Float(_) | RExprKind::Local(_) => {}
            // Globals and memory constructs break const-likeness.
            RExprKind::Global(_)
            | RExprKind::Str(_)
            | RExprKind::Unknown(_)
            | RExprKind::AddrOf(_)
            | RExprKind::Load(_)
            | RExprKind::Printf { .. }
            | RExprKind::IndirectCall
            | RExprKind::InitList(_) => self.ok = false,
            RExprKind::Unary(op, inner) => {
                if matches!(op, UnOp::Deref) {
                    self.ok = false;
                } else {
                    self.scan_expr(inner);
                }
            }
            RExprKind::Binary(_, l, r) | RExprKind::Comma(l, r) => {
                self.scan_expr(l);
                self.scan_expr(r);
            }
            RExprKind::Assign { place, value, .. } => {
                self.scan_place(place);
                self.scan_expr(value);
            }
            RExprKind::IncDec(_, place) => self.scan_place(place),
            RExprKind::Ternary(c, t, f) => {
                self.scan_expr(c);
                self.scan_expr(t);
                self.scan_expr(f);
            }
            RExprKind::CallUser { fid, args } => {
                self.calls.push(*fid);
                for a in args {
                    self.scan_expr(a);
                }
            }
            RExprKind::CallBuiltin { name, args } => {
                if !is_pure_math_builtin(self.interner.resolve(*name)) {
                    self.ok = false;
                    return;
                }
                for a in args {
                    self.scan_expr(a);
                }
            }
            RExprKind::Cast(_, inner) => self.scan_expr(inner),
        }
    }

    fn scan_place(&mut self, p: &RPlace) {
        match &p.kind {
            RPlaceKind::Local(_) => {}
            _ => self.ok = false,
        }
    }
}

/// Compute the cacheable set: verified-pure ∧ scalar-only ∧ closed under
/// calls (greatest fixpoint, so self/mutual recursion stays cacheable).
fn mark_cacheable(prog: &mut ResolvedProgram, pure_fns: &HashSet<String>) {
    if pure_fns.is_empty() {
        return;
    }
    let n = prog.funcs.len();
    let mut candidate = vec![false; n];
    let mut calls: Vec<Vec<u32>> = Vec::with_capacity(n);
    for (i, f) in prog.funcs.iter().enumerate() {
        let name = prog.interner.resolve(f.name);
        let verified = pure_fns.contains(name);
        let scalar_params = f.params.iter().all(|(_, c)| *c != Coerce::None);
        let mut scan = CacheScan {
            interner: &prog.interner,
            ok: true,
            calls: Vec::new(),
        };
        scan.scan_stmts(&f.body);
        candidate[i] = verified && scalar_params && scan.ok;
        calls.push(scan.calls);
    }
    // Remove candidates that call non-candidates until stable.
    loop {
        let mut changed = false;
        for i in 0..n {
            if candidate[i] && calls[i].iter().any(|&c| !candidate[c as usize]) {
                candidate[i] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for (f, ok) in prog.funcs.iter_mut().zip(candidate) {
        f.cacheable = ok;
    }
}

// ---------------------------------------------------------------------------
// Memo cache
// ---------------------------------------------------------------------------

/// Hashable key for one memoized call: function id + tagged bit patterns
/// of the (coerced) scalar arguments.
pub(crate) type MemoKey = (u32, Vec<(u8, u64)>);

pub(crate) struct MemoCache {
    map: Mutex<ClockCache<MemoKey, Scalar>>,
}

impl MemoCache {
    fn new(cap: usize) -> Self {
        MemoCache {
            map: Mutex::new(ClockCache::new(cap)),
        }
    }

    /// Key for a call to function `fid` with raw argument values,
    /// exactly as `call_user` builds it from the bound frame:
    /// param-coerced values written at their *frame slots*, `Uninit`
    /// padding for missing trailing arguments. Lowering assigns
    /// parameter slots `0..n` in declaration order; keying by slot
    /// keeps this builder and the frame-based call path in lockstep
    /// even if that ever changes. Shared by both engines' spawn-site
    /// memo pre-checks (`params`/`frame_size` come from `RFunc` or its
    /// bytecode mirror `BFunc`).
    pub(crate) fn key_for_call(
        params: &[(u32, Coerce)],
        frame_size: usize,
        fid: u32,
        vals: &[Scalar],
    ) -> Option<MemoKey> {
        let nkey = params.len().min(frame_size);
        let mut keyvals = vec![Scalar::Uninit; nkey];
        for (i, &(slot, co)) in params.iter().enumerate() {
            if i >= vals.len() {
                break;
            }
            if (slot as usize) < nkey {
                keyvals[slot as usize] = co.apply(vals[i]);
            }
        }
        Self::key(fid, &keyvals)
    }

    pub(crate) fn key(fid: u32, frame_args: &[Scalar]) -> Option<MemoKey> {
        let mut parts = Vec::with_capacity(frame_args.len());
        for v in frame_args {
            match v {
                Scalar::I(i) => parts.push((0u8, *i as u64)),
                Scalar::F(f) => parts.push((1u8, f.to_bits())),
                Scalar::Uninit => parts.push((2u8, 0)),
                // Pointers/null never appear for cacheable functions
                // (scalar-only params), but stay conservative.
                _ => return None,
            }
        }
        Some((fid, parts))
    }

    fn get(&self, key: &MemoKey) -> Option<Scalar> {
        self.map.lock().get(key)
    }

    fn insert(&self, key: MemoKey, v: Scalar) {
        if !matches!(v, Scalar::I(_) | Scalar::F(_)) {
            return;
        }
        self.map.lock().insert(key, v);
    }

    /// Entries displaced by CLOCK eviction since creation.
    fn evictions(&self) -> u64 {
        self.map.lock().evictions()
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct RShared {
    prog: Arc<ResolvedProgram>,
    mem: Memory,
    counters: Arc<Counters>,
    globals: Arc<RwLock<Vec<Scalar>>>,
    output: Arc<Mutex<String>>,
    opts: InterpOptions,
    memo: Option<Arc<MemoCache>>,
    /// One instruction budget shared by every thread of the run.
    fuel: Option<Arc<FuelBudget>>,
}

enum Flow {
    Normal,
    Break,
    Continue,
    Return(Scalar),
}

/// Where a resolved lvalue lives at runtime.
enum PlaceRef {
    Slot(u32),
    Global(u32),
    Mem(Ptr),
}

struct RInterp {
    s: RShared,
    frame: Vec<Scalar>,
    depth: usize,
    steps: u64,
    /// Locally-held fuel (statements left before a shared-budget refill);
    /// `u64::MAX` when no budget is configured.
    fuel_local: u64,
    track: Option<TrackSets>,
    /// In-flight pure-call futures of this interpreter, keyed by
    /// `(depth, slot)`: the spawn-site analysis guarantees every batch
    /// is awaited before the frame leaves the enclosing block, so on
    /// success paths the tail of this list always belongs to the
    /// innermost open batch.
    pending: ResPendingList,
    /// Cached handle of the process-wide pool (pure-call futures).
    futures_pool: Option<Arc<ThreadPool>>,
}

/// One in-flight pure call of the resolved engine. Counters and the
/// memo cache are shared (`Arc`) with the spawning interpreter, so only
/// the call's value travels back through the future. `fid`/`vals`
/// duplicate what the queued task owns so a future revoked at its await
/// ([`PureFuture::cancel`]) can run as a plain inline call.
struct ResPending {
    depth: usize,
    slot: u32,
    coerce: Coerce,
    fid: u32,
    vals: Vec<Scalar>,
    fut: PureFuture<RtResult<Scalar>>,
}

/// In-flight future list: when an interpreter is abandoned with spawns
/// still in flight (an error unwinding past the batch's join point),
/// the tasks are waited out rather than leaked onto the shared pool.
#[derive(Default)]
struct ResPendingList(Vec<ResPending>);

impl Drop for ResPendingList {
    fn drop(&mut self) {
        for p in self.0.drain(..) {
            let _ = p.fut.wait();
        }
    }
}

/// Execute a resolved program's entry function to completion.
pub(crate) fn run_resolved(
    prog: &Arc<ResolvedProgram>,
    entry: &str,
    opts: InterpOptions,
) -> RtResult<RunResult> {
    let memo = (opts.memo && prog.any_cacheable).then(|| Arc::new(MemoCache::new(MEMO_CAPACITY)));
    let shared = RShared {
        prog: Arc::clone(prog),
        mem: Memory::with_limit(opts.max_memory_bytes),
        counters: Arc::new(Counters::new()),
        globals: Arc::new(RwLock::new(vec![Scalar::Uninit; prog.nglobals])),
        output: Arc::new(Mutex::new(String::new())),
        fuel: opts.fuel.map(|f| Arc::new(FuelBudget::new(f))),
        opts,
        memo,
    };
    let mut interp = RInterp::new(shared.clone());
    for d in &prog.global_decls {
        interp.exec_decl(d)?;
    }
    let exit = match prog.by_name.get(entry) {
        Some(&fid) => interp.call_user(fid, &[], Span::DUMMY)?,
        None => {
            // Mirror the tree-walker: unknown entry falls through to the
            // builtin table, then errors.
            Counters::bump(&shared.counters.calls);
            let mut out = String::new();
            match call_builtin(entry, &[], &shared.mem, &mut out) {
                Some(Ok(v)) => {
                    if !out.is_empty() {
                        shared.output.lock().push_str(&out);
                    }
                    v
                }
                Some(Err(e)) => return Err(RuntimeError::from_mem(e, Span::DUMMY)),
                None => {
                    return Err(RuntimeError::at(
                        format!("call to undefined function '{entry}'"),
                        Span::DUMMY,
                    ))
                }
            }
        }
    };
    let output = shared.output.lock().clone();
    if let Some(cache) = &shared.memo {
        shared
            .counters
            .memo_evictions
            .fetch_add(cache.evictions(), std::sync::atomic::Ordering::Relaxed);
    }
    let counters = shared.counters.snapshot();
    Ok(RunResult {
        exit_code: exit.as_i64(),
        output,
        counters,
        pairs: None,
    })
}

impl RInterp {
    fn new(s: RShared) -> Self {
        let fuel_local = if s.fuel.is_some() { 0 } else { u64::MAX };
        RInterp {
            s,
            frame: Vec::new(),
            depth: 0,
            steps: 0,
            fuel_local,
            track: None,
            pending: ResPendingList::default(),
            futures_pool: None,
        }
    }

    /// Grab the next fuel block from the shared budget (slow path of
    /// [`RInterp::step`]).
    #[cold]
    fn refill_fuel(&mut self, span: Span) -> RtResult<()> {
        let Some(budget) = &self.s.fuel else {
            self.fuel_local = u64::MAX;
            return Ok(());
        };
        let granted = budget.take_block();
        if granted == 0 {
            return Err(RuntimeError::trap_at(
                Trap::FuelExhausted,
                "fuel exhausted",
                span,
            ));
        }
        self.fuel_local = granted;
        Ok(())
    }

    /// Hand unused local fuel back when a region/future child retires.
    fn refund_fuel(&mut self) {
        if let Some(budget) = &self.s.fuel {
            budget.refund(std::mem::take(&mut self.fuel_local));
        }
    }

    fn futures_pool(&mut self) -> Arc<ThreadPool> {
        if let Some(p) = &self.futures_pool {
            return Arc::clone(p);
        }
        let p = global_pool(self.s.opts.threads);
        self.futures_pool = Some(Arc::clone(&p));
        p
    }

    fn step(&mut self, span: Span) -> RtResult<()> {
        self.steps += 1;
        if self.steps > self.s.opts.max_steps {
            return Err(RuntimeError::at(
                "step limit exceeded (infinite loop?)",
                span,
            ));
        }
        if self.fuel_local == 0 {
            self.refill_fuel(span)?;
        }
        self.fuel_local -= 1;
        Ok(())
    }

    // -- memory with counters -------------------------------------------------

    fn mem_load(&mut self, p: Ptr, span: Span) -> RtResult<Scalar> {
        Counters::bump(&self.s.counters.loads);
        if let Some(t) = &mut self.track {
            t.reads.insert((p.alloc, p.index));
        }
        self.s
            .mem
            .load(p)
            .map_err(|e| RuntimeError::from_mem(e, span))
    }

    fn mem_store(&mut self, p: Ptr, v: Scalar, span: Span) -> RtResult<()> {
        Counters::bump(&self.s.counters.stores);
        if let Some(t) = &mut self.track {
            t.writes.insert((p.alloc, p.index));
        }
        self.s
            .mem
            .store(p, v)
            .map_err(|e| RuntimeError::from_mem(e, span))
    }

    // -- declarations ---------------------------------------------------------

    fn exec_decl(&mut self, d: &RDecl) -> RtResult<()> {
        let value = match &d.kind {
            RDeclKind::Array { dims, init } => {
                let sizes: Vec<usize> = dims
                    .iter()
                    .map(|e| self.eval(e).map(|v| v.as_i64().max(0) as usize))
                    .collect::<RtResult<_>>()?;
                let p = self.alloc_array(&sizes)?;
                if let Some(init) = init {
                    self.fill_initlist(p, init)?;
                }
                Scalar::P(p)
            }
            RDeclKind::Struct { size } => Scalar::P(
                self.s
                    .mem
                    .try_alloc(*size)
                    .map_err(|e| RuntimeError::from_mem(e, Span::DUMMY))?,
            ),
            RDeclKind::Scalar { init, coerce } => match init {
                Some(e) => {
                    let v = self.eval(e)?;
                    coerce.apply(v)
                }
                None => Scalar::Uninit,
            },
        };
        match d.target {
            SlotRef::Local(slot) => {
                let slot = slot as usize;
                if slot >= self.frame.len() {
                    self.frame.resize(slot + 1, Scalar::Uninit);
                }
                self.frame[slot] = value;
            }
            SlotRef::Global(idx) => {
                self.s.globals.write()[idx as usize] = value;
            }
        }
        Ok(())
    }

    fn alloc_array(&mut self, dims: &[usize]) -> RtResult<Ptr> {
        match dims {
            [] | [_] => self
                .s
                .mem
                .try_alloc(dims.first().copied().unwrap_or(1))
                .map_err(|e| RuntimeError::from_mem(e, Span::DUMMY)),
            [first, rest @ ..] => {
                let spine = self
                    .s
                    .mem
                    .try_alloc(*first)
                    .map_err(|e| RuntimeError::from_mem(e, Span::DUMMY))?;
                for i in 0..*first {
                    let sub = self.alloc_array(rest)?;
                    self.s
                        .mem
                        .store(spine.offset(i as i64), Scalar::P(sub))
                        .expect("fresh spine in bounds");
                }
                Ok(spine)
            }
        }
    }

    fn fill_initlist(&mut self, p: Ptr, init: &RExpr) -> RtResult<()> {
        if let RExprKind::InitList(elems) = &init.kind {
            for (i, e) in elems.iter().enumerate() {
                if matches!(&e.kind, RExprKind::InitList(_)) {
                    if let Scalar::P(row) = self.mem_load(p.offset(i as i64), e.span)? {
                        self.fill_initlist(row, e)?;
                    }
                } else {
                    let v = self.eval(e)?;
                    self.mem_store(p.offset(i as i64), v, e.span)?;
                }
            }
        }
        Ok(())
    }

    // -- places ---------------------------------------------------------------

    fn place(&mut self, p: &RPlace) -> RtResult<PlaceRef> {
        match &p.kind {
            RPlaceKind::Local(slot) => Ok(PlaceRef::Slot(*slot)),
            RPlaceKind::Global(idx) => Ok(PlaceRef::Global(*idx)),
            RPlaceKind::Unknown(sym) => Err(RuntimeError::at(
                format!("unknown variable '{}'", self.s.prog.interner.resolve(*sym)),
                p.span,
            )),
            RPlaceKind::Index(base, idx) => {
                let b = self.eval(base)?;
                let i = self.eval(idx)?.as_i64();
                match b {
                    Scalar::P(ptr) => Ok(PlaceRef::Mem(ptr.offset(i))),
                    other => Err(RuntimeError::at(
                        format!("indexing a non-pointer value {other:?}"),
                        p.span,
                    )),
                }
            }
            RPlaceKind::Deref(inner) => match self.eval(inner)? {
                Scalar::P(ptr) => Ok(PlaceRef::Mem(ptr)),
                _ => Err(RuntimeError::at("dereference of non-pointer", p.span)),
            },
            RPlaceKind::Member { base, offset } => {
                let b = self.eval(base)?;
                let Scalar::P(ptr) = b else {
                    return Err(RuntimeError::at("member access on non-struct", p.span));
                };
                Ok(PlaceRef::Mem(ptr.offset(*offset)))
            }
            RPlaceKind::MemberUnknown { base, name } => {
                let b = self.eval(base)?;
                let Scalar::P(_) = b else {
                    return Err(RuntimeError::at("member access on non-struct", p.span));
                };
                Err(RuntimeError::at(
                    format!("unknown field '{}'", self.s.prog.interner.resolve(*name)),
                    p.span,
                ))
            }
            RPlaceKind::NotLvalue => Err(RuntimeError::at("expression is not an lvalue", p.span)),
        }
    }

    /// `++`/`--` value transition (shared by the global-locked and
    /// generic place paths; one implementation across engines).
    fn incdec_value(&self, old: Scalar, delta: i64) -> Scalar {
        crate::value::incdec_with_counters(&self.s.counters, old, delta)
    }

    #[inline]
    fn load_place(&mut self, place: &PlaceRef, span: Span) -> RtResult<Scalar> {
        match place {
            PlaceRef::Slot(slot) => Ok(self.frame[*slot as usize]),
            PlaceRef::Global(idx) => Ok(self.s.globals.read()[*idx as usize]),
            PlaceRef::Mem(p) => self.mem_load(*p, span),
        }
    }

    #[inline]
    fn store_place(&mut self, place: &PlaceRef, v: Scalar, span: Span) -> RtResult<()> {
        match place {
            PlaceRef::Slot(slot) => {
                self.frame[*slot as usize] = v;
                Ok(())
            }
            PlaceRef::Global(idx) => {
                self.s.globals.write()[*idx as usize] = v;
                Ok(())
            }
            PlaceRef::Mem(p) => self.mem_store(*p, v, span),
        }
    }

    // -- expressions ----------------------------------------------------------

    fn eval(&mut self, e: &RExpr) -> RtResult<Scalar> {
        match &e.kind {
            RExprKind::Int(v) => Ok(Scalar::I(*v)),
            RExprKind::Float(v) => Ok(Scalar::F(*v)),
            RExprKind::Str(s) => {
                let n = s.chars().count();
                let p = self
                    .s
                    .mem
                    .try_alloc(n + 1)
                    .map_err(|err| RuntimeError::from_mem(err, e.span))?;
                for (i, ch) in s.chars().enumerate() {
                    self.mem_store(p.offset(i as i64), Scalar::I(ch as i64), e.span)?;
                }
                self.mem_store(p.offset(n as i64), Scalar::I(0), e.span)?;
                Ok(Scalar::P(p))
            }
            RExprKind::Local(slot) => Ok(self.frame[*slot as usize]),
            RExprKind::Global(idx) => Ok(self.s.globals.read()[*idx as usize]),
            RExprKind::Unknown(sym) => Err(RuntimeError::at(
                format!("unknown variable '{}'", self.s.prog.interner.resolve(*sym)),
                e.span,
            )),
            RExprKind::Unary(op, inner) => self.eval_unary(*op, inner, e.span),
            RExprKind::Binary(op, l, r) => self.eval_binary(*op, l, r, e.span),
            RExprKind::Assign { op, place, value } => {
                let rv = self.eval(value)?;
                let pref = self.place(place)?;
                if let (Some(b), PlaceRef::Global(idx)) = (op, &pref) {
                    // Compound assign to a global: one write guard for
                    // the whole read-modify-write. The old separate
                    // read()/write() pair let a concurrent RMW interleave
                    // and lose an update (torn update, diverging from the
                    // VM's CAS-atomic globals).
                    let idx = *idx as usize;
                    let globals = Arc::clone(&self.s.globals);
                    let mut g = globals.write();
                    let old = g[idx];
                    let result = self.apply_binop(*b, old, rv, e.span)?;
                    g[idx] = result;
                    return Ok(result);
                }
                let result = match op {
                    None => rv,
                    Some(b) => {
                        let old = self.load_place(&pref, e.span)?;
                        self.apply_binop(*b, old, rv, e.span)?
                    }
                };
                self.store_place(&pref, result, e.span)?;
                Ok(result)
            }
            RExprKind::IncDec(op, place) => {
                let pref = self.place(place)?;
                let delta = if matches!(op, UnOp::PreInc | UnOp::PostInc) {
                    1
                } else {
                    -1
                };
                let (old, new) = if let PlaceRef::Global(idx) = &pref {
                    // `++`/`--` on a global: single write guard across
                    // the RMW (same torn-update fix as compound assign).
                    let idx = *idx as usize;
                    let globals = Arc::clone(&self.s.globals);
                    let mut g = globals.write();
                    let old = g[idx];
                    let new = self.incdec_value(old, delta);
                    g[idx] = new;
                    (old, new)
                } else {
                    let old = self.load_place(&pref, e.span)?;
                    let new = self.incdec_value(old, delta);
                    self.store_place(&pref, new, e.span)?;
                    (old, new)
                };
                Ok(if matches!(op, UnOp::PreInc | UnOp::PreDec) {
                    new
                } else {
                    old
                })
            }
            RExprKind::AddrOf(place) => {
                let pref = self.place(place)?;
                match pref {
                    PlaceRef::Mem(p) => Ok(Scalar::P(p)),
                    _ => Err(RuntimeError::at(
                        "address-of is only supported for memory lvalues",
                        e.span,
                    )),
                }
            }
            RExprKind::Ternary(c, t, f) => {
                Counters::bump(&self.s.counters.branches);
                if self.eval(c)?.truthy() {
                    self.eval(t)
                } else {
                    self.eval(f)
                }
            }
            RExprKind::CallUser { fid, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a)?);
                }
                self.call_user(*fid, &vals, e.span)
            }
            RExprKind::CallBuiltin { name, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a)?);
                }
                self.call_builtin_by_sym(*name, &vals, e.span)
            }
            RExprKind::Printf {
                fmt,
                fmt_expr,
                args,
            } => {
                let fmt_text: String = match (fmt, fmt_expr) {
                    (Some(s), _) => s.to_string(),
                    (None, Some(first)) => {
                        let v = self.eval(first)?;
                        let Scalar::P(mut p) = v else {
                            return Err(RuntimeError::at("printf format is not a string", e.span));
                        };
                        let mut s = String::new();
                        while let Scalar::I(ch) = self.mem_load(p, e.span)? {
                            if ch == 0 {
                                break;
                            }
                            s.push(char::from_u32(ch as u32).unwrap_or('?'));
                            p = p.offset(1);
                        }
                        s
                    }
                    (None, None) => return Err(RuntimeError::at("printf without format", e.span)),
                };
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a)?);
                }
                let rendered = format_printf(&fmt_text, &vals, &self.s.mem);
                self.s.output.lock().push_str(&rendered);
                Ok(Scalar::I(rendered.len() as i64))
            }
            RExprKind::IndirectCall => {
                Err(RuntimeError::at("indirect calls are unsupported", e.span))
            }
            RExprKind::Load(place) => {
                let pref = self.place(place)?;
                self.load_place(&pref, e.span)
            }
            RExprKind::Cast(coerce, inner) => {
                let v = self.eval(inner)?;
                Ok(coerce.apply(v))
            }
            // A bare initializer list outside an array declaration is not
            // evaluable (the tree-walker errors on it as an unknown call).
            RExprKind::InitList(_) => Err(RuntimeError::at(
                "call to undefined function '__initlist'",
                e.span,
            )),
            RExprKind::Comma(l, r) => {
                self.eval(l)?;
                self.eval(r)
            }
        }
    }

    fn eval_unary(&mut self, op: UnOp, inner: &RExpr, span: Span) -> RtResult<Scalar> {
        match op {
            UnOp::Neg => {
                let v = self.eval(inner)?;
                Ok(match v {
                    Scalar::F(f) => {
                        Counters::bump(&self.s.counters.flops);
                        Scalar::F(-f)
                    }
                    other => {
                        Counters::bump(&self.s.counters.int_ops);
                        Scalar::I(-other.as_i64())
                    }
                })
            }
            UnOp::Not => {
                let v = self.eval(inner)?;
                Ok(Scalar::I(i64::from(!v.truthy())))
            }
            UnOp::BitNot => {
                let v = self.eval(inner)?;
                Ok(Scalar::I(!v.as_i64()))
            }
            UnOp::Deref => {
                let v = self.eval(inner)?;
                match v {
                    Scalar::P(p) => self.mem_load(p, span),
                    other => Err(RuntimeError::at(
                        format!("dereference of non-pointer {other:?}"),
                        span,
                    )),
                }
            }
            // Inc/dec and address-of were lowered to dedicated nodes.
            UnOp::AddrOf | UnOp::PreInc | UnOp::PreDec | UnOp::PostInc | UnOp::PostDec => {
                unreachable!("lowered to IncDec/AddrOf")
            }
        }
    }

    fn eval_binary(&mut self, op: BinOp, l: &RExpr, r: &RExpr, span: Span) -> RtResult<Scalar> {
        match op {
            BinOp::And => {
                Counters::bump(&self.s.counters.branches);
                let lv = self.eval(l)?;
                if !lv.truthy() {
                    return Ok(Scalar::I(0));
                }
                let rv = self.eval(r)?;
                return Ok(Scalar::I(i64::from(rv.truthy())));
            }
            BinOp::Or => {
                Counters::bump(&self.s.counters.branches);
                let lv = self.eval(l)?;
                if lv.truthy() {
                    return Ok(Scalar::I(1));
                }
                let rv = self.eval(r)?;
                return Ok(Scalar::I(i64::from(rv.truthy())));
            }
            _ => {}
        }
        let lv = self.eval(l)?;
        let rv = self.eval(r)?;
        self.apply_binop(op, lv, rv, span)
    }

    fn apply_binop(&mut self, op: BinOp, lv: Scalar, rv: Scalar, span: Span) -> RtResult<Scalar> {
        use BinOp::*;
        match (lv, rv, op) {
            (Scalar::P(p), i, Add) if !matches!(i, Scalar::P(_)) => {
                Counters::bump(&self.s.counters.int_ops);
                return Ok(Scalar::P(p.offset(i.as_i64())));
            }
            (i, Scalar::P(p), Add) if !matches!(i, Scalar::P(_)) => {
                Counters::bump(&self.s.counters.int_ops);
                return Ok(Scalar::P(p.offset(i.as_i64())));
            }
            (Scalar::P(p), i, Sub) if !matches!(i, Scalar::P(_)) => {
                Counters::bump(&self.s.counters.int_ops);
                return Ok(Scalar::P(p.offset(-i.as_i64())));
            }
            (Scalar::P(a), Scalar::P(b), Sub) => {
                Counters::bump(&self.s.counters.int_ops);
                return Ok(Scalar::I(a.index - b.index));
            }
            (Scalar::P(a), Scalar::P(b), Eq) => {
                return Ok(Scalar::I(i64::from(a == b)));
            }
            (Scalar::P(a), Scalar::P(b), Ne) => {
                return Ok(Scalar::I(i64::from(a != b)));
            }
            (Scalar::P(_), Scalar::Null, Eq) | (Scalar::Null, Scalar::P(_), Eq) => {
                return Ok(Scalar::I(0));
            }
            (Scalar::P(_), Scalar::Null, Ne) | (Scalar::Null, Scalar::P(_), Ne) => {
                return Ok(Scalar::I(1));
            }
            _ => {}
        }

        let float = lv.is_float() || rv.is_float();
        if float {
            let a = lv.as_f64();
            let b = rv.as_f64();
            let out = match op {
                Add => Scalar::F(a + b),
                Sub => Scalar::F(a - b),
                Mul => Scalar::F(a * b),
                Div => Scalar::F(a / b),
                Rem => Scalar::F(a % b),
                Lt => Scalar::I(i64::from(a < b)),
                Gt => Scalar::I(i64::from(a > b)),
                Le => Scalar::I(i64::from(a <= b)),
                Ge => Scalar::I(i64::from(a >= b)),
                Eq => Scalar::I(i64::from(a == b)),
                Ne => Scalar::I(i64::from(a != b)),
                Shl | Shr | BitAnd | BitXor | BitOr => {
                    return Err(RuntimeError::at("bitwise op on float", span))
                }
                And | Or => unreachable!("handled above"),
            };
            Counters::bump(&self.s.counters.flops);
            Ok(out)
        } else {
            let a = lv.as_i64();
            let b = rv.as_i64();
            let out = match op {
                Add => Scalar::I(a.wrapping_add(b)),
                Sub => Scalar::I(a.wrapping_sub(b)),
                Mul => Scalar::I(a.wrapping_mul(b)),
                Div => {
                    if b == 0 {
                        return Err(RuntimeError::at("integer division by zero", span));
                    }
                    Scalar::I(a.wrapping_div(b))
                }
                Rem => {
                    if b == 0 {
                        return Err(RuntimeError::at("integer modulo by zero", span));
                    }
                    Scalar::I(a.wrapping_rem(b))
                }
                Shl => Scalar::I(a.wrapping_shl(b as u32)),
                Shr => Scalar::I(a.wrapping_shr(b as u32)),
                Lt => Scalar::I(i64::from(a < b)),
                Gt => Scalar::I(i64::from(a > b)),
                Le => Scalar::I(i64::from(a <= b)),
                Ge => Scalar::I(i64::from(a >= b)),
                Eq => Scalar::I(i64::from(a == b)),
                Ne => Scalar::I(i64::from(a != b)),
                BitAnd => Scalar::I(a & b),
                BitXor => Scalar::I(a ^ b),
                BitOr => Scalar::I(a | b),
                And | Or => unreachable!("handled above"),
            };
            Counters::bump(&self.s.counters.int_ops);
            Ok(out)
        }
    }

    // -- calls ----------------------------------------------------------------

    fn call_user(&mut self, fid: u32, args: &[Scalar], span: Span) -> RtResult<Scalar> {
        Counters::bump(&self.s.counters.calls);
        match self.s.opts.max_call_depth {
            Some(limit) if self.depth >= limit => {
                return Err(RuntimeError::trap_at(
                    Trap::DepthLimit,
                    format!("call depth limit exceeded ({limit})"),
                    span,
                ));
            }
            None if self.depth >= 512 => {
                return Err(RuntimeError::at("call stack overflow", span));
            }
            _ => {}
        }
        // One refcount bump per call frame: a local `Arc` handle lets the
        // statement walk borrow the program data independently of
        // `&mut self` (the body outlives every re-entrant borrow below).
        // The cost is dwarfed by the frame allocation.
        let prog = Arc::clone(&self.s.prog);
        let func = &prog.funcs[fid as usize];

        // Bind (coerced) arguments into a fresh flat frame.
        let mut frame = vec![Scalar::Uninit; func.frame_size];
        for (&(slot, coerce), v) in func.params.iter().zip(args) {
            frame[slot as usize] = coerce.apply(*v);
        }

        // Pure-call memoization: consult the cache for verified-pure,
        // const-like functions (see module docs for the safety argument).
        let memo_key = match (&self.s.memo, func.cacheable) {
            (Some(_), true) => MemoCache::key(fid, &frame[..func.params.len().min(frame.len())]),
            _ => None,
        };
        if let (Some(cache), Some(key)) = (&self.s.memo, &memo_key) {
            if let Some(v) = cache.get(key) {
                Counters::bump(&self.s.counters.memo_hits);
                return Ok(v);
            }
            Counters::bump(&self.s.counters.memo_misses);
        }

        let fspan = func.span;
        let saved = std::mem::replace(&mut self.frame, frame);
        self.depth += 1;
        let flow = self.exec_stmts(&func.body);
        self.depth -= 1;
        self.frame = saved;
        let result = match flow? {
            Flow::Return(v) => v,
            Flow::Normal => Scalar::I(0),
            Flow::Break | Flow::Continue => {
                return Err(RuntimeError::at("break/continue outside loop", fspan))
            }
        };
        if let (Some(cache), Some(key)) = (&self.s.memo, memo_key) {
            cache.insert(key, result);
        }
        Ok(result)
    }

    fn call_builtin_by_sym(
        &mut self,
        name: Symbol,
        args: &[Scalar],
        span: Span,
    ) -> RtResult<Scalar> {
        Counters::bump(&self.s.counters.calls);
        let name_str = self.s.prog.interner.resolve(name);
        let mut out = String::new();
        match call_builtin(name_str, args, &self.s.mem, &mut out) {
            Some(Ok(v)) => {
                if !out.is_empty() {
                    self.s.output.lock().push_str(&out);
                }
                Ok(v)
            }
            Some(Err(e)) => Err(RuntimeError::from_mem(e, span)),
            None => Err(RuntimeError::at(
                format!("call to undefined function '{name_str}'"),
                span,
            )),
        }
    }

    // -- statements -----------------------------------------------------------

    fn exec_stmts(&mut self, stmts: &[RStmt]) -> RtResult<Flow> {
        for s in stmts {
            match self.exec(s)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec(&mut self, stmt: &RStmt) -> RtResult<Flow> {
        // Parallel regions bypass the per-statement step accounting, just
        // like the tree-walker's exec_block short-circuit.
        if let RStmtKind::OmpFor(of) = &stmt.kind {
            self.exec_omp_for(of)?;
            return Ok(Flow::Normal);
        }
        // Await join points are synthetic (no source statement): they
        // force pending futures without ticking the step budget.
        if let RStmtKind::AwaitSlots(slots) = &stmt.kind {
            self.exec_await(slots)?;
            return Ok(Flow::Normal);
        }
        self.step(stmt.span)?;
        match &stmt.kind {
            RStmtKind::Decl(decls) => {
                for d in decls {
                    self.exec_decl(d)?;
                }
                Ok(Flow::Normal)
            }
            RStmtKind::Expr(Some(e)) => {
                self.eval(e)?;
                Ok(Flow::Normal)
            }
            RStmtKind::Expr(None) | RStmtKind::Nop => Ok(Flow::Normal),
            RStmtKind::Block(stmts) => self.exec_stmts(stmts),
            RStmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                Counters::bump(&self.s.counters.branches);
                if self.eval(cond)?.truthy() {
                    self.exec(then_branch)
                } else if let Some(e) = else_branch {
                    self.exec(e)
                } else {
                    Ok(Flow::Normal)
                }
            }
            RStmtKind::While { cond, body } => {
                loop {
                    Counters::bump(&self.s.counters.branches);
                    if !self.eval(cond)?.truthy() {
                        break;
                    }
                    match self.exec(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            RStmtKind::DoWhile { body, cond } => {
                loop {
                    match self.exec(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                    Counters::bump(&self.s.counters.branches);
                    if !self.eval(cond)?.truthy() {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            RStmtKind::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                if let Some(i) = init {
                    match &i.kind {
                        RStmtKind::Decl(decls) => {
                            for d in decls {
                                self.exec_decl(d)?;
                            }
                        }
                        RStmtKind::Expr(Some(e)) => {
                            self.eval(e)?;
                        }
                        _ => {}
                    }
                }
                loop {
                    self.step(stmt.span)?;
                    Counters::bump(&self.s.counters.branches);
                    if let Some(c) = cond {
                        if !self.eval(c)?.truthy() {
                            break;
                        }
                    }
                    match self.exec(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                    if let Some(s) = step {
                        self.eval(s)?;
                    }
                }
                Ok(Flow::Normal)
            }
            RStmtKind::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e)?,
                    None => Scalar::I(0),
                };
                Ok(Flow::Return(v))
            }
            RStmtKind::Break => Ok(Flow::Break),
            RStmtKind::Continue => Ok(Flow::Continue),
            RStmtKind::SpawnPure(sp) => {
                self.exec_spawn(sp, stmt.span)?;
                Ok(Flow::Normal)
            }
            RStmtKind::OmpFor(_) | RStmtKind::AwaitSlots(_) => {
                unreachable!("handled before step()")
            }
        }
    }

    // -- pure-call futures ----------------------------------------------------

    /// Write `v` to a local slot, growing the frame if the slot's
    /// declaration has not materialised it yet (same as `exec_decl`).
    fn store_slot(&mut self, slot: u32, v: Scalar) {
        let slot = slot as usize;
        if slot >= self.frame.len() {
            self.frame.resize(slot + 1, Scalar::Uninit);
        }
        self.frame[slot] = v;
    }

    /// Execute one spawn site: evaluate the arguments eagerly (original
    /// program order), then either run the call as a future on the
    /// worker pool or inline (futures disabled, race-check tracking on,
    /// memo hit, or pool saturated).
    fn exec_spawn(&mut self, sp: &RSpawn, span: Span) -> RtResult<()> {
        let mut vals = Vec::with_capacity(sp.args.len());
        for a in &sp.args {
            vals.push(self.eval(a)?);
        }
        let futures_on = self.s.opts.futures && self.s.opts.threads > 1 && self.track.is_none();
        // The throttle is the hot case once every worker is busy (the
        // recursion's granularity governor): the hardware-clamped
        // pool-wide pending cap, plus — from a pool worker — its own
        // exposed-task budget (a handful of relaxed loads either way,
        // see machine::spawn_capacity) — then the call runs inline
        // like the original statement.
        let throttled = futures_on && {
            let pool = self.futures_pool();
            !machine::spawn_capacity(&pool, self.s.opts.threads, self.s.opts.steal)
        };
        if !futures_on || throttled {
            // Exactly the original call statement.
            if throttled {
                Counters::bump(&self.s.counters.futures_inlined);
            }
            let v = self.call_user(sp.fid, &vals, span)?;
            self.store_slot(sp.slot, sp.coerce.apply(v));
            return Ok(());
        }
        let func = &self.s.prog.funcs[sp.fid as usize];
        // Memo pre-check: a hit never spawns (mirrors `call_user`'s hit
        // path via the shared key builder).
        if let Some(cache) = &self.s.memo {
            if func.cacheable {
                if let Some(key) =
                    MemoCache::key_for_call(&func.params, func.frame_size, sp.fid, &vals)
                {
                    if let Some(v) = cache.get(&key) {
                        Counters::bump(&self.s.counters.calls);
                        Counters::bump(&self.s.counters.memo_hits);
                        self.store_slot(sp.slot, sp.coerce.apply(v));
                        return Ok(());
                    }
                }
            }
        }
        let pool = self.futures_pool();
        let shared = self.s.clone();
        let fid = sp.fid;
        let depth = self.depth;
        // The task owns everything it touches; counters and the memo
        // cache are shared Arcs, so the child's bookkeeping lands in the
        // same totals as inline execution would. The child inherits the
        // spawner's call depth so the stack-overflow guard trips exactly
        // where the inline call would have.
        let vals_kept = vals.clone();
        let task = move || {
            let mut child = RInterp::new(shared);
            child.depth = depth;
            let res = child.call_user(fid, &vals, Span::DUMMY);
            child.refund_fuel();
            res
        };
        let fut = PureFuture::spawn(&pool, self.s.opts.steal, task);
        Counters::bump(&self.s.counters.futures_spawned);
        if fut.pushed_local() {
            Counters::bump(&self.s.counters.local_pushes);
        }
        self.pending.0.push(ResPending {
            depth: self.depth,
            slot: sp.slot,
            coerce: sp.coerce,
            fid,
            vals: vals_kept,
            fut,
        });
        Ok(())
    }

    /// Force a batch's futures in spawn order. Slots without a pending
    /// entry were resolved inline and are skipped. A future nobody
    /// claimed yet is *revoked* ([`PureFuture::cancel`]) and its call
    /// runs inline right here — the spawn cost collapses to a queue
    /// round trip. All listed futures are drained before the first
    /// error (earliest in slot order) propagates, so no task outlives
    /// its join point on success paths.
    fn exec_await(&mut self, slots: &[u32]) -> RtResult<()> {
        let mut first_err: Option<RuntimeError> = None;
        for &slot in slots {
            let Some(pos) = self
                .pending
                .0
                .iter()
                .rposition(|p| p.depth == self.depth && p.slot == slot)
            else {
                continue;
            };
            let p = self.pending.0.remove(pos);
            let res = match p.fut.cancel() {
                // Revoked-and-inlined futures stay counted in
                // `futures_spawned` only; `futures_inlined` is reserved
                // for spawn sites the admission throttle bounced.
                Ok(()) => self.call_user(p.fid, &p.vals, Span::DUMMY),
                Err(fut) => {
                    let (res, report) = fut.wait();
                    if report.helped {
                        Counters::bump(&self.s.counters.futures_helped);
                    }
                    if report.stolen {
                        Counters::bump(&self.s.counters.tasks_stolen);
                    }
                    res
                }
            };
            match res {
                Ok(v) => self.store_slot(p.slot, p.coerce.apply(v)),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn exec_omp_for(&mut self, of: &ROmpFor) -> RtResult<()> {
        let header = match &of.header {
            Ok(h) => h,
            Err(msg) => return Err(RuntimeError::at(msg.clone(), of.span)),
        };
        let lb = self.eval(&header.lb)?.as_i64();
        let ub_incl = if header.ub_inclusive {
            self.eval(&header.ub)?.as_i64()
        } else {
            self.eval(&header.ub)?.as_i64() - 1
        };
        if ub_incl < lb {
            return Ok(());
        }
        let n = (ub_incl - lb + 1) as u64;

        // Static verdict first: Independent skips the O(n) dynamic
        // pre-pass, Racy aborts before any iteration, Unknown falls back
        // to the dynamic check.
        if self.s.opts.race_check {
            match of.verdict {
                RaceVerdict::Independent => {
                    Counters::bump(&self.s.counters.race_static_skips);
                }
                RaceVerdict::Racy => {
                    return Err(RuntimeError::at(
                        "static race analysis rejected this parallel loop (verdict: racy)",
                        of.span,
                    ));
                }
                RaceVerdict::Unknown => self.race_check(header, lb, n)?,
            }
        }

        // The iterator slot may exceed the currently materialised frame
        // (its declaration lives inside the region) — grow first so every
        // child clone has room.
        let needed = header.iter_slot as usize + 1;
        if self.frame.len() < needed {
            self.frame.resize(needed, Scalar::Uninit);
        }
        let base_frame = self.frame.clone();
        let shared = self.s.clone();
        let err: Mutex<Option<RuntimeError>> = Mutex::new(None);
        // Trap-drains-siblings: remaining iterations bail at entry once
        // any iteration errored, so a trap unwinds the region promptly.
        let failed = AtomicBool::new(false);

        let iteration = |k: u64| {
            if failed.load(Ordering::Relaxed) {
                return;
            }
            let mut child = RInterp::new(shared.clone());
            child.frame = base_frame.clone();
            child.frame[header.iter_slot as usize] = Scalar::I(lb + k as i64);
            if let Err(e) = child.exec(&header.body) {
                failed.store(true, Ordering::Relaxed);
                let mut g = err.lock();
                if g.is_none() {
                    *g = Some(e);
                }
            }
            child.refund_fuel();
        };
        if self.s.opts.pool {
            parallel_for_pooled(n, self.s.opts.threads, of.schedule, iteration);
        } else {
            parallel_for(n, self.s.opts.threads, of.schedule, iteration);
        }

        match err.into_inner() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Sequentially validate that iteration access sets are disjoint — the
    /// dynamic counterpart of the purity guarantee (same as the oracle).
    fn race_check(&mut self, header: &ROmpHeader, lb: i64, n: u64) -> RtResult<()> {
        let mut acc = RaceAccumulator::new();
        let needed = header.iter_slot as usize + 1;
        if self.frame.len() < needed {
            self.frame.resize(needed, Scalar::Uninit);
        }
        let base_frame = self.frame.clone();
        let checked = n.min(self.s.opts.effective_race_check_cap());
        self.s
            .counters
            .race_dyn_iters
            .fetch_add(checked, Ordering::Relaxed);
        // One child interpreter reused across every validated iteration;
        // `clone_from` refills its slot frame in place (reusing the
        // allocation) instead of cloning the base frame per iteration.
        let mut child = RInterp::new(self.s.clone());
        for k in 0..checked {
            child.frame.clone_from(&base_frame);
            child.frame[header.iter_slot as usize] = Scalar::I(lb + k as i64);
            child.track = Some(TrackSets::default());
            let res = child.exec(&header.body);
            let t = child.track.take().expect("tracking on");
            res?;
            acc.absorb(t)
                .map_err(|msg| RuntimeError::at(msg, header.body.span))?;
        }
        child.refund_fuel();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Program;
    use cfront::parser::parse;

    fn program(src: &str) -> Program {
        let r = parse(src);
        assert!(!r.diags.has_errors(), "{}", r.diags.render_all(src));
        Program::new(&r.unit)
    }

    fn program_with_pure(src: &str, pure_fns: &[&str]) -> Program {
        let r = parse(src);
        assert!(!r.diags.has_errors(), "{}", r.diags.render_all(src));
        let set: HashSet<String> = pure_fns.iter().map(|s| s.to_string()).collect();
        Program::with_pure_set(&r.unit, &set)
    }

    const FIB_SRC: &str = "\
pure int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
int main() { return fib(18) % 251; }
";

    #[test]
    fn memo_caches_verified_pure_calls() {
        let prog = program_with_pure(FIB_SRC, &["fib"]);
        assert_eq!(prog.resolved().cacheable_functions(), vec!["fib"]);
        let with_memo = prog.run(InterpOptions::default()).expect("runs");
        let without_memo = prog
            .run(InterpOptions {
                memo: false,
                ..Default::default()
            })
            .expect("runs");
        let legacy = prog.run_legacy(InterpOptions::default()).expect("runs");

        // fib(18) = 2584 → exit 2584 % 251.
        assert_eq!(with_memo.exit_code, 2584 % 251);
        assert_eq!(without_memo.exit_code, with_memo.exit_code);
        assert_eq!(legacy.exit_code, with_memo.exit_code);

        // Memoized: one miss per distinct argument (0..=18), everything
        // else hits; the naive run recomputes exponentially.
        assert!(with_memo.counters.memo_hits > 0, "{:?}", with_memo.counters);
        assert_eq!(with_memo.counters.memo_misses, 19);
        assert!(
            with_memo.counters.flops + with_memo.counters.int_ops
                < without_memo.counters.flops + without_memo.counters.int_ops
        );
        // Memo-disabled resolved run matches the oracle on every executed-op
        // counter (the optimizer's bookkeeping counters are engine-specific).
        assert_eq!(
            without_memo.counters.without_memo(),
            legacy.counters.without_memo()
        );
        assert_eq!(without_memo.counters.memo_hits, 0);
    }

    #[test]
    fn memo_disabled_without_purity_info() {
        let prog = program(FIB_SRC);
        assert!(prog.resolved().cacheable_functions().is_empty());
        let r = prog.run(InterpOptions::default()).expect("runs");
        assert_eq!(r.counters.memo_hits, 0);
        assert_eq!(r.counters.memo_misses, 0);
        let legacy = prog.run_legacy(InterpOptions::default()).expect("runs");
        assert_eq!(r.counters.without_memo(), legacy.counters.without_memo());
    }

    #[test]
    fn global_readers_are_not_cacheable() {
        // Verified pure (GCC semantics allow reading globals), but the
        // result depends on mutable state — must not be memoized.
        let src = "\
int scale;
pure int f(int x) { return x * scale; }
int main() {
    scale = 2;
    int a = f(10);
    scale = 3;
    int b = f(10);
    return a + b; // 20 + 30: a second f(10) must not reuse the cache
}
";
        let prog = program_with_pure(src, &["f"]);
        assert!(prog.resolved().cacheable_functions().is_empty());
        let r = prog.run(InterpOptions::default()).expect("runs");
        assert_eq!(r.exit_code, 50);
        assert_eq!(r.counters.memo_hits, 0);
    }

    #[test]
    fn pointer_params_are_not_cacheable() {
        let src = "\
pure int sum(pure int* a, int n) {
    int acc = 0;
    for (int i = 0; i < n; i++) acc += a[i];
    return acc;
}
int main() {
    int* buf = (int*) malloc(4 * sizeof(int));
    for (int i = 0; i < 4; i++) buf[i] = i;
    int first = sum((pure int*) buf, 4);
    buf[0] = 100;
    int second = sum((pure int*) buf, 4);
    return first + second; // 6 + 106
}
";
        let prog = program_with_pure(src, &["sum"]);
        assert!(prog.resolved().cacheable_functions().is_empty());
        let r = prog.run(InterpOptions::default()).expect("runs");
        assert_eq!(r.exit_code, 112);
        assert_eq!(r.counters.memo_hits, 0);
    }

    #[test]
    fn impure_callees_break_cacheability() {
        let src = "\
int tick;
int bump() { tick++; return tick; }
pure int f(int x) { return x + 1; }
int g(int x) { return f(x) + bump(); }
int main() { return g(1) + g(1); }
";
        // Only f is verified pure; g is not declared pure and calls an
        // impure function — f stays cacheable, g never enters the set.
        let prog = program_with_pure(src, &["f"]);
        assert_eq!(prog.resolved().cacheable_functions(), vec!["f"]);
        let r = prog.run(InterpOptions::default()).expect("runs");
        // g(1) = 2 + 1 = 3, then g(1) = 2 + 2 = 4.
        assert_eq!(r.exit_code, 7);
    }

    #[test]
    fn mutually_recursive_pure_functions_stay_cacheable() {
        let src = "\
pure int is_odd(int n);
pure int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
pure int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
int main() { return is_even(20) * 10 + is_odd(7); }
";
        let prog = program_with_pure(src, &["is_even", "is_odd"]);
        let mut cacheable = prog.resolved().cacheable_functions();
        cacheable.sort_unstable();
        assert_eq!(cacheable, vec!["is_even", "is_odd"]);
        let r = prog.run(InterpOptions::default()).expect("runs");
        assert_eq!(r.exit_code, 11);
    }

    #[test]
    fn memo_results_are_shared_across_parallel_iterations() {
        let src = "\
pure int weight(int k) { int acc = 0; for (int j = 0; j <= k % 7; j++) acc += j; return acc; }
int main() {
    int* out = (int*) malloc(128 * sizeof(int));
#pragma omp parallel for schedule(dynamic,4)
    for (int i = 0; i < 128; i++) out[i] = weight(i);
    int total = 0;
    for (int i = 0; i < 128; i++) total += out[i];
    return total % 199;
}
";
        let prog = program_with_pure(src, &["weight"]);
        assert_eq!(prog.resolved().cacheable_functions(), vec!["weight"]);
        let seq = prog.run(InterpOptions::default()).expect("seq");
        let par = prog
            .run(InterpOptions {
                threads: 4,
                ..Default::default()
            })
            .expect("par");
        let legacy = prog.run_legacy(InterpOptions::default()).expect("legacy");
        assert_eq!(seq.exit_code, par.exit_code);
        assert_eq!(seq.exit_code, legacy.exit_code);
        // 128 calls with only 128 distinct k but k % 7 has 7 classes…
        // arguments are the raw k, so every k is a distinct key: first
        // run sees 128 misses; the hits come from repeated harness runs
        // only. Verify the counters stay consistent instead.
        assert_eq!(
            seq.counters.memo_hits + seq.counters.memo_misses,
            128,
            "{:?}",
            seq.counters
        );
    }

    /// The one documented divergence (module docs): the resolved engine
    /// implements ISO-C block scoping, the oracle keeps a flat per-call
    /// name map. Shadowing programs get the *correct* answer here.
    #[test]
    fn scoping_divergence_from_oracle_is_iso_c() {
        let shadow = program("int main() { int x = 1; { int x = 2; x = x + 1; } return x; }");
        // ISO C: the inner `x` dies with its block.
        assert_eq!(
            shadow
                .run(InterpOptions::default())
                .expect("runs")
                .exit_code,
            1
        );
        // The flat-scoped oracle lets the inner write clobber the outer.
        assert_eq!(
            shadow
                .run_legacy(InterpOptions::default())
                .expect("runs")
                .exit_code,
            3
        );

        // Use-after-scope is ill-formed C: the resolved engine rejects it,
        // the oracle leaks the iterator past the loop.
        let leak = program("int main() { for (int i = 0; i < 3; i++) ; return i; }");
        assert!(leak.run(InterpOptions::default()).is_err());
        assert_eq!(
            leak.run_legacy(InterpOptions::default())
                .expect("runs")
                .exit_code,
            3
        );
    }

    /// Strided parallel loops must be rejected, not silently run with
    /// stride 1 (both engines share the tightened header check).
    #[test]
    fn non_unit_stride_parallel_loop_is_rejected() {
        let src = "\
int main() {
    int* a = (int*) malloc(64 * sizeof(int));
#pragma omp parallel for
    for (int i = 0; i < 64; i += 2) a[i] = i;
    return 0;
}
";
        let prog = program(src);
        for r in [
            prog.run(InterpOptions::default()),
            prog.run_legacy(InterpOptions::default()),
        ] {
            let err = r.expect_err("stride 2 must be rejected");
            assert!(err.message.contains("unit increment"), "{}", err.message);
        }
        // `i += 1` stays accepted.
        let unit = program(
            "int main() {\n\
                 int* a = (int*) malloc(8 * sizeof(int));\n\
             #pragma omp parallel for\n\
                 for (int i = 0; i < 8; i += 1) a[i] = i * 3;\n\
                 return a[7];\n\
             }",
        );
        assert_eq!(
            unit.run(InterpOptions::default()).expect("runs").exit_code,
            21
        );
    }

    #[test]
    fn resolved_matches_legacy_on_mixed_program() {
        let src = "\
int g;
struct s1 { int v; int w; };
struct s2 { int pad[3]; int w; };
int helper(int x, int y) { int t = x * y; if (t < 0) t = -t; return t % 97; }
float fhelper(float x) { return x * 0.5f + 3.0f; }
int main() {
    int acc = 0;
    g = 17;
    struct s1 p;
    struct s2 q;
    p.w = 4;
    q.w = 9;
    int* a = (int*) malloc(64 * sizeof(int));
    float* b = (float*) malloc(64 * sizeof(float));
#pragma omp parallel for
    for (int i = 0; i < 64; i++) {
        a[i] = helper(i, 13) + (i ^ 5);
        b[i] = fhelper(i);
    }
    for (int i = 0; i < 64; i++) { acc += a[i] % 31; acc += (int) b[i]; }
    acc += p.w * 10 + q.w + g;
    printf(\"acc=%d g=%d\\n\", acc, g);
    return acc % 113;
}
";
        let prog = program(src);
        for threads in [1usize, 4] {
            let opts = InterpOptions {
                threads,
                ..Default::default()
            };
            let resolved = prog.run(opts).expect("resolved");
            let legacy = prog.run_legacy(opts).expect("legacy");
            assert_eq!(resolved.exit_code, legacy.exit_code, "threads={threads}");
            assert_eq!(resolved.output, legacy.output, "threads={threads}");
            assert_eq!(
                resolved.counters.without_memo(),
                legacy.counters,
                "threads={threads}"
            );
        }
    }
}
