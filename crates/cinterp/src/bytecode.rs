//! Bytecode lowering: flattens the resolved IR ([`crate::resolve`]) into
//! contiguous instruction arrays for the stack VM ([`crate::vm`]).
//!
//! The resolved engine removed name lookup from the hot path but still
//! *walks trees*: every statement and expression dispatch chases a `Box`
//! pointer, carries a `Span`, and threads a `Result` through a deep Rust
//! call stack. This pass flattens each function **once** into a
//! `Vec<Insn>` — a fixed 12-byte instruction of one opcode and two `u32`
//! operands — so execution becomes a linear fetch/dispatch loop:
//!
//! * **No recursion on the hot path** — control flow is absolute `u32`
//!   jump targets (`Jump`, `JumpIfFalse`, `JumpIfTrue`) instead of
//!   recursive `exec`/`eval` calls; only user-function calls and nested
//!   parallel regions recurse.
//! * **Indices instead of `Box` pointers** — literals, strings, error
//!   messages and parallel-region headers live in per-function side
//!   tables addressed by `u32` operand; the instruction stream is one
//!   contiguous allocation with ideal locality.
//! * **Side tables keep the cold data out of line** — a parallel `Span`
//!   array (`spans[pc]`) is consulted only when raising an error or
//!   ticking the step limit, so the hot loop never touches it.
//!
//! ## Semantics contract
//!
//! The compiled form preserves the resolved engine's observable behaviour
//! **exactly**: evaluation order (values before places, left before
//! right), executed-operation counter bumps (`flops`/`int_ops`/`loads`/
//! `stores`/`calls`/`branches` tick at the same operations), statement
//! step accounting (a `Step` instruction wherever `exec()` ticked), and
//! runtime error messages. The differential proptests assert bytecode ==
//! resolved == legacy on exit code, output and counters.
//!
//! `#pragma omp parallel for` regions compile to `[lb][ub][OmpRegion]
//! body… [RegionEnd]`: the parent evaluates the bounds inline, the
//! `OmpRegion` instruction hands the body range to the parallel runtime
//! (each worker re-enters the code at `body_start`), and the parent
//! resumes after `RegionEnd`. `break`/`continue`/`return` that would
//! escape a region body jump to its `RegionEnd` — the iteration ends,
//! mirroring the resolved engine discarding the child's control flow.

use crate::resolve::{
    Coerce, RDecl, RDeclKind, RExpr, RExprKind, ROmpFor, RPlace, RPlaceKind, RSpawn, RStmt,
    RStmtKind, ResolvedProgram, SlotRef,
};
use crate::value::Scalar;
use cfront::ast::{BinOp, UnOp};
use cfront::intern::Interner;
use cfront::span::Span;
use machine::OmpSchedule;
use std::collections::HashMap;
use std::sync::Arc;

/// One VM instruction: opcode plus two `u32` operands. Jump targets are
/// absolute instruction indices; other operands index side tables
/// (constants, strings, regions, error messages) or carry immediates
/// (slots, arities, binop codes).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Insn {
    pub(crate) op: Op,
    pub(crate) a: u32,
    pub(crate) b: u32,
}

/// Opcodes of the stack VM. Stack effects are noted as `pops → pushes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub(crate) enum Op {
    /// Statement boundary: tick the step limit (span = owning statement).
    Step,
    /// `0 → 1` push `consts[a]`.
    Const,
    /// `0 → 1` allocate string `strings[a]` (one char per slot + NUL,
    /// counted stores), push its pointer.
    StrNew,
    /// `0 → 1` push frame slot `a`.
    LoadLocal,
    /// `0 → 1` push global `a`.
    LoadGlobal,
    /// `0 → 0` (peeks) store stack top into frame slot `a`, keep value.
    StoreLocal,
    /// `0 → 0` (peeks) store stack top into global `a`, keep value.
    StoreGlobal,
    /// `1 → 0` pop into frame slot `a` (declaration init).
    StoreLocalPop,
    /// `1 → 0` pop into global `a`.
    StoreGlobalPop,
    /// `1 → 2` duplicate the stack top.
    Dup,
    /// `1 → 0` discard the stack top.
    Pop,
    /// `0 → 1` push `Uninit`.
    PushUninit,
    /// `1 → 1` arithmetic negate (counted flop/int-op).
    UnaryNeg,
    /// `1 → 1` logical not.
    UnaryNot,
    /// `1 → 1` bitwise not.
    UnaryBitNot,
    /// `1 → 1` rvalue dereference: pop pointer, counted load.
    DerefLoad,
    /// `2 → 1` binary operator `binop_decode(a)` (counted flop/int-op).
    Binary,
    /// `0 → 1` fused `frame[a & 0xFFFF] <op b> frame[a >> 16]` — the
    /// hot local⊕local shape without operand-stack traffic.
    BinLL,
    /// `0 → 1` fused `frame[a & 0xFFFF] <op b> consts[a >> 16]`.
    BinLC,
    /// `0 → 1` fused array load `frame[a & 0xFFFF][frame[a >> 16]]`:
    /// base pointer and index straight from frame slots, one counted
    /// load — the hot `x = a[i]` shape of array-heavy loops without
    /// operand-stack traffic.
    LoadIdxLL,
    /// `1 → 1|0` fused array store `frame[a & 0xFFFF][frame[a >> 16]] =
    /// top`: one counted store; `b` = 1 pops the value (statement
    /// position), otherwise it stays as the expression result.
    StoreIdxLL,
    /// `1 → 1|0` fused compound array assign
    /// `frame[a & 0xFFFF][frame[a >> 16]] <op>= top`: pops the rhs, one
    /// counted load, binop `b & 0xFF`, one counted store — the hot
    /// `a[i] += x` shape with base and index in frame slots; `b & 0x100`
    /// suppresses the result push (statement position).
    CompoundIdxLL,
    /// `2 → 1` place `base[idx]`: pop idx then base, push element ptr.
    PtrIndex,
    /// `1 → 1` place `*p`: assert pointer.
    PtrDeref,
    /// `1 → 1` place `base.field`: pop base ptr, push `base + a`.
    PtrMember,
    /// `1 → 1` pop pointer, counted load from it.
    LoadMem,
    /// `2 → 1|0` pop ptr then value, counted store; pushes the value
    /// back unless `b` = 1 (statement position).
    StoreMem,
    /// `1 → 1` pop ptr, counted load from `ptr + a` (init-list descent).
    LoadIdxConst,
    /// `1 → 1|0` peek: fall through when the top is a pointer; otherwise
    /// pop it and jump to `a` (skips an init-list descent into a
    /// non-pointer row, mirroring the resolved engine's conditional
    /// recursion).
    SkipUnlessPtr,
    /// `2 → 0` pop value then ptr, counted store to `ptr + a`.
    StoreIdxConst,
    /// `1 → 1|0` compound assign to slot `a` with binop `b & 0xFF`;
    /// `b & 0x100` suppresses the result push (statement position).
    CompoundLocal,
    /// `1 → 1|0` compound assign to global `a` (flags as CompoundLocal).
    CompoundGlobal,
    /// `2 → 1|0` pop ptr then rhs: counted load, apply binop `a`,
    /// counted store; `b` = 1 suppresses the result push.
    CompoundMem,
    /// `0 → 1|0` `++`/`--` on slot `a`; `b` = [`incdec_flags`] mode
    /// (bit 2 suppresses the result push).
    IncDecLocal,
    /// `0 → 1|0` `++`/`--` on global `a`.
    IncDecGlobal,
    /// `1 → 1|0` `++`/`--` through popped pointer (counted load+store).
    IncDecMem,
    /// `1 → 1` value coercion: `a` = 0 → float, 1 → int.
    Coerce,
    /// `0 → 0` unconditional jump to `a`.
    Jump,
    /// `1 → 0` pop; jump to `a` when falsy.
    JumpIfFalse,
    /// `1 → 0` pop; jump to `a` when truthy.
    JumpIfTrue,
    /// `0 → 0` count one branch (`if`/loops/ternary/`&&`/`||`).
    BumpBranch,
    /// `1 → 1` collapse to `I(0)`/`I(1)` by truthiness.
    Truthy,
    /// `a_args → 1` call user function `a` with `b` args (counted call).
    CallUser,
    /// `a_args → 1` call builtin symbol `a` with `b` args (counted call).
    CallBuiltin,
    /// `b(+1) → 1` printf: `a` = captured format string index, or
    /// `u32::MAX` when the format pointer precedes the `b` args on the
    /// stack.
    Printf,
    /// `a → 1` pop `a` dimension sizes, allocate a (nested) array, push
    /// the spine pointer.
    AllocArray,
    /// `0 → 1` allocate a struct of `a` slots, push its pointer.
    AllocStruct,
    /// `2 → 0` parallel region `regions[a]`: pops ub then lb, runs the
    /// body range on the omprt runtime, resumes after its `RegionEnd`.
    OmpRegion,
    /// `nargs → 0` pure-call future `spawns[a]`: pops the pre-evaluated
    /// arguments and either submits the call to the worker pool (slot
    /// resolves at the matching `AwaitSlot`) or — with futures disabled,
    /// on a memo hit, or with the pool saturated — resolves the target
    /// slot immediately.
    SpawnPure,
    /// `0 → 0` force the future pending on frame slot `a` (no-op when
    /// the spawn already resolved inline); merges the worker's tally and
    /// memo shard, propagates its error.
    AwaitSlot,
    /// Terminator of a region body: ends the current iteration.
    RegionEnd,
    /// `1 → _` pop the return value and leave the function.
    Ret,
    /// Raise runtime error `errs[a]`.
    Err,
    /// `1 → _` pop struct base: "member access on non-struct" when not a
    /// pointer, else raise `errs[a]` (unknown/ambiguous field).
    MemberUnknownErr,

    // ---- Tier-3.5 opcodes, emitted only by `crate::opt` (never by the
    // lowerer). Each replicates the exact executed-op counter effects of
    // the instruction sequence it replaces, so the differential backbone
    // (optimized == raw == resolved == legacy modulo memo/futures/opt
    // bookkeeping) holds on counters, not just output.
    /// `0 → 1` push `consts[a]` in place of a folded constant
    /// expression. `b` compensates the executed-op counters the folded
    /// instructions would have bumped: `int_ops += b & 0xFF`,
    /// `flops += (b >> 8) & 0xFF`; `b >> 16` dispatches were eliminated
    /// (bumps `insns_folded`).
    ConstFold,
    /// `0 → 0` `frame[b] = consts[a]` (fused `Const` + `StoreLocalPop`).
    ConstStore,
    /// `0 → 0` `frame[b >> 16] = frame[a & 0xFFFF] <op b & 0xFF>
    /// frame[a >> 16]` (fused `BinLL` + `StoreLocalPop`).
    BinLLStore,
    /// `0 → 0` `frame[b >> 16] = frame[a & 0xFFFF] <op b & 0xFF>
    /// consts[a >> 16]` (fused `BinLC` + `StoreLocalPop`).
    BinLCStore,
    /// `0 → 0` `frame[b] = frame[a & 0xFFFF][frame[a >> 16]]` — fused
    /// `LoadIdxLL` + `StoreLocalPop`, one counted load.
    LoadIdxLLStore,
    /// `0 → 1` push `frame[a & 0xFFFF][consts[a >> 16]]` — the
    /// local-base/const-index load shape (`x = a[3]`), one counted load.
    LoadIdxLC,
    /// `1 → 1|0` `frame[a & 0xFFFF][consts[a >> 16]] = top`, one counted
    /// store; `b` = 1 pops the value (statement position).
    StoreIdxLC,
    /// `0 → 0` fused compare-and-branch over two frame slots:
    /// `cmp = frame[a & 0xFFFF] <op> frame[a >> 16]`, jump when the
    /// truthiness of `cmp` equals the sense bit. `b` = `target << 6 |
    /// bump << 5 | sense << 4 | binop`; `bump` replicates a fused
    /// leading `BumpBranch`.
    BrCmpLL,
    /// `0 → 0` as `BrCmpLL` with `consts[a >> 16]` as the rhs.
    BrCmpLC,
    /// `0 → _` return `frame[a]` (fused `LoadLocal` + `Ret`).
    RetLocal,
    /// `0 → 0` `frame[b] = globals[a]` — hoisted loop-invariant global
    /// load (preheader of a single-entry loop), uncounted like
    /// `LoadGlobal`.
    LoadGStore,
    /// `0 → 0` affine loop entry check (once per loop): step tick, branch
    /// count, then `frame[a & 0xFFFF] <lt|le> ub`; jumps to the loop exit
    /// at `b >> 2` when false. `ub` is `frame[a >> 16]`, or
    /// `consts[a >> 16]` when `b & 2`; `b & 1` selects `<=` over `<`.
    /// Emitted by the lowerer only for polycc-generated (`#pragma
    /// affine`) canonical loops.
    AffineHead,
    /// `0 → 0` fused affine back-edge: increment `frame[a & 0xFFFF]`,
    /// step tick, branch count, re-check the bound; jumps back to the
    /// body at `b >> 2` while true (operands as `AffineHead`). One
    /// dispatch replaces the literal loop's per-iteration
    /// `IncDecLocal + Jump + Step + BrCmp` with identical counter
    /// effects in identical order.
    AffineNext,
}

/// Number of opcodes (dimension of the [`crate::opt::PairProfile`] pair
/// matrix).
pub(crate) const OP_COUNT: usize = Op::AffineNext as usize + 1;

impl Op {
    /// Inverse of `op as u8` (valid for every `x < OP_COUNT`).
    pub(crate) fn from_u8(x: u8) -> Op {
        debug_assert!((x as usize) < OP_COUNT);
        // SAFETY: `Op` is `#[repr(u8)]` and fieldless with contiguous
        // discriminants `0..OP_COUNT`; `x` is range-checked above.
        unsafe { std::mem::transmute::<u8, Op>(x) }
    }
}

/// Mode bits for the `IncDec*` opcodes.
pub(crate) fn incdec_flags(op: UnOp) -> u32 {
    let inc = matches!(op, UnOp::PreInc | UnOp::PostInc) as u32;
    let pre = matches!(op, UnOp::PreInc | UnOp::PreDec) as u32;
    inc | (pre << 1)
}

/// Binary operators in encode order (`And`/`Or` compile to jumps and
/// never appear in a `Binary` instruction).
const BINOPS: [BinOp; 16] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
    BinOp::Shl,
    BinOp::Shr,
    BinOp::Lt,
    BinOp::Gt,
    BinOp::Le,
    BinOp::Ge,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::BitAnd,
    BinOp::BitXor,
    BinOp::BitOr,
];

pub(crate) fn binop_encode(op: BinOp) -> u32 {
    BINOPS
        .iter()
        .position(|&b| b == op)
        .expect("And/Or lower to jumps") as u32
}

#[inline]
pub(crate) fn binop_decode(code: u32) -> BinOp {
    BINOPS[code as usize]
}

/// One `#pragma omp parallel for` region, pre-flattened. The parent
/// evaluates `lb`/`ub` inline before the `OmpRegion` instruction; workers
/// execute `[body_start, end)` once per iteration with the iteration
/// index in `iter_slot`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BRegion {
    pub(crate) schedule: OmpSchedule,
    pub(crate) iter_slot: u32,
    pub(crate) ub_inclusive: bool,
    pub(crate) body_start: u32,
    /// Index of the region's `RegionEnd` instruction.
    pub(crate) end: u32,
    /// Static race verdict (Unknown when no analysis ran).
    pub(crate) verdict: crate::interp::RaceVerdict,
    pub(crate) span: Span,
}

/// One pure-call spawn site, pre-flattened (operand table of
/// [`Op::SpawnPure`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct BSpawn {
    pub(crate) fid: u32,
    /// Target frame slot of the assignment.
    pub(crate) slot: u32,
    pub(crate) nargs: u32,
    /// Result coercion of the original declaration/assignment.
    pub(crate) coerce: Coerce,
}

/// One function flattened to bytecode.
#[derive(Clone)]
pub(crate) struct BFunc {
    pub(crate) name: String,
    pub(crate) params: Vec<(u32, Coerce)>,
    pub(crate) frame_size: usize,
    pub(crate) code: Vec<Insn>,
    /// Source span per instruction (errors and step-limit only).
    pub(crate) spans: Vec<Span>,
    pub(crate) consts: Vec<Scalar>,
    pub(crate) strings: Vec<Arc<str>>,
    pub(crate) regions: Vec<BRegion>,
    pub(crate) spawns: Vec<BSpawn>,
    pub(crate) errs: Vec<String>,
    pub(crate) cacheable: bool,
}

/// A translation unit flattened for the VM (the third execution tier).
#[derive(Clone)]
pub struct BytecodeProgram {
    pub(crate) funcs: Vec<BFunc>,
    pub(crate) by_name: HashMap<String, u32>,
    /// Global initialisers as straight-line code (empty frame).
    pub(crate) global_code: BFunc,
    pub(crate) nglobals: usize,
    pub(crate) interner: Interner,
    pub(crate) any_cacheable: bool,
    /// Number of monomorphic inline-cache slots the optimizer assigned
    /// to `CallUser` sites (0 on unoptimized programs).
    pub(crate) ic_slots: usize,
}

impl BytecodeProgram {
    /// Flatten a resolved program. Purity verdicts arrive here as the
    /// resolver's `cacheable` flags — the pipeline's verified-pure set
    /// feeds bytecode lowering through [`crate::resolve::lower_unit`].
    pub fn compile(prog: &ResolvedProgram) -> BytecodeProgram {
        let funcs = prog
            .funcs
            .iter()
            .map(|f| {
                let mut c = FnCompiler::new(prog);
                for s in &f.body {
                    c.stmt(s);
                }
                // Falling off the end returns 0, like `Flow::Normal`.
                let zero = c.const_idx(Scalar::I(0));
                c.emit(Op::Const, zero, 0, f.span);
                c.emit(Op::Ret, 0, 0, f.span);
                c.finish(
                    prog.interner.resolve(f.name).to_string(),
                    f.params.clone(),
                    f.frame_size,
                    f.cacheable,
                )
            })
            .collect();
        let mut g = FnCompiler::new(prog);
        for d in &prog.global_decls {
            g.decl(d);
        }
        let zero = g.const_idx(Scalar::I(0));
        g.emit(Op::Const, zero, 0, Span::DUMMY);
        g.emit(Op::Ret, 0, 0, Span::DUMMY);
        let global_code = g.finish("<globals>".to_string(), Vec::new(), 0, false);
        BytecodeProgram {
            funcs,
            by_name: prog.by_name.clone(),
            global_code,
            nglobals: prog.nglobals,
            interner: prog.interner.clone(),
            any_cacheable: prog.any_cacheable,
            ic_slots: 0,
        }
    }

    /// Total flattened instruction count (diagnostics / tests).
    pub fn insn_count(&self) -> usize {
        self.funcs.iter().map(|f| f.code.len()).sum::<usize>() + self.global_code.code.len()
    }

    /// Function names with their flattened instruction counts
    /// (diagnostics: bench reporting, tests).
    pub fn functions(&self) -> impl Iterator<Item = (&str, usize)> {
        self.funcs.iter().map(|f| (f.name.as_str(), f.code.len()))
    }

    /// Human-readable disassembly (the `purec --dump-bytecode` view).
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        fn dump_func(out: &mut String, f: &BFunc) {
            let _ = writeln!(
                out,
                "fn {} (frame {}, {} insns{})",
                f.name,
                f.frame_size,
                f.code.len(),
                if f.cacheable { ", cacheable" } else { "" }
            );
            for (pc, insn) in f.code.iter().enumerate() {
                let note = match insn.op {
                    Op::Const | Op::ConstFold => {
                        format!("  ; push {:?}", f.consts[insn.a as usize])
                    }
                    Op::ConstStore => {
                        format!("  ; frame[{}] = {:?}", insn.b, f.consts[insn.a as usize])
                    }
                    Op::BinLC | Op::BinLCStore | Op::BrCmpLC => {
                        format!("  ; rhs {:?}", f.consts[(insn.a >> 16) as usize])
                    }
                    Op::Binary => format!("  ; {:?}", binop_decode(insn.a)),
                    Op::BinLL | Op::BinLLStore => format!("  ; {:?}", binop_decode(insn.b & 0xFF)),
                    Op::BrCmpLL => format!("  ; {:?}", binop_decode(insn.b & 0xF)),
                    Op::AffineHead | Op::AffineNext if insn.b & 2 != 0 => {
                        format!("  ; ub {:?}", f.consts[(insn.a >> 16) as usize])
                    }
                    _ => String::new(),
                };
                let _ = writeln!(
                    out,
                    "  {pc:>4}: {:<16} {:>6} {:>10}{note}",
                    format!("{:?}", insn.op),
                    insn.a,
                    insn.b
                );
            }
        }
        let mut out = String::new();
        dump_func(&mut out, &self.global_code);
        for f in &self.funcs {
            dump_func(&mut out, f);
        }
        let _ = writeln!(
            out,
            "total {} insns, {} ic slots",
            self.insn_count(),
            self.ic_slots
        );
        out
    }
}

struct LoopFrame {
    breaks: Vec<usize>,
    continues: Vec<usize>,
}

struct FnCompiler<'a> {
    prog: &'a ResolvedProgram,
    code: Vec<Insn>,
    spans: Vec<Span>,
    consts: Vec<Scalar>,
    const_map: HashMap<(u8, u64), u32>,
    strings: Vec<Arc<str>>,
    regions: Vec<BRegion>,
    spawns: Vec<BSpawn>,
    errs: Vec<String>,
    err_map: HashMap<String, u32>,
    loops: Vec<LoopFrame>,
    /// Patch lists of jumps that exit the innermost active parallel
    /// region body (break/continue with no enclosing loop in the body).
    region_exits: Vec<Vec<usize>>,
    /// One-shot: suppress the next statement's leading [`Op::Step`].
    /// Set when lowering a single-statement affine loop body — the
    /// back-edge [`Op::AffineNext`] already ticks once per iteration,
    /// so the body's own tick would be a redundant second dispatch.
    elide_step: bool,
}

impl<'a> FnCompiler<'a> {
    fn new(prog: &'a ResolvedProgram) -> Self {
        FnCompiler {
            prog,
            code: Vec::new(),
            spans: Vec::new(),
            consts: Vec::new(),
            const_map: HashMap::new(),
            strings: Vec::new(),
            regions: Vec::new(),
            spawns: Vec::new(),
            errs: Vec::new(),
            err_map: HashMap::new(),
            loops: Vec::new(),
            region_exits: Vec::new(),
            elide_step: false,
        }
    }

    fn finish(
        self,
        name: String,
        params: Vec<(u32, Coerce)>,
        frame_size: usize,
        cacheable: bool,
    ) -> BFunc {
        debug_assert!(self.loops.is_empty() && self.region_exits.is_empty());
        BFunc {
            name,
            params,
            frame_size,
            code: self.code,
            spans: self.spans,
            consts: self.consts,
            strings: self.strings,
            regions: self.regions,
            spawns: self.spawns,
            errs: self.errs,
            cacheable,
        }
    }

    fn emit(&mut self, op: Op, a: u32, b: u32, span: Span) -> usize {
        self.code.push(Insn { op, a, b });
        self.spans.push(span);
        self.code.len() - 1
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    fn patch(&mut self, at: usize, target: u32) {
        self.code[at].a = target;
    }

    fn const_idx(&mut self, v: Scalar) -> u32 {
        let key = match v {
            Scalar::I(i) => (0u8, i as u64),
            Scalar::F(f) => (1u8, f.to_bits()),
            _ => unreachable!("only numeric literals enter the const pool"),
        };
        if let Some(&idx) = self.const_map.get(&key) {
            return idx;
        }
        let idx = self.consts.len() as u32;
        self.consts.push(v);
        self.const_map.insert(key, idx);
        idx
    }

    fn err_idx(&mut self, msg: impl Into<String>) -> u32 {
        let msg = msg.into();
        if let Some(&idx) = self.err_map.get(&msg) {
            return idx;
        }
        let idx = self.errs.len() as u32;
        self.errs.push(msg.clone());
        self.err_map.insert(msg, idx);
        idx
    }

    fn string_idx(&mut self, s: &Arc<str>) -> u32 {
        // Few strings per function: linear scan beats a map here.
        if let Some(i) = self.strings.iter().position(|x| Arc::ptr_eq(x, s)) {
            return i as u32;
        }
        let idx = self.strings.len() as u32;
        self.strings.push(Arc::clone(s));
        idx
    }

    /// Structural eligibility of a polycc-generated loop for the fused
    /// [`Op::AffineHead`]/[`Op::AffineNext`] pair: `i < ub` / `i <= ub`
    /// over a local iterator with a unit `++i`/`i++` step, `ub` a local
    /// or int literal, all operands fitting the 16-bit packing. Returns
    /// `(iter_slot, ub_index, ub_is_const, inclusive)`; ineligible loops
    /// fall back to the literal lowering.
    fn affine_header(
        &mut self,
        cond: &Option<RExpr>,
        step: &Option<RExpr>,
    ) -> Option<(u32, u32, bool, bool)> {
        let (Some(c), Some(st)) = (cond, step) else {
            return None;
        };
        let RExprKind::Binary(op, l, r) = &c.kind else {
            return None;
        };
        let le = match op {
            BinOp::Lt => false,
            BinOp::Le => true,
            _ => return None,
        };
        let RExprKind::Local(iter) = l.kind else {
            return None;
        };
        let RExprKind::IncDec(inc_op, place) = &st.kind else {
            return None;
        };
        if !matches!(inc_op, UnOp::PreInc | UnOp::PostInc) {
            return None;
        }
        let RPlaceKind::Local(slot) = place.kind else {
            return None;
        };
        if slot != iter {
            return None;
        }
        let (ub, is_const) = match r.kind {
            RExprKind::Local(u) => (u, false),
            RExprKind::Int(k) => (self.const_idx(Scalar::I(k)), true),
            _ => return None,
        };
        (iter < 0x10000 && ub < 0x10000).then_some((iter, ub, is_const, le))
    }

    /// Emit a canonical affine loop as `AffineHead … body … AffineNext`:
    /// the head checks the bound once on entry, the single back-edge
    /// instruction owns increment + step tick + branch + re-check.
    fn affine_for(
        &mut self,
        iter: u32,
        ub: u32,
        is_const: bool,
        le: bool,
        body: &RStmt,
        span: Span,
    ) {
        let flags = ((is_const as u32) << 1) | le as u32;
        let head = self.emit(Op::AffineHead, iter | (ub << 16), flags, span);
        let body_start = self.here();
        self.loops.push(LoopFrame {
            breaks: Vec::new(),
            continues: Vec::new(),
        });
        // A single-statement body keeps exactly one tick per iteration
        // (the back-edge's); block bodies keep their per-statement ticks
        // so the memory-ceiling cadence matches the literal lowering.
        if !matches!(body.kind, RStmtKind::Block(_)) {
            self.elide_step = true;
        }
        self.stmt(body);
        let cont = self.here();
        self.emit(
            Op::AffineNext,
            iter | (ub << 16),
            (body_start << 2) | flags,
            span,
        );
        let end = self.here();
        let frame = self.loops.pop().expect("loop frame");
        for at in frame.breaks {
            self.patch(at, end);
        }
        for at in frame.continues {
            self.patch(at, cont);
        }
        // The exit target lives in the upper bits of `b` (not `a`, which
        // packs the operands) — patched by hand once the end is known.
        self.code[head].b |= end << 2;
    }

    fn emit_err(&mut self, msg: impl Into<String>, span: Span) {
        let idx = self.err_idx(msg);
        self.emit(Op::Err, idx, 0, span);
    }

    fn unknown_var_msg(&self, sym: cfront::intern::Symbol) -> String {
        format!("unknown variable '{}'", self.prog.interner.resolve(sym))
    }

    // -- statements -----------------------------------------------------------

    fn stmt(&mut self, s: &RStmt) {
        let elide_step = std::mem::take(&mut self.elide_step);
        // Parallel regions bypass statement step accounting, exactly like
        // the resolved engine's `exec` short-circuit.
        if let RStmtKind::OmpFor(of) = &s.kind {
            self.omp_for(of);
            return;
        }
        // Await join points are synthetic: no step tick (mirrors the
        // resolved engine skipping `step()` for them).
        if let RStmtKind::AwaitSlots(slots) = &s.kind {
            for &slot in slots {
                self.emit(Op::AwaitSlot, slot, 0, s.span);
            }
            return;
        }
        if !elide_step {
            self.emit(Op::Step, 0, 0, s.span);
        }
        match &s.kind {
            RStmtKind::Decl(decls) => {
                for d in decls {
                    self.decl(d);
                }
            }
            RStmtKind::Expr(Some(e)) => self.stmt_expr(e),
            RStmtKind::Expr(None) | RStmtKind::Nop => {}
            RStmtKind::Block(stmts) => {
                for st in stmts {
                    self.stmt(st);
                }
            }
            RStmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.emit(Op::BumpBranch, 0, 0, s.span);
                self.expr(cond);
                let jf = self.emit(Op::JumpIfFalse, 0, 0, cond.span);
                self.stmt(then_branch);
                match else_branch {
                    Some(e) => {
                        let jend = self.emit(Op::Jump, 0, 0, s.span);
                        let here = self.here();
                        self.patch(jf, here);
                        self.stmt(e);
                        let here = self.here();
                        self.patch(jend, here);
                    }
                    None => {
                        let here = self.here();
                        self.patch(jf, here);
                    }
                }
            }
            RStmtKind::While { cond, body } => {
                let top = self.here();
                self.emit(Op::BumpBranch, 0, 0, s.span);
                self.expr(cond);
                let jf = self.emit(Op::JumpIfFalse, 0, 0, cond.span);
                self.loops.push(LoopFrame {
                    breaks: Vec::new(),
                    continues: Vec::new(),
                });
                self.stmt(body);
                self.emit(Op::Jump, top, 0, s.span);
                let end = self.here();
                let frame = self.loops.pop().expect("loop frame");
                for at in frame.breaks {
                    self.patch(at, end);
                }
                for at in frame.continues {
                    self.patch(at, top);
                }
                self.patch(jf, end);
            }
            RStmtKind::DoWhile { body, cond } => {
                let top = self.here();
                self.loops.push(LoopFrame {
                    breaks: Vec::new(),
                    continues: Vec::new(),
                });
                self.stmt(body);
                let check = self.here();
                self.emit(Op::BumpBranch, 0, 0, s.span);
                self.expr(cond);
                self.emit(Op::JumpIfTrue, top, 0, cond.span);
                let end = self.here();
                let frame = self.loops.pop().expect("loop frame");
                for at in frame.breaks {
                    self.patch(at, end);
                }
                for at in frame.continues {
                    self.patch(at, check);
                }
            }
            RStmtKind::For {
                init,
                cond,
                step,
                body,
                affine,
            } => {
                if let Some(i) = init {
                    match &i.kind {
                        RStmtKind::Decl(decls) => {
                            for d in decls {
                                self.decl(d);
                            }
                        }
                        RStmtKind::Expr(Some(e)) => self.stmt_expr(e),
                        _ => {}
                    }
                }
                if *affine {
                    if let Some((iter, ub, is_const, le)) = self.affine_header(cond, step) {
                        self.affine_for(iter, ub, is_const, le, body, s.span);
                        return;
                    }
                }
                let top = self.here();
                // Per-iteration step + branch tick (even with no cond),
                // mirroring the resolved engine's `For` loop body.
                self.emit(Op::Step, 0, 0, s.span);
                self.emit(Op::BumpBranch, 0, 0, s.span);
                let jf = cond.as_ref().map(|c| {
                    self.expr(c);
                    self.emit(Op::JumpIfFalse, 0, 0, c.span)
                });
                self.loops.push(LoopFrame {
                    breaks: Vec::new(),
                    continues: Vec::new(),
                });
                self.stmt(body);
                let cont = self.here();
                if let Some(st) = step {
                    self.stmt_expr(st);
                }
                self.emit(Op::Jump, top, 0, s.span);
                let end = self.here();
                let frame = self.loops.pop().expect("loop frame");
                for at in frame.breaks {
                    self.patch(at, end);
                }
                for at in frame.continues {
                    self.patch(at, cont);
                }
                if let Some(jf) = jf {
                    self.patch(jf, end);
                }
            }
            RStmtKind::Return(e) => {
                match e {
                    Some(e) => self.expr(e),
                    None => {
                        let zero = self.const_idx(Scalar::I(0));
                        self.emit(Op::Const, zero, 0, s.span);
                    }
                }
                self.emit(Op::Ret, 0, 0, s.span);
            }
            RStmtKind::Break | RStmtKind::Continue => {
                let is_break = matches!(s.kind, RStmtKind::Break);
                if let Some(frame) = self.loops.last_mut() {
                    let at = self.code.len();
                    self.code.push(Insn {
                        op: Op::Jump,
                        a: 0,
                        b: 0,
                    });
                    self.spans.push(s.span);
                    if is_break {
                        frame.breaks.push(at);
                    } else {
                        frame.continues.push(at);
                    }
                } else if let Some(exits) = self.region_exits.last_mut() {
                    // Escaping a parallel iteration: the resolved engine
                    // ignores the child's Break/Continue flow — the
                    // iteration simply ends.
                    let at = self.code.len();
                    self.code.push(Insn {
                        op: Op::Jump,
                        a: 0,
                        b: 0,
                    });
                    self.spans.push(s.span);
                    exits.push(at);
                } else {
                    self.emit_err("break/continue outside loop", s.span);
                }
            }
            RStmtKind::SpawnPure(sp) => self.spawn_pure(sp, s.span),
            RStmtKind::OmpFor(_) | RStmtKind::AwaitSlots(_) => {
                unreachable!("handled before Step")
            }
        }
    }

    /// Compile one spawn site: arguments are evaluated eagerly on the
    /// spawning thread (original program order), then `SpawnPure` pops
    /// them and dispatches.
    fn spawn_pure(&mut self, sp: &RSpawn, span: Span) {
        for a in &sp.args {
            self.expr(a);
        }
        let idx = self.spawns.len() as u32;
        self.spawns.push(BSpawn {
            fid: sp.fid,
            slot: sp.slot,
            nargs: sp.args.len() as u32,
            coerce: sp.coerce,
        });
        self.emit(Op::SpawnPure, idx, 0, span);
    }

    fn omp_for(&mut self, of: &ROmpFor) {
        let header = match &of.header {
            Ok(h) => h,
            Err(msg) => {
                self.emit_err(msg.clone(), of.span);
                return;
            }
        };
        self.expr(&header.lb);
        self.expr(&header.ub);
        // Reserve this region's descriptor slot *before* compiling the
        // body: a nested parallel region inside the body pushes its own
        // descriptor, and the outer OmpRegion operand must not alias it.
        let region_idx = self.regions.len() as u32;
        self.regions.push(BRegion {
            schedule: of.schedule,
            iter_slot: header.iter_slot,
            ub_inclusive: header.ub_inclusive,
            body_start: 0,
            end: 0,
            verdict: of.verdict,
            span: of.span,
        });
        let omp_at = self.emit(Op::OmpRegion, region_idx, 0, of.span);
        // The body compiles with a *fresh* loop context: a break inside
        // the region cannot target a loop outside it.
        let saved_loops = std::mem::take(&mut self.loops);
        self.region_exits.push(Vec::new());
        let body_start = self.here();
        self.stmt(&header.body);
        let end = self.emit(Op::RegionEnd, 0, 0, of.span) as u32;
        let exits = self.region_exits.pop().expect("region frame");
        for at in exits {
            self.patch(at, end);
        }
        self.loops = saved_loops;
        debug_assert_eq!(omp_at + 1, body_start as usize);
        let r = &mut self.regions[region_idx as usize];
        r.body_start = body_start;
        r.end = end;
    }

    /// Compile an expression whose value is discarded (expression
    /// statements, `for` init/step, comma left sides): assignments and
    /// `++`/`--` emit their store-only forms instead of push-then-pop.
    fn stmt_expr(&mut self, e: &RExpr) {
        match &e.kind {
            RExprKind::Assign { op, place, value } => {
                let fused = Self::fused_index(place);
                match (&place.kind, op) {
                    (RPlaceKind::Local(slot), None) => {
                        self.expr(value);
                        self.emit(Op::StoreLocalPop, *slot, 0, e.span);
                    }
                    (RPlaceKind::Global(idx), None) => {
                        self.expr(value);
                        self.emit(Op::StoreGlobalPop, *idx, 0, e.span);
                    }
                    (RPlaceKind::Local(slot), Some(b)) => {
                        self.expr(value);
                        self.emit(Op::CompoundLocal, *slot, binop_encode(*b) | 0x100, e.span);
                    }
                    (RPlaceKind::Global(idx), Some(b)) => {
                        self.expr(value);
                        self.emit(Op::CompoundGlobal, *idx, binop_encode(*b) | 0x100, e.span);
                    }
                    (RPlaceKind::Index(..), None) if fused.is_some() => {
                        self.expr(value);
                        self.emit(Op::StoreIdxLL, fused.expect("guard checked"), 1, e.span);
                    }
                    (RPlaceKind::Index(..), Some(b)) if fused.is_some() => {
                        self.expr(value);
                        self.emit(
                            Op::CompoundIdxLL,
                            fused.expect("guard checked"),
                            binop_encode(*b) | 0x100,
                            e.span,
                        );
                    }
                    (
                        RPlaceKind::Index(..) | RPlaceKind::Deref(_) | RPlaceKind::Member { .. },
                        _,
                    ) => {
                        self.expr(value);
                        self.place_ptr(place);
                        match op {
                            None => self.emit(Op::StoreMem, 0, 1, e.span),
                            Some(b) => self.emit(Op::CompoundMem, binop_encode(*b), 1, e.span),
                        };
                    }
                    _ => {
                        self.expr(e);
                        self.emit(Op::Pop, 0, 0, e.span);
                    }
                }
            }
            RExprKind::IncDec(op, place) => {
                let flags = incdec_flags(*op) | 4;
                match &place.kind {
                    RPlaceKind::Local(slot) => {
                        self.emit(Op::IncDecLocal, *slot, flags, e.span);
                    }
                    RPlaceKind::Global(idx) => {
                        self.emit(Op::IncDecGlobal, *idx, flags, e.span);
                    }
                    RPlaceKind::Index(..) | RPlaceKind::Deref(_) | RPlaceKind::Member { .. } => {
                        self.place_ptr(place);
                        self.emit(Op::IncDecMem, 0, flags, e.span);
                    }
                    _ => {
                        self.expr(e);
                        self.emit(Op::Pop, 0, 0, e.span);
                    }
                }
            }
            RExprKind::Comma(l, r) => {
                self.stmt_expr(l);
                self.stmt_expr(r);
            }
            _ => {
                self.expr(e);
                self.emit(Op::Pop, 0, 0, e.span);
            }
        }
    }

    // -- declarations ---------------------------------------------------------

    fn decl(&mut self, d: &RDecl) {
        let span = Span::DUMMY;
        match &d.kind {
            RDeclKind::Array { dims, init } => {
                for dim in dims {
                    self.expr(dim);
                }
                self.emit(Op::AllocArray, dims.len() as u32, 0, span);
                if let Some(init) = init {
                    if matches!(init.kind, RExprKind::InitList(_)) {
                        self.emit(Op::Dup, 0, 0, init.span);
                        self.fill_initlist(init);
                    }
                }
            }
            RDeclKind::Struct { size } => {
                self.emit(Op::AllocStruct, *size as u32, 0, span);
            }
            RDeclKind::Scalar { init, coerce } => match init {
                Some(e) => {
                    self.expr(e);
                    self.emit_coerce(*coerce, e.span);
                }
                None => {
                    self.emit(Op::PushUninit, 0, 0, span);
                }
            },
        }
        match d.target {
            SlotRef::Local(slot) => self.emit(Op::StoreLocalPop, slot, 0, span),
            SlotRef::Global(idx) => self.emit(Op::StoreGlobalPop, idx, 0, span),
        };
    }

    /// Fill an array from an initializer list. Expects the array pointer
    /// on the stack top and consumes it.
    fn fill_initlist(&mut self, init: &RExpr) {
        let RExprKind::InitList(elems) = &init.kind else {
            unreachable!("caller checked");
        };
        for (i, e) in elems.iter().enumerate() {
            self.emit(Op::Dup, 0, 0, e.span);
            if matches!(e.kind, RExprKind::InitList(_)) {
                // Descend into the row pointer (counted load, like the
                // resolved engine's fill); a non-pointer row skips the
                // nested list entirely, exactly like the resolved `if let`.
                self.emit(Op::LoadIdxConst, i as u32, 0, e.span);
                let guard = self.emit(Op::SkipUnlessPtr, 0, 0, e.span);
                self.fill_initlist(e);
                let here = self.here();
                self.patch(guard, here);
            } else {
                self.expr(e);
                self.emit(Op::StoreIdxConst, i as u32, 0, e.span);
            }
        }
        self.emit(Op::Pop, 0, 0, init.span);
    }

    /// `a[i]` with both the array and the index in frame slots — the
    /// fused load-index/store-index operand encoding, or `None` when the
    /// shape (or slot width) does not fit.
    fn fused_index(place: &RPlace) -> Option<u32> {
        let RPlaceKind::Index(base, idx) = &place.kind else {
            return None;
        };
        let (RExprKind::Local(b), RExprKind::Local(i)) = (&base.kind, &idx.kind) else {
            return None;
        };
        (*b < 0x1_0000 && *i < 0x1_0000).then_some(b | (i << 16))
    }

    fn emit_coerce(&mut self, c: Coerce, span: Span) {
        match c {
            Coerce::None => {}
            Coerce::ToFloat => {
                self.emit(Op::Coerce, 0, 0, span);
            }
            Coerce::ToInt => {
                self.emit(Op::Coerce, 1, 0, span);
            }
        }
    }

    // -- expressions ----------------------------------------------------------

    fn expr(&mut self, e: &RExpr) {
        match &e.kind {
            RExprKind::Int(v) => {
                let idx = self.const_idx(Scalar::I(*v));
                self.emit(Op::Const, idx, 0, e.span);
            }
            RExprKind::Float(v) => {
                let idx = self.const_idx(Scalar::F(*v));
                self.emit(Op::Const, idx, 0, e.span);
            }
            RExprKind::Str(s) => {
                let idx = self.string_idx(s);
                self.emit(Op::StrNew, idx, 0, e.span);
            }
            RExprKind::Local(slot) => {
                self.emit(Op::LoadLocal, *slot, 0, e.span);
            }
            RExprKind::Global(idx) => {
                self.emit(Op::LoadGlobal, *idx, 0, e.span);
            }
            RExprKind::Unknown(sym) => {
                let msg = self.unknown_var_msg(*sym);
                self.emit_err(msg, e.span);
            }
            RExprKind::Unary(op, inner) => {
                self.expr(inner);
                let insn = match op {
                    UnOp::Neg => Op::UnaryNeg,
                    UnOp::Not => Op::UnaryNot,
                    UnOp::BitNot => Op::UnaryBitNot,
                    UnOp::Deref => Op::DerefLoad,
                    _ => unreachable!("lowered to IncDec/AddrOf"),
                };
                self.emit(insn, 0, 0, e.span);
            }
            RExprKind::Binary(op, l, r) => match op {
                BinOp::And => {
                    self.emit(Op::BumpBranch, 0, 0, e.span);
                    self.expr(l);
                    let jf = self.emit(Op::JumpIfFalse, 0, 0, e.span);
                    self.expr(r);
                    self.emit(Op::Truthy, 0, 0, e.span);
                    let jend = self.emit(Op::Jump, 0, 0, e.span);
                    let here = self.here();
                    self.patch(jf, here);
                    let zero = self.const_idx(Scalar::I(0));
                    self.emit(Op::Const, zero, 0, e.span);
                    let here = self.here();
                    self.patch(jend, here);
                }
                BinOp::Or => {
                    self.emit(Op::BumpBranch, 0, 0, e.span);
                    self.expr(l);
                    let jt = self.emit(Op::JumpIfTrue, 0, 0, e.span);
                    self.expr(r);
                    self.emit(Op::Truthy, 0, 0, e.span);
                    let jend = self.emit(Op::Jump, 0, 0, e.span);
                    let here = self.here();
                    self.patch(jt, here);
                    let one = self.const_idx(Scalar::I(1));
                    self.emit(Op::Const, one, 0, e.span);
                    let here = self.here();
                    self.patch(jend, here);
                }
                _ => {
                    // Superinstruction fusion for the dispatch-dominant
                    // shapes: local⊕local and local⊕literal skip the
                    // operand stack entirely.
                    match (&l.kind, &r.kind) {
                        (RExprKind::Local(x), RExprKind::Local(y))
                            if *x < 0x1_0000 && *y < 0x1_0000 =>
                        {
                            self.emit(Op::BinLL, x | (y << 16), binop_encode(*op), e.span);
                        }
                        (RExprKind::Local(x), RExprKind::Int(v)) if *x < 0x1_0000 => {
                            let c = self.const_idx(Scalar::I(*v));
                            if c < 0x1_0000 {
                                self.emit(Op::BinLC, x | (c << 16), binop_encode(*op), e.span);
                            } else {
                                self.expr(l);
                                self.expr(r);
                                self.emit(Op::Binary, binop_encode(*op), 0, e.span);
                            }
                        }
                        (RExprKind::Local(x), RExprKind::Float(v)) if *x < 0x1_0000 => {
                            let c = self.const_idx(Scalar::F(*v));
                            if c < 0x1_0000 {
                                self.emit(Op::BinLC, x | (c << 16), binop_encode(*op), e.span);
                            } else {
                                self.expr(l);
                                self.expr(r);
                                self.emit(Op::Binary, binop_encode(*op), 0, e.span);
                            }
                        }
                        _ => {
                            self.expr(l);
                            self.expr(r);
                            self.emit(Op::Binary, binop_encode(*op), 0, e.span);
                        }
                    }
                }
            },
            RExprKind::Assign { op, place, value } => {
                // Value evaluates before the place (resolved order).
                self.expr(value);
                let fused = Self::fused_index(place);
                match (&place.kind, op) {
                    (RPlaceKind::Local(slot), None) => {
                        self.emit(Op::StoreLocal, *slot, 0, e.span);
                    }
                    (RPlaceKind::Local(slot), Some(b)) => {
                        self.emit(Op::CompoundLocal, *slot, binop_encode(*b), e.span);
                    }
                    (RPlaceKind::Global(idx), None) => {
                        self.emit(Op::StoreGlobal, *idx, 0, e.span);
                    }
                    (RPlaceKind::Global(idx), Some(b)) => {
                        self.emit(Op::CompoundGlobal, *idx, binop_encode(*b), e.span);
                    }
                    (RPlaceKind::Index(..), None) if fused.is_some() => {
                        self.emit(Op::StoreIdxLL, fused.expect("guard checked"), 0, e.span);
                    }
                    (RPlaceKind::Index(..), Some(b)) if fused.is_some() => {
                        self.emit(
                            Op::CompoundIdxLL,
                            fused.expect("guard checked"),
                            binop_encode(*b),
                            e.span,
                        );
                    }
                    (
                        RPlaceKind::Index(..) | RPlaceKind::Deref(_) | RPlaceKind::Member { .. },
                        _,
                    ) => {
                        self.place_ptr(place);
                        match op {
                            None => self.emit(Op::StoreMem, 0, 0, e.span),
                            Some(b) => self.emit(Op::CompoundMem, binop_encode(*b), 0, e.span),
                        };
                    }
                    (RPlaceKind::Unknown(sym), _) => {
                        let msg = self.unknown_var_msg(*sym);
                        self.emit_err(msg, place.span);
                    }
                    (RPlaceKind::MemberUnknown { base, name }, _) => {
                        self.member_unknown(base, *name, place.span);
                    }
                    (RPlaceKind::NotLvalue, _) => {
                        self.emit_err("expression is not an lvalue", place.span);
                    }
                }
            }
            RExprKind::IncDec(op, place) => {
                let flags = incdec_flags(*op);
                match &place.kind {
                    RPlaceKind::Local(slot) => {
                        self.emit(Op::IncDecLocal, *slot, flags, e.span);
                    }
                    RPlaceKind::Global(idx) => {
                        self.emit(Op::IncDecGlobal, *idx, flags, e.span);
                    }
                    RPlaceKind::Index(..) | RPlaceKind::Deref(_) | RPlaceKind::Member { .. } => {
                        self.place_ptr(place);
                        self.emit(Op::IncDecMem, 0, flags, e.span);
                    }
                    RPlaceKind::Unknown(sym) => {
                        let msg = self.unknown_var_msg(*sym);
                        self.emit_err(msg, place.span);
                    }
                    RPlaceKind::MemberUnknown { base, name } => {
                        self.member_unknown(base, *name, place.span);
                    }
                    RPlaceKind::NotLvalue => {
                        self.emit_err("expression is not an lvalue", place.span);
                    }
                }
            }
            RExprKind::AddrOf(place) => match &place.kind {
                // The element pointer *is* the address value.
                RPlaceKind::Index(..) | RPlaceKind::Deref(_) | RPlaceKind::Member { .. } => {
                    self.place_ptr(place);
                }
                RPlaceKind::Local(_) | RPlaceKind::Global(_) => {
                    self.emit_err("address-of is only supported for memory lvalues", e.span);
                }
                RPlaceKind::Unknown(sym) => {
                    let msg = self.unknown_var_msg(*sym);
                    self.emit_err(msg, place.span);
                }
                RPlaceKind::MemberUnknown { base, name } => {
                    self.member_unknown(base, *name, place.span);
                }
                RPlaceKind::NotLvalue => {
                    self.emit_err("expression is not an lvalue", place.span);
                }
            },
            RExprKind::Ternary(c, t, f) => {
                self.emit(Op::BumpBranch, 0, 0, e.span);
                self.expr(c);
                let jf = self.emit(Op::JumpIfFalse, 0, 0, c.span);
                self.expr(t);
                let jend = self.emit(Op::Jump, 0, 0, e.span);
                let here = self.here();
                self.patch(jf, here);
                self.expr(f);
                let here = self.here();
                self.patch(jend, here);
            }
            RExprKind::CallUser { fid, args } => {
                for a in args {
                    self.expr(a);
                }
                self.emit(Op::CallUser, *fid, args.len() as u32, e.span);
            }
            RExprKind::CallBuiltin { name, args } => {
                for a in args {
                    self.expr(a);
                }
                self.emit(Op::CallBuiltin, name.0, args.len() as u32, e.span);
            }
            RExprKind::Printf {
                fmt,
                fmt_expr,
                args,
            } => {
                let fmt_slot = match (fmt, fmt_expr) {
                    (Some(s), _) => self.string_idx(s),
                    (None, Some(first)) => {
                        // Runtime format: pointer evaluated before args.
                        self.expr(first);
                        u32::MAX
                    }
                    (None, None) => {
                        self.emit_err("printf without format", e.span);
                        return;
                    }
                };
                for a in args {
                    self.expr(a);
                }
                self.emit(Op::Printf, fmt_slot, args.len() as u32, e.span);
            }
            RExprKind::IndirectCall => {
                self.emit_err("indirect calls are unsupported", e.span);
            }
            RExprKind::Load(place) => {
                let fused = Self::fused_index(place);
                match &place.kind {
                    RPlaceKind::Local(slot) => {
                        self.emit(Op::LoadLocal, *slot, 0, e.span);
                    }
                    RPlaceKind::Global(idx) => {
                        self.emit(Op::LoadGlobal, *idx, 0, e.span);
                    }
                    RPlaceKind::Index(..) if fused.is_some() => {
                        self.emit(Op::LoadIdxLL, fused.expect("guard checked"), 0, e.span);
                    }
                    RPlaceKind::Index(..) | RPlaceKind::Deref(_) | RPlaceKind::Member { .. } => {
                        self.place_ptr(place);
                        self.emit(Op::LoadMem, 0, 0, e.span);
                    }
                    RPlaceKind::Unknown(sym) => {
                        let msg = self.unknown_var_msg(*sym);
                        self.emit_err(msg, place.span);
                    }
                    RPlaceKind::MemberUnknown { base, name } => {
                        self.member_unknown(base, *name, place.span);
                    }
                    RPlaceKind::NotLvalue => {
                        self.emit_err("expression is not an lvalue", place.span);
                    }
                }
            }
            RExprKind::Cast(c, inner) => {
                self.expr(inner);
                self.emit_coerce(*c, e.span);
            }
            RExprKind::InitList(_) => {
                // A bare initializer list is not evaluable (mirrors the
                // tree-walker's unknown-call diagnostic).
                self.emit_err("call to undefined function '__initlist'", e.span);
            }
            RExprKind::Comma(l, r) => {
                self.expr(l);
                self.emit(Op::Pop, 0, 0, e.span);
                self.expr(r);
            }
        }
    }

    /// Emit the address computation of a memory place, leaving the
    /// element pointer on the stack.
    fn place_ptr(&mut self, place: &RPlace) {
        match &place.kind {
            RPlaceKind::Index(base, idx) => {
                self.expr(base);
                self.expr(idx);
                self.emit(Op::PtrIndex, 0, 0, place.span);
            }
            RPlaceKind::Deref(inner) => {
                self.expr(inner);
                self.emit(Op::PtrDeref, 0, 0, place.span);
            }
            RPlaceKind::Member { base, offset } => {
                self.expr(base);
                self.emit(Op::PtrMember, *offset as u32, 0, place.span);
            }
            _ => unreachable!("caller matched a memory place"),
        }
    }

    /// Member access whose struct/field could not be resolved: evaluate
    /// the base (its side effects are observable), then raise.
    fn member_unknown(&mut self, base: &RExpr, name: cfront::intern::Symbol, span: Span) {
        self.expr(base);
        let msg = format!("unknown field '{}'", self.prog.interner.resolve(name));
        let idx = self.err_idx(msg);
        self.emit(Op::MemberUnknownErr, idx, 0, span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfront::parser::parse;
    use std::collections::HashSet;

    fn bytecode(src: &str) -> BytecodeProgram {
        let r = parse(src);
        assert!(!r.diags.has_errors(), "{}", r.diags.render_all(src));
        let resolved = crate::resolve::lower_unit(&r.unit, &HashSet::new(), &Default::default());
        BytecodeProgram::compile(&resolved)
    }

    #[test]
    fn flattens_functions_with_parallel_regions() {
        let b = bytecode(
            "int helper(int x) { return x * 2; }\n\
             int main() {\n\
                 int* a = (int*) malloc(8 * sizeof(int));\n\
             #pragma omp parallel for schedule(dynamic,2)\n\
                 for (int i = 0; i < 8; i++) a[i] = helper(i);\n\
                 return a[3];\n\
             }",
        );
        assert_eq!(b.funcs.len(), 2);
        let main = &b.funcs[b.by_name["main"] as usize];
        assert_eq!(main.regions.len(), 1);
        let r = &main.regions[0];
        assert!(matches!(r.schedule, OmpSchedule::Dynamic(2)));
        assert!(r.body_start < r.end);
        assert!(matches!(main.code[r.end as usize].op, Op::RegionEnd));
        assert!(matches!(
            main.code[r.body_start as usize - 1].op,
            Op::OmpRegion
        ));
        // Spans stay parallel to the code.
        for f in &b.funcs {
            assert_eq!(f.code.len(), f.spans.len());
        }
        assert!(b.insn_count() > 10);
    }

    #[test]
    fn jump_targets_are_in_bounds() {
        let b = bytecode(
            "int main() {\n\
                 int acc = 0;\n\
                 for (int i = 0; i < 10; i++) {\n\
                     if (i % 2 == 0) continue;\n\
                     if (i > 7) break;\n\
                     while (acc < 100) { acc += i; if (acc > 50) break; }\n\
                     do { acc--; } while (acc > 40 && i < 9);\n\
                 }\n\
                 return acc ? acc : 1;\n\
             }",
        );
        for f in &b.funcs {
            for (pc, insn) in f.code.iter().enumerate() {
                if matches!(insn.op, Op::Jump | Op::JumpIfFalse | Op::JumpIfTrue) {
                    assert!(
                        (insn.a as usize) < f.code.len(),
                        "{}@{pc}: jump to {} out of {}",
                        f.name,
                        insn.a,
                        f.code.len()
                    );
                }
            }
        }
    }

    /// Regression: the outer region's descriptor slot must be reserved
    /// before its body compiles — a nested region pushes its own
    /// descriptor first, and the outer `OmpRegion` operand must not
    /// alias it.
    #[test]
    fn nested_parallel_regions_keep_their_own_descriptors() {
        let src = "\
int main() {
    int* out = (int*) malloc(16 * sizeof(int));
#pragma omp parallel for
    for (int i = 0; i < 4; i++) {
        int* row = out + i * 4;
#pragma omp parallel for schedule(dynamic,1)
        for (int j = 0; j < 4; j++) row[j] = i * 10 + j;
    }
    int acc = 0;
    for (int k = 0; k < 16; k++) acc += out[k];
    return acc % 199;
}
";
        let b = bytecode(src);
        let main = &b.funcs[b.by_name["main"] as usize];
        assert_eq!(main.regions.len(), 2);
        let outer = &main.regions[0];
        let inner = &main.regions[1];
        // The inner region's code range nests strictly inside the outer's.
        assert!(outer.body_start < inner.body_start);
        assert!(inner.end < outer.end);
        assert!(matches!(inner.schedule, OmpSchedule::Dynamic(1)));
        assert!(matches!(outer.schedule, OmpSchedule::Static));

        // All three engines agree on the executed result.
        let r = cfront::parser::parse(src);
        let prog = crate::interp::Program::new(&r.unit);
        for threads in [1usize, 4] {
            let opts = crate::interp::InterpOptions {
                threads,
                ..Default::default()
            };
            let vm = prog.run(opts).expect("vm runs");
            let resolved = prog.run_resolved(opts).expect("resolved runs");
            let legacy = prog.run_legacy(opts).expect("legacy runs");
            assert_eq!(
                vm.exit_code,
                (0..16).map(|k| (k / 4) * 10 + k % 4).sum::<i64>() % 199
            );
            assert_eq!(vm.exit_code, resolved.exit_code, "threads={threads}");
            assert_eq!(vm.counters.without_memo(), resolved.counters.without_memo());
            assert_eq!(resolved.exit_code, legacy.exit_code);
        }
    }

    /// `a[i] += x` with base and index in frame slots fuses into one
    /// `CompoundIdxLL` (statement and value positions), and the engines
    /// agree on results and executed-op counters.
    #[test]
    fn compound_index_fuses_and_matches_oracles() {
        let src = "\
int main() {
    int* a = (int*) malloc(16 * sizeof(int));
    for (int i = 0; i < 16; i++) a[i] = i;
    int acc = 0;
    for (int i = 0; i < 16; i++) {
        a[i] += i * 3;
        a[i] -= 1;
        acc += (a[i] *= 2);
    }
    return acc % 251;
}
";
        let b = bytecode(src);
        let main = &b.funcs[b.by_name["main"] as usize];
        let fused = main
            .code
            .iter()
            .filter(|i| matches!(i.op, Op::CompoundIdxLL))
            .count();
        // `a[i] += i * 3`, `a[i] -= 1` (statement position) and
        // `(a[i] *= 2)` (value position) all fuse.
        assert_eq!(fused, 3);
        let value_position = main
            .code
            .iter()
            .filter(|i| matches!(i.op, Op::CompoundIdxLL) && i.b & 0x100 == 0)
            .count();
        assert_eq!(value_position, 1);

        let r = cfront::parser::parse(src);
        let prog = crate::interp::Program::new(&r.unit);
        let opts = crate::interp::InterpOptions::default();
        let vm = prog.run(opts).expect("vm runs");
        let resolved = prog.run_resolved(opts).expect("resolved runs");
        let legacy = prog.run_legacy(opts).expect("legacy runs");
        let expect: i64 = (0..16).map(|i| (i + i * 3 - 1) * 2).sum::<i64>() % 251;
        assert_eq!(vm.exit_code, expect);
        assert_eq!(vm.exit_code, resolved.exit_code);
        assert_eq!(vm.counters.without_memo(), resolved.counters.without_memo());
        assert_eq!(resolved.exit_code, legacy.exit_code);
        assert_eq!(resolved.counters.without_memo(), legacy.counters);
    }

    #[test]
    fn const_pool_dedups() {
        let b = bytecode("int main() { return 7 + 7 + 7; }");
        let main = &b.funcs[b.by_name["main"] as usize];
        let sevens = main
            .consts
            .iter()
            .filter(|c| matches!(c, Scalar::I(7)))
            .count();
        assert_eq!(sevens, 1);
    }

    #[test]
    fn binop_codes_round_trip() {
        for (i, &op) in BINOPS.iter().enumerate() {
            assert_eq!(binop_encode(op), i as u32);
            assert_eq!(binop_decode(i as u32), op);
        }
    }
}
