//! The C interpreter: executes (transformed) translation units directly on
//! the [`crate::value::Memory`] model, honouring `#pragma omp parallel
//! for` regions by running them on the [`machine::omprt`] runtime.
//!
//! Execution has three tiers (see the crate docs for the full tower):
//!
//! * the **bytecode VM** ([`crate::vm`]) — the default fast path behind
//!   [`Program::run`]: flat instruction arrays over NaN-boxed scalars;
//! * the **resolved-IR engine** ([`crate::resolve`]) — slot-indexed
//!   frames, interned symbols, pure-call memoization; the VM's
//!   differential oracle ([`Program::run_resolved`] or
//!   `Engine::Resolved`);
//! * the **legacy tree-walker** in this module — the original
//!   string-keyed interpreter, kept as the resolved engine's
//!   *differential oracle* ([`Program::run_legacy`]) in dev/test builds
//!   only (`legacy-oracle` feature): the proptests assert all three
//!   tiers produce bit-identical results. (One documented divergence:
//!   the oracle's name map is flat per function call, so block-shadowing
//!   programs get pre-ISO answers from it — see `crate::resolve` docs.)
//!
//! The interpreter is how this reproduction *validates* the compiler
//! chain: every transformed program must compute bit-identical results to
//! its original, sequentially and in parallel (the integration tests and
//! proptests assert exactly that). An optional race-check mode verifies
//! the disjointness of iteration access sets before parallel execution —
//! the dynamic counterpart of the purity guarantee.

#[cfg(any(test, feature = "legacy-oracle"))]
use crate::builtins::{call_builtin, format_printf};
use crate::resolve::{self, ResolvedProgram};
use crate::value::CounterSnapshot;
#[cfg(any(test, feature = "legacy-oracle"))]
use crate::value::{Counters, FuelBudget, Memory, Ptr, RaceAccumulator, Scalar, TrackSets};
use cfront::ast::*;
use machine::OmpSchedule;
#[cfg(any(test, feature = "legacy-oracle"))]
use machine::{parallel_for, parallel_for_pooled};
#[cfg(any(test, feature = "legacy-oracle"))]
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
#[cfg(any(test, feature = "legacy-oracle"))]
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Which execution tier [`Program::run`] dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The flat bytecode VM over NaN-boxed scalars ([`crate::vm`]) —
    /// the default fast path.
    #[default]
    Bytecode,
    /// The resolved-IR tree walker ([`crate::resolve`]) — the VM's
    /// differential oracle.
    Resolved,
}

/// Verdict of the static race analysis for one `omp parallel for`
/// region, consumed by every engine when [`InterpOptions::race_check`]
/// is on: `Independent` skips the O(n) dynamic pre-pass entirely, `Racy`
/// aborts the region before running a single iteration, and `Unknown`
/// (the default for regions the analyzer never saw) falls back to the
/// dynamic check. Produced by `crates/analysis` and plumbed in via
/// [`Program::with_pure_set_and_verdicts`], keyed by the `for`
/// statement's span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RaceVerdict {
    /// Statically proven: iteration access sets are disjoint.
    Independent,
    /// Statically proven racy (e.g. a non-reduction shared scalar write
    /// or a loop-carried dependence).
    Racy,
    /// No proof either way — the dynamic check remains the backstop.
    #[default]
    Unknown,
}

/// Map from a parallel `for` statement's span to its static verdict.
pub type VerdictMap = HashMap<cfront::span::Span, RaceVerdict>;

/// Default ceiling on dynamic race-check iterations (see
/// [`InterpOptions::race_check_cap`]).
pub const DEFAULT_RACE_CHECK_CAP: u64 = 1 << 16;

/// Interpreter configuration.
#[derive(Debug, Clone, Copy)]
pub struct InterpOptions {
    /// Threads for `omp parallel for` regions.
    pub threads: usize,
    /// Validate iteration access-set disjointness (sequentially) before
    /// running a region in parallel.
    pub race_check: bool,
    /// Ceiling on the iterations the dynamic race check executes per
    /// region (`None` = [`DEFAULT_RACE_CHECK_CAP`], `Some(0)` =
    /// unlimited). The dynamic pre-pass runs the whole region
    /// sequentially, silently doubling runtime on huge trip counts; the
    /// cap keeps `--race-check` usable there at the documented cost of
    /// only validating the first `cap` iterations. `purec
    /// --race-check-cap N` / `PUREC_RACE_CHECK_CAP` set it.
    pub race_check_cap: Option<u64>,
    /// Abort after this many executed statements (runaway guard).
    pub max_steps: u64,
    /// Instruction budget for the whole execution (`None` = unlimited).
    /// One shared pool: parallel regions and pure-call futures drain the
    /// same budget, refilled into engine-local counters in blocks of
    /// [`crate::value::FUEL_BLOCK`], so a run executes at most
    /// `fuel + threads × FUEL_BLOCK` units before trapping
    /// [`Trap::FuelExhausted`]. The VM meters per dispatched instruction;
    /// the resolved and legacy engines meter per executed statement.
    pub fuel: Option<u64>,
    /// Ceiling on cumulative heap bytes (`None` = unlimited). The heap
    /// is retire-don't-free, so the cumulative charge *is* the physical
    /// footprint; exceeding it traps [`Trap::MemoryLimit`].
    pub max_memory_bytes: Option<u64>,
    /// Ceiling on user-call nesting depth (`None` = the engines' built-in
    /// guard of 512, reported as a plain "call stack overflow" error).
    /// When set, exceeding it traps [`Trap::DepthLimit`]. Values far
    /// above the default risk a native stack overflow before the limit
    /// fires — the interpreters recurse on the Rust stack.
    pub max_call_depth: Option<usize>,
    /// Memoize calls to verified-pure, const-like functions (bytecode
    /// and resolved engines; inert unless the program was built with a
    /// pure set — see [`Program::with_pure_set`]).
    pub memo: bool,
    /// Execution tier for [`Program::run`] / [`Program::run_entry`].
    pub engine: Engine,
    /// Run parallel regions on the persistent process-wide thread pool
    /// (the paper's pinned-worker model; default). `false` falls back to
    /// the scoped spawn-per-region substrate — kept for A/B comparison
    /// (`purec --no-pool`, `bench_interp`'s region-heavy gate).
    pub pool: bool,
    /// Run independent verified-pure calls as futures on the worker
    /// pool (see `cinterp::spawn`; default). Only active with more than
    /// one thread — with one, every spawn site executes as the original
    /// inline call. `false` (`purec --no-futures`) keeps the sites
    /// inline for A/B comparison.
    pub futures: bool,
    /// Route worker-spawned futures through the spawning worker's own
    /// work-stealing deque (default). `false` (`purec --no-steal`)
    /// forces every spawn through the pool's single shared injector —
    /// the pre-deque substrate, kept for A/B comparison.
    pub steal: bool,
    /// Bytecode optimization level (bytecode engine only): 0 runs the
    /// lowerer's raw output verbatim (`purec --no-opt`), 1 folds
    /// constants, propagates copies and eliminates dead stores, 2
    /// (default) adds loop-invariant global-load hoisting,
    /// superinstruction fusion and monomorphic inline caches on call
    /// sites. Every level preserves the executed-op counters and error
    /// behaviour bit-for-bit (see `cinterp::opt`).
    pub opt_level: u8,
    /// Record a sampled opcode-pair profile during the run (root VM
    /// only; returned in [`RunResult::pairs`], rendered by
    /// `purec --profile-pairs`). Feeds profile-guided fusion.
    pub profile_pairs: bool,
}

impl Default for InterpOptions {
    fn default() -> Self {
        InterpOptions {
            threads: 1,
            race_check: false,
            race_check_cap: None,
            max_steps: 500_000_000,
            fuel: None,
            max_memory_bytes: None,
            max_call_depth: None,
            memo: true,
            engine: Engine::default(),
            pool: true,
            futures: true,
            steal: true,
            opt_level: 2,
            profile_pairs: false,
        }
    }
}

impl InterpOptions {
    /// The dynamic race-check iteration ceiling in effect (see
    /// [`InterpOptions::race_check_cap`]).
    pub fn effective_race_check_cap(&self) -> u64 {
        match self.race_check_cap {
            None => DEFAULT_RACE_CHECK_CAP,
            Some(0) => u64::MAX,
            Some(n) => n,
        }
    }
}

/// Result of a completed run.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub exit_code: i64,
    pub output: String,
    pub counters: CounterSnapshot,
    /// Sampled opcode-pair profile ([`InterpOptions::profile_pairs`];
    /// bytecode engine only, `None` otherwise).
    pub pairs: Option<crate::opt::PairProfile>,
}

/// Structured resource-governance trap kinds: a run that hit a
/// *configured* budget rather than a program bug. Traps unwind cleanly
/// through parallel regions and pending futures (siblings are drained,
/// the process-wide pool stays reusable) and map to distinct `purec`
/// exit codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trap {
    /// The instruction budget ([`InterpOptions::fuel`]) ran dry.
    FuelExhausted,
    /// The heap ceiling ([`InterpOptions::max_memory_bytes`]) would be
    /// exceeded.
    MemoryLimit,
    /// The call-depth ceiling ([`InterpOptions::max_call_depth`]) was
    /// reached.
    DepthLimit,
}

/// Runtime errors carry a message, the offending span when known, and —
/// for resource-governance failures — the structured [`Trap`] kind.
#[derive(Debug, Clone)]
pub struct RuntimeError {
    pub message: String,
    pub span: cfront::span::Span,
    pub trap: Option<Trap>,
}

impl RuntimeError {
    fn new(message: impl Into<String>, span: cfront::span::Span) -> Self {
        RuntimeError {
            message: message.into(),
            span,
            trap: None,
        }
    }

    /// Construction hook for the resolved engine (same as `new`).
    pub(crate) fn at(message: impl Into<String>, span: cfront::span::Span) -> Self {
        Self::new(message, span)
    }

    /// A resource-governance trap.
    pub(crate) fn trap_at(
        trap: Trap,
        message: impl Into<String>,
        span: cfront::span::Span,
    ) -> Self {
        machine::omprt::instrument::instant("trap", trap_probe_arg(trap));
        RuntimeError {
            message: message.into(),
            span,
            trap: Some(trap),
        }
    }

    /// Lift a memory-subsystem error, preserving the trap kind when the
    /// failure was the configured ceiling rather than a program bug.
    pub(crate) fn from_mem(e: crate::value::MemError, span: cfront::span::Span) -> Self {
        let trap = e.limit.then_some(Trap::MemoryLimit);
        if let Some(t) = trap {
            machine::omprt::instrument::instant("trap", trap_probe_arg(t));
        }
        RuntimeError {
            message: e.to_string(),
            span,
            trap,
        }
    }
}

/// Trap kind as the `trap` instant's integer argument.
fn trap_probe_arg(trap: Trap) -> u64 {
    match trap {
        Trap::FuelExhausted => 0,
        Trap::MemoryLimit => 1,
        Trap::DepthLimit => 2,
    }
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "runtime error: {}", self.message)
    }
}

type RtResult<T> = Result<T, RuntimeError>;

/// Immutable program data shared by all execution threads (legacy path).
/// The AST clones and layout tables that only the legacy tree-walker
/// consumes are compiled out of release builds (`legacy-oracle` feature).
struct ProgramData {
    #[cfg(any(test, feature = "legacy-oracle"))]
    functions: HashMap<String, Function>,
    /// `(struct name, field name)` → (offset, is_array). Keying by the
    /// pair (instead of the field name alone) prevents two structs that
    /// share a member name from silently aliasing offsets.
    field_offsets: HashMap<(String, String), (usize, bool)>,
    /// Field name → layout when it is identical across every struct that
    /// declares it; `None` marks an ambiguous name that *must* be
    /// resolved through `member_table`.
    #[cfg(any(test, feature = "legacy-oracle"))]
    field_unique: HashMap<String, Option<(usize, bool)>>,
    /// Per-site resolution: member-expression span → (offset, is_array),
    /// computed by the resolver's static type inference and shared with
    /// the legacy tree-walker so both engines agree on `(struct, field)`
    /// keyed layout.
    #[cfg(any(test, feature = "legacy-oracle"))]
    member_table: HashMap<(u32, u32), (usize, bool)>,
    #[cfg(any(test, feature = "legacy-oracle"))]
    struct_sizes: HashMap<String, usize>,
    #[cfg(any(test, feature = "legacy-oracle"))]
    global_decls: Vec<Declaration>,
    /// Static race verdicts keyed by `for`-statement span (the legacy
    /// tree-walker looks regions up here; the resolved/bytecode engines
    /// carry the verdict in their lowered region descriptors).
    #[cfg(any(test, feature = "legacy-oracle"))]
    verdicts: VerdictMap,
}

/// A loaded program ready to run.
///
/// [`Program::run`] dispatches on [`InterpOptions::engine`] — by default
/// the flat bytecode VM ([`crate::vm`]), the fastest tier.
/// [`Program::run_resolved`] forces the resolved-IR engine (the VM's
/// differential oracle); [`Program::run_legacy`] (dev/test only, behind
/// the `legacy-oracle` feature) executes the original tree-walker.
pub struct Program {
    data: Arc<ProgramData>,
    resolved: Arc<ResolvedProgram>,
    bytecode: Arc<crate::bytecode::BytecodeProgram>,
    /// Lazily-optimized bytecode per [`InterpOptions::opt_level`]
    /// (level 0 is served straight from `bytecode`). Keyed by level so
    /// A/B runs of the same `Program` don't re-optimize.
    opt_cache: std::sync::Mutex<HashMap<u8, Arc<crate::bytecode::BytecodeProgram>>>,
}

impl Program {
    /// Prepare a translation unit for execution (no purity information:
    /// pure-call memoization stays disabled).
    pub fn new(unit: &TranslationUnit) -> Self {
        Self::with_pure_set(unit, &HashSet::new())
    }

    /// Prepare a translation unit, passing the names the purity pass
    /// verified pure. Calls to the const-like subset of those functions
    /// are memoized by the bytecode and resolved engines (see
    /// [`crate::resolve`] for the safety argument).
    pub fn with_pure_set(unit: &TranslationUnit, pure_fns: &HashSet<String>) -> Self {
        Self::with_pure_set_and_verdicts(unit, pure_fns, &VerdictMap::new())
    }

    /// [`Program::with_pure_set`] plus static race verdicts for `omp
    /// parallel for` regions, keyed by the `for` statement's span in
    /// `unit`. Under [`InterpOptions::race_check`] every engine consumes
    /// the verdict: Independent skips the O(n) dynamic pre-pass, Racy is
    /// a hard error before the region runs, Unknown (or an absent entry)
    /// falls back to the dynamic check.
    pub fn with_pure_set_and_verdicts(
        unit: &TranslationUnit,
        pure_fns: &HashSet<String>,
        verdicts: &VerdictMap,
    ) -> Self {
        let resolved = Arc::new(resolve::lower_unit(unit, pure_fns, verdicts));
        let bytecode = Arc::new(crate::bytecode::BytecodeProgram::compile(&resolved));
        #[cfg(any(test, feature = "legacy-oracle"))]
        let (functions, global_decls) = {
            let mut functions = HashMap::new();
            let mut global_decls = Vec::new();
            for item in &unit.items {
                match item {
                    Item::Function(f) => {
                        // Definitions override prototypes.
                        let replace = f.is_definition() || !functions.contains_key(&f.name);
                        if replace {
                            functions.insert(f.name.clone(), f.clone());
                        }
                    }
                    Item::Decl(d) => global_decls.push(d.clone()),
                    _ => {}
                }
            }
            (functions, global_decls)
        };
        // Struct layouts come from the resolver — one implementation of
        // the (struct, field) offset algorithm serves both engines, so
        // the differential oracle cannot drift from the fast path.
        Program {
            data: Arc::new(ProgramData {
                #[cfg(any(test, feature = "legacy-oracle"))]
                functions,
                field_offsets: resolved.field_offsets.clone(),
                #[cfg(any(test, feature = "legacy-oracle"))]
                field_unique: resolved.field_unique.clone(),
                #[cfg(any(test, feature = "legacy-oracle"))]
                member_table: resolved.member_table.clone(),
                #[cfg(any(test, feature = "legacy-oracle"))]
                struct_sizes: resolved.struct_sizes.clone(),
                #[cfg(any(test, feature = "legacy-oracle"))]
                global_decls,
                #[cfg(any(test, feature = "legacy-oracle"))]
                verdicts: verdicts.clone(),
            }),
            resolved,
            bytecode,
            opt_cache: std::sync::Mutex::new(HashMap::new()),
        }
    }

    /// The lowered form (introspection: memo-eligible functions etc.).
    pub fn resolved(&self) -> &ResolvedProgram {
        &self.resolved
    }

    /// The flattened form (introspection: instruction counts etc.).
    pub fn bytecode(&self) -> &crate::bytecode::BytecodeProgram {
        &self.bytecode
    }

    /// The bytecode the VM executes at `level` — the lowerer's raw
    /// output for level 0, otherwise the (cached) output of the
    /// [`crate::opt`] pipeline.
    pub fn bytecode_at(&self, level: u8) -> Arc<crate::bytecode::BytecodeProgram> {
        if level == 0 {
            return Arc::clone(&self.bytecode);
        }
        let mut cache = self.opt_cache.lock().expect("opt cache poisoned");
        Arc::clone(
            cache.entry(level).or_insert_with(|| {
                Arc::new(crate::opt::optimize_program(&self.bytecode, level, None))
            }),
        )
    }

    /// Re-optimize at `level` with a measured opcode-pair profile
    /// steering the fusion pattern set (`purec --profile-pairs` feedback
    /// path). Not cached: each profile is specific to one workload.
    pub fn bytecode_profiled(
        &self,
        level: u8,
        profile: &crate::opt::PairProfile,
    ) -> Arc<crate::bytecode::BytecodeProgram> {
        Arc::new(crate::opt::optimize_program(
            &self.bytecode,
            level,
            Some(profile),
        ))
    }

    /// Layout of `strct.field` — offsets are keyed by the `(struct,
    /// field)` pair, so same-named members of different structs do not
    /// alias.
    pub fn field_offset(&self, strct: &str, field: &str) -> Option<(usize, bool)> {
        self.data
            .field_offsets
            .get(&(strct.to_string(), field.to_string()))
            .copied()
    }

    /// Run `main()` to completion on the engine `opts.engine` selects
    /// (bytecode VM by default).
    pub fn run(&self, opts: InterpOptions) -> RtResult<RunResult> {
        self.run_entry("main", opts)
    }

    /// Run a named entry on the engine `opts.engine` selects.
    pub fn run_entry(&self, entry: &str, opts: InterpOptions) -> RtResult<RunResult> {
        match opts.engine {
            Engine::Bytecode => crate::vm::run_vm(&self.bytecode_at(opts.opt_level), entry, opts),
            Engine::Resolved => resolve::run_resolved(&self.resolved, entry, opts),
        }
    }

    /// Run a named entry on the bytecode VM with a measured opcode-pair
    /// profile steering the superinstruction fusion pattern set — the
    /// second leg of the `purec --pgo` driver (profile run, then this).
    /// Uses [`Program::bytecode_profiled`], so the rewritten program is
    /// workload-specific and deliberately uncached.
    pub fn run_profiled(
        &self,
        entry: &str,
        opts: InterpOptions,
        profile: &crate::opt::PairProfile,
    ) -> RtResult<RunResult> {
        crate::vm::run_vm(
            &self.bytecode_profiled(opts.opt_level, profile),
            entry,
            opts,
        )
    }

    /// Run `main()` on the resolved-IR engine (the bytecode VM's
    /// differential oracle), regardless of `opts.engine`.
    pub fn run_resolved(&self, opts: InterpOptions) -> RtResult<RunResult> {
        self.run_entry_resolved("main", opts)
    }

    /// Run a named entry on the resolved-IR engine.
    pub fn run_entry_resolved(&self, entry: &str, opts: InterpOptions) -> RtResult<RunResult> {
        resolve::run_resolved(&self.resolved, entry, opts)
    }

    /// Run `main()` on the legacy tree-walking interpreter (the
    /// resolved engine's differential oracle; dev/test builds only).
    #[cfg(any(test, feature = "legacy-oracle"))]
    pub fn run_legacy(&self, opts: InterpOptions) -> RtResult<RunResult> {
        self.run_entry_legacy("main", opts)
    }

    /// Run a named entry on the legacy tree-walking interpreter.
    #[cfg(any(test, feature = "legacy-oracle"))]
    pub fn run_entry_legacy(&self, entry: &str, opts: InterpOptions) -> RtResult<RunResult> {
        let shared = SharedState {
            prog: Arc::clone(&self.data),
            mem: Memory::with_limit(opts.max_memory_bytes),
            counters: Arc::new(Counters::new()),
            globals: Arc::new(RwLock::new(HashMap::new())),
            output: Arc::new(Mutex::new(String::new())),
            fuel: opts.fuel.map(|f| Arc::new(FuelBudget::new(f))),
            opts,
        };
        let mut interp = Interp::new(shared.clone());

        // Initialise globals in declaration order.
        for d in &self.data.global_decls.clone() {
            interp.declare(d, true)?;
        }

        let exit = interp.call_function(entry, &[], cfront::span::Span::DUMMY)?;
        let output = shared.output.lock().clone();
        let counters = shared.counters.snapshot();
        Ok(RunResult {
            exit_code: exit.as_i64(),
            output,
            counters,
            pairs: None,
        })
    }
}

#[cfg(any(test, feature = "legacy-oracle"))]
#[derive(Clone)]
struct SharedState {
    prog: Arc<ProgramData>,
    mem: Memory,
    counters: Arc<Counters>,
    globals: Arc<RwLock<HashMap<String, Scalar>>>,
    output: Arc<Mutex<String>>,
    /// One instruction budget shared by every thread of the run.
    fuel: Option<Arc<FuelBudget>>,
    opts: InterpOptions,
}

#[cfg(any(test, feature = "legacy-oracle"))]
/// Where an lvalue lives. `Local` carries the index of the frame that
/// holds the variable, so `place()` resolves the scope stack **once** and
/// the subsequent load/store indexes directly instead of rescanning.
enum Place {
    Local(usize, String),
    Global(String),
    Mem(Ptr),
}

#[cfg(any(test, feature = "legacy-oracle"))]
enum Flow {
    Normal,
    Break,
    Continue,
    Return(Scalar),
}

#[cfg(any(test, feature = "legacy-oracle"))]
struct Interp {
    s: SharedState,
    frames: Vec<HashMap<String, Scalar>>,
    steps: u64,
    /// Locally-held fuel (statements this thread may still execute
    /// before refilling from the shared budget). `u64::MAX` when no
    /// budget is configured, so the hot path stays one predictable
    /// branch plus a decrement.
    fuel_local: u64,
    track: Option<TrackSets>,
}

#[cfg(any(test, feature = "legacy-oracle"))]
impl Interp {
    fn new(s: SharedState) -> Self {
        let fuel_local = if s.fuel.is_some() { 0 } else { u64::MAX };
        Interp {
            s,
            frames: vec![HashMap::new()],
            steps: 0,
            fuel_local,
            track: None,
        }
    }

    fn frame(&mut self) -> &mut HashMap<String, Scalar> {
        self.frames.last_mut().expect("at least one frame")
    }

    fn step(&mut self, span: cfront::span::Span) -> RtResult<()> {
        self.steps += 1;
        if self.steps > self.s.opts.max_steps {
            return Err(RuntimeError::new(
                "step limit exceeded (infinite loop?)",
                span,
            ));
        }
        if self.fuel_local == 0 {
            self.refill_fuel(span)?;
        }
        self.fuel_local -= 1;
        Ok(())
    }

    /// Grab the next fuel block from the shared budget (slow path of
    /// [`Interp::step`], at most once per [`crate::value::FUEL_BLOCK`]
    /// statements).
    #[cold]
    fn refill_fuel(&mut self, span: cfront::span::Span) -> RtResult<()> {
        let Some(budget) = &self.s.fuel else {
            // Unlimited runs only land here after 2^64 statements.
            self.fuel_local = u64::MAX;
            return Ok(());
        };
        let granted = budget.take_block();
        if granted == 0 {
            return Err(RuntimeError::trap_at(
                Trap::FuelExhausted,
                "fuel exhausted",
                span,
            ));
        }
        self.fuel_local = granted;
        Ok(())
    }

    /// Hand unused local fuel back to the shared budget — called when a
    /// region child retires, so a finishing worker's block is available
    /// to its siblings instead of silently burned.
    fn refund_fuel(&mut self) {
        if let Some(budget) = &self.s.fuel {
            budget.refund(std::mem::take(&mut self.fuel_local));
        }
    }

    // -- declarations ---------------------------------------------------------

    fn declare(&mut self, d: &Declaration, global: bool) -> RtResult<()> {
        for dec in &d.declarators {
            let value = if !dec.array_dims.is_empty() {
                // Local/global array: nested spine-of-pointers layout.
                let dims: Vec<usize> = dec
                    .array_dims
                    .iter()
                    .map(|e| self.eval(e).map(|v| v.as_i64().max(0) as usize))
                    .collect::<RtResult<_>>()?;
                Scalar::P(self.alloc_array(&dims, d.span)?)
            } else if matches!(dec.ty.base, BaseType::Struct(_)) && !dec.ty.is_pointer() {
                let size = match &dec.ty.base {
                    BaseType::Struct(name) => *self.s.prog.struct_sizes.get(name).unwrap_or(&8),
                    _ => unreachable!(),
                };
                Scalar::P(
                    self.s
                        .mem
                        .try_alloc(size)
                        .map_err(|e| RuntimeError::from_mem(e, d.span))?,
                )
            } else if let Some(init) = &dec.init {
                let v = self.eval(init)?;
                self.coerce(v, &dec.ty)
            } else {
                Scalar::Uninit
            };

            // Array initializer lists fill the allocation.
            if !dec.array_dims.is_empty() {
                if let Some(init) = &dec.init {
                    if let Scalar::P(p) = value {
                        self.fill_initlist(p, init)?;
                    }
                }
            }

            if global {
                self.s.globals.write().insert(dec.name.clone(), value);
            } else {
                self.frame().insert(dec.name.clone(), value);
            }
        }
        Ok(())
    }

    fn alloc_array(&mut self, dims: &[usize], span: cfront::span::Span) -> RtResult<Ptr> {
        match dims {
            [] | [_] => self
                .s
                .mem
                .try_alloc(dims.first().copied().unwrap_or(1))
                .map_err(|e| RuntimeError::from_mem(e, span)),
            [first, rest @ ..] => {
                let spine = self
                    .s
                    .mem
                    .try_alloc(*first)
                    .map_err(|e| RuntimeError::from_mem(e, span))?;
                for i in 0..*first {
                    let sub = self.alloc_array(rest, span)?;
                    self.s
                        .mem
                        .store(spine.offset(i as i64), Scalar::P(sub))
                        .expect("fresh spine in bounds");
                }
                Ok(spine)
            }
        }
    }

    fn fill_initlist(&mut self, p: Ptr, init: &Expr) -> RtResult<()> {
        if let Some(("__initlist", elems)) = init.as_direct_call() {
            for (i, e) in elems.iter().enumerate() {
                if let Some(("__initlist", _)) = e.as_direct_call() {
                    // Nested list: descend into row pointer.
                    if let Scalar::P(row) = self.mem_load(p.offset(i as i64), e.span)? {
                        self.fill_initlist(row, e)?;
                    }
                } else {
                    let v = self.eval(e)?;
                    self.mem_store(p.offset(i as i64), v, e.span)?;
                }
            }
        }
        Ok(())
    }

    fn coerce(&self, v: Scalar, ty: &Type) -> Scalar {
        if ty.is_pointer() {
            return v;
        }
        match (&ty.base, v) {
            (BaseType::Float | BaseType::Double, Scalar::I(i)) => Scalar::F(i as f64),
            (b, Scalar::F(f)) if b.is_integer() => Scalar::I(f as i64),
            _ => v,
        }
    }

    // -- memory with counters ---------------------------------------------------

    fn mem_load(&mut self, p: Ptr, span: cfront::span::Span) -> RtResult<Scalar> {
        Counters::bump(&self.s.counters.loads);
        if let Some(t) = &mut self.track {
            t.reads.insert((p.alloc, p.index));
        }
        self.s
            .mem
            .load(p)
            .map_err(|e| RuntimeError::from_mem(e, span))
    }

    fn mem_store(&mut self, p: Ptr, v: Scalar, span: cfront::span::Span) -> RtResult<()> {
        Counters::bump(&self.s.counters.stores);
        if let Some(t) = &mut self.track {
            t.writes.insert((p.alloc, p.index));
        }
        self.s
            .mem
            .store(p, v)
            .map_err(|e| RuntimeError::from_mem(e, span))
    }

    // -- name lookup --------------------------------------------------------------

    fn lookup(&self, name: &str) -> Option<Scalar> {
        for frame in self.frames.iter().rev() {
            if let Some(v) = frame.get(name) {
                return Some(*v);
            }
        }
        self.s.globals.read().get(name).copied()
    }

    // -- lvalues ----------------------------------------------------------------

    fn place(&mut self, e: &Expr) -> RtResult<Place> {
        match &e.kind {
            ExprKind::Ident(name) => {
                // Single scan: record the owning frame's index so the
                // later load/store needs no second walk.
                for (idx, frame) in self.frames.iter().enumerate().rev() {
                    if frame.contains_key(name) {
                        return Ok(Place::Local(idx, name.clone()));
                    }
                }
                if self.s.globals.read().contains_key(name) {
                    return Ok(Place::Global(name.clone()));
                }
                Err(RuntimeError::new(
                    format!("unknown variable '{name}'"),
                    e.span,
                ))
            }
            ExprKind::Index(base, idx) => {
                let b = self.eval(base)?;
                let i = self.eval(idx)?.as_i64();
                match b {
                    Scalar::P(p) => Ok(Place::Mem(p.offset(i))),
                    other => Err(RuntimeError::new(
                        format!("indexing a non-pointer value {other:?}"),
                        e.span,
                    )),
                }
            }
            ExprKind::Unary(UnOp::Deref, inner) => {
                let v = self.eval(inner)?;
                match v {
                    Scalar::P(p) => Ok(Place::Mem(p)),
                    _ => Err(RuntimeError::new("dereference of non-pointer", e.span)),
                }
            }
            ExprKind::Member { base, member, .. } => {
                let b = self.eval(base)?;
                let Scalar::P(p) = b else {
                    return Err(RuntimeError::new("member access on non-struct", e.span));
                };
                // Offsets are keyed by (struct, field): the resolver's
                // type inference pins this access site to its struct via
                // the span table; names that are unambiguous across all
                // structs may fall back to the shared layout.
                let key = (e.span.start, e.span.end);
                let (offset, is_array) = match self.s.prog.member_table.get(&key) {
                    Some(&v) => v,
                    None => match self.s.prog.field_unique.get(member) {
                        Some(Some(v)) => *v,
                        Some(None) => {
                            return Err(RuntimeError::new(
                                format!(
                                    "ambiguous field '{member}' (declared at different \
                                     offsets by multiple structs)"
                                ),
                                e.span,
                            ))
                        }
                        None => {
                            return Err(RuntimeError::new(
                                format!("unknown field '{member}'"),
                                e.span,
                            ))
                        }
                    },
                };
                let _ = is_array;
                Ok(Place::Mem(p.offset(offset as i64)))
            }
            ExprKind::Cast(_, inner) => self.place(inner),
            _ => Err(RuntimeError::new("expression is not an lvalue", e.span)),
        }
    }

    fn load_place(&mut self, place: &Place, span: cfront::span::Span) -> RtResult<Scalar> {
        match place {
            Place::Local(frame, name) => self.frames[*frame]
                .get(name)
                .copied()
                .ok_or_else(|| RuntimeError::new(format!("unknown variable '{name}'"), span)),
            Place::Global(name) => self
                .s
                .globals
                .read()
                .get(name)
                .copied()
                .ok_or_else(|| RuntimeError::new(format!("unknown variable '{name}'"), span)),
            Place::Mem(p) => self.mem_load(*p, span),
        }
    }

    fn store_place(&mut self, place: &Place, v: Scalar, span: cfront::span::Span) -> RtResult<()> {
        match place {
            Place::Local(frame, name) => match self.frames[*frame].get_mut(name) {
                Some(slot) => {
                    *slot = v;
                    Ok(())
                }
                None => Err(RuntimeError::new(
                    format!("assignment to undeclared '{name}'"),
                    span,
                )),
            },
            Place::Global(name) => match self.s.globals.write().get_mut(name) {
                Some(slot) => {
                    *slot = v;
                    Ok(())
                }
                None => Err(RuntimeError::new(
                    format!("assignment to undeclared '{name}'"),
                    span,
                )),
            },
            Place::Mem(p) => self.mem_store(*p, v, span),
        }
    }

    /// `++`/`--` value transition (shared by the global-locked and
    /// generic place paths; one implementation across engines).
    fn incdec_value(&self, old: Scalar, delta: i64) -> Scalar {
        crate::value::incdec_with_counters(&self.s.counters, old, delta)
    }

    // -- expressions ----------------------------------------------------------------

    fn eval(&mut self, e: &Expr) -> RtResult<Scalar> {
        match &e.kind {
            ExprKind::IntLit(v) => Ok(Scalar::I(*v)),
            ExprKind::FloatLit { value, .. } => Ok(Scalar::F(*value)),
            ExprKind::CharLit(c) => Ok(Scalar::I(*c as i64)),
            ExprKind::StrLit(s) => {
                // One char per slot, NUL-terminated.
                let p = self
                    .s
                    .mem
                    .try_alloc(s.chars().count() + 1)
                    .map_err(|err| RuntimeError::from_mem(err, e.span))?;
                for (i, ch) in s.chars().enumerate() {
                    self.mem_store(p.offset(i as i64), Scalar::I(ch as i64), e.span)?;
                }
                self.mem_store(p.offset(s.chars().count() as i64), Scalar::I(0), e.span)?;
                Ok(Scalar::P(p))
            }
            ExprKind::Ident(name) => self
                .lookup(name)
                .ok_or_else(|| RuntimeError::new(format!("unknown variable '{name}'"), e.span)),
            ExprKind::Unary(op, inner) => self.eval_unary(*op, inner, e.span),
            ExprKind::Binary(op, l, r) => self.eval_binary(*op, l, r, e.span),
            ExprKind::Assign(op, lhs, rhs) => {
                let rv = self.eval(rhs)?;
                let place = self.place(lhs)?;
                if let (Some(b), Place::Global(name)) = (op.binop(), &place) {
                    // Compound assign to a global: one write guard for
                    // the whole read-modify-write. The old separate
                    // read()/write() pair let a concurrent RMW interleave
                    // and lose an update.
                    let globals = Arc::clone(&self.s.globals);
                    let mut g = globals.write();
                    let old = *g.get(name).ok_or_else(|| {
                        RuntimeError::new(format!("unknown variable '{name}'"), e.span)
                    })?;
                    let result = self.apply_binop(b, old, rv, e.span)?;
                    *g.get_mut(name).expect("present above") = result;
                    return Ok(result);
                }
                let result = match op.binop() {
                    None => rv,
                    Some(b) => {
                        let old = self.load_place(&place, e.span)?;
                        self.apply_binop(b, old, rv, e.span)?
                    }
                };
                self.store_place(&place, result, e.span)?;
                Ok(result)
            }
            ExprKind::Ternary(c, t, f) => {
                Counters::bump(&self.s.counters.branches);
                if self.eval(c)?.truthy() {
                    self.eval(t)
                } else {
                    self.eval(f)
                }
            }
            ExprKind::Call { callee, args } => {
                let Some(name) = callee.as_ident() else {
                    return Err(RuntimeError::new("indirect calls are unsupported", e.span));
                };
                let name = name.to_string();
                if name == "printf" {
                    return self.do_printf(args, e.span);
                }
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a)?);
                }
                self.call_function(&name, &vals, e.span)
            }
            ExprKind::Index(..) | ExprKind::Member { .. } => {
                let place = self.place(e)?;
                self.load_place(&place, e.span)
            }
            ExprKind::Cast(ty, inner) => {
                let v = self.eval(inner)?;
                Ok(self.coerce(v, ty))
            }
            ExprKind::SizeofType(_) => Ok(Scalar::I(8)),
            ExprKind::SizeofExpr(_) => Ok(Scalar::I(8)),
            ExprKind::Comma(l, r) => {
                self.eval(l)?;
                self.eval(r)
            }
        }
    }

    fn eval_unary(&mut self, op: UnOp, inner: &Expr, span: cfront::span::Span) -> RtResult<Scalar> {
        match op {
            UnOp::Neg => {
                let v = self.eval(inner)?;
                Ok(match v {
                    Scalar::F(f) => {
                        Counters::bump(&self.s.counters.flops);
                        Scalar::F(-f)
                    }
                    other => {
                        Counters::bump(&self.s.counters.int_ops);
                        Scalar::I(-other.as_i64())
                    }
                })
            }
            UnOp::Not => {
                let v = self.eval(inner)?;
                Ok(Scalar::I(i64::from(!v.truthy())))
            }
            UnOp::BitNot => {
                let v = self.eval(inner)?;
                Ok(Scalar::I(!v.as_i64()))
            }
            UnOp::Deref => {
                // `*e` loads through the pointer value of `e` (which may be
                // any expression, e.g. `*(p + 4)`).
                let v = self.eval(inner)?;
                match v {
                    Scalar::P(p) => self.mem_load(p, span),
                    other => Err(RuntimeError::new(
                        format!("dereference of non-pointer {other:?}"),
                        span,
                    )),
                }
            }
            UnOp::AddrOf => {
                let place = self.place(inner)?;
                match place {
                    Place::Mem(p) => Ok(Scalar::P(p)),
                    _ => Err(RuntimeError::new(
                        "address-of is only supported for memory lvalues",
                        span,
                    )),
                }
            }
            UnOp::PreInc | UnOp::PreDec | UnOp::PostInc | UnOp::PostDec => {
                let place = self.place(inner)?;
                let delta = if matches!(op, UnOp::PreInc | UnOp::PostInc) {
                    1
                } else {
                    -1
                };
                let (old, new) = if let Place::Global(name) = &place {
                    // `++`/`--` on a global: single write guard across
                    // the RMW (same torn-update fix as compound assign).
                    let globals = Arc::clone(&self.s.globals);
                    let mut g = globals.write();
                    let slot = g.get_mut(name).ok_or_else(|| {
                        RuntimeError::new(format!("unknown variable '{name}'"), span)
                    })?;
                    let old = *slot;
                    let new = self.incdec_value(old, delta);
                    *slot = new;
                    (old, new)
                } else {
                    let old = self.load_place(&place, span)?;
                    let new = self.incdec_value(old, delta);
                    self.store_place(&place, new, span)?;
                    (old, new)
                };
                Ok(if matches!(op, UnOp::PreInc | UnOp::PreDec) {
                    new
                } else {
                    old
                })
            }
        }
    }

    fn eval_binary(
        &mut self,
        op: BinOp,
        l: &Expr,
        r: &Expr,
        span: cfront::span::Span,
    ) -> RtResult<Scalar> {
        // Short-circuit logicals.
        match op {
            BinOp::And => {
                Counters::bump(&self.s.counters.branches);
                let lv = self.eval(l)?;
                if !lv.truthy() {
                    return Ok(Scalar::I(0));
                }
                let rv = self.eval(r)?;
                return Ok(Scalar::I(i64::from(rv.truthy())));
            }
            BinOp::Or => {
                Counters::bump(&self.s.counters.branches);
                let lv = self.eval(l)?;
                if lv.truthy() {
                    return Ok(Scalar::I(1));
                }
                let rv = self.eval(r)?;
                return Ok(Scalar::I(i64::from(rv.truthy())));
            }
            _ => {}
        }
        let lv = self.eval(l)?;
        let rv = self.eval(r)?;
        self.apply_binop(op, lv, rv, span)
    }

    fn apply_binop(
        &mut self,
        op: BinOp,
        lv: Scalar,
        rv: Scalar,
        span: cfront::span::Span,
    ) -> RtResult<Scalar> {
        use BinOp::*;
        // Pointer arithmetic.
        match (lv, rv, op) {
            (Scalar::P(p), i, Add) if !matches!(i, Scalar::P(_)) => {
                Counters::bump(&self.s.counters.int_ops);
                return Ok(Scalar::P(p.offset(i.as_i64())));
            }
            (i, Scalar::P(p), Add) if !matches!(i, Scalar::P(_)) => {
                Counters::bump(&self.s.counters.int_ops);
                return Ok(Scalar::P(p.offset(i.as_i64())));
            }
            (Scalar::P(p), i, Sub) if !matches!(i, Scalar::P(_)) => {
                Counters::bump(&self.s.counters.int_ops);
                return Ok(Scalar::P(p.offset(-i.as_i64())));
            }
            (Scalar::P(a), Scalar::P(b), Sub) => {
                Counters::bump(&self.s.counters.int_ops);
                return Ok(Scalar::I(a.index - b.index));
            }
            (Scalar::P(a), Scalar::P(b), Eq) => {
                return Ok(Scalar::I(i64::from(a == b)));
            }
            (Scalar::P(a), Scalar::P(b), Ne) => {
                return Ok(Scalar::I(i64::from(a != b)));
            }
            (Scalar::P(_), Scalar::Null, Eq) | (Scalar::Null, Scalar::P(_), Eq) => {
                return Ok(Scalar::I(0));
            }
            (Scalar::P(_), Scalar::Null, Ne) | (Scalar::Null, Scalar::P(_), Ne) => {
                return Ok(Scalar::I(1));
            }
            _ => {}
        }

        let float = lv.is_float() || rv.is_float();
        if float {
            let a = lv.as_f64();
            let b = rv.as_f64();
            let out = match op {
                Add => Scalar::F(a + b),
                Sub => Scalar::F(a - b),
                Mul => Scalar::F(a * b),
                Div => Scalar::F(a / b),
                Rem => Scalar::F(a % b),
                Lt => Scalar::I(i64::from(a < b)),
                Gt => Scalar::I(i64::from(a > b)),
                Le => Scalar::I(i64::from(a <= b)),
                Ge => Scalar::I(i64::from(a >= b)),
                Eq => Scalar::I(i64::from(a == b)),
                Ne => Scalar::I(i64::from(a != b)),
                Shl | Shr | BitAnd | BitXor | BitOr => {
                    return Err(RuntimeError::new("bitwise op on float", span))
                }
                And | Or => unreachable!("handled above"),
            };
            Counters::bump(&self.s.counters.flops);
            Ok(out)
        } else {
            let a = lv.as_i64();
            let b = rv.as_i64();
            let out = match op {
                Add => Scalar::I(a.wrapping_add(b)),
                Sub => Scalar::I(a.wrapping_sub(b)),
                Mul => Scalar::I(a.wrapping_mul(b)),
                Div => {
                    if b == 0 {
                        return Err(RuntimeError::new("integer division by zero", span));
                    }
                    Scalar::I(a.wrapping_div(b))
                }
                Rem => {
                    if b == 0 {
                        return Err(RuntimeError::new("integer modulo by zero", span));
                    }
                    Scalar::I(a.wrapping_rem(b))
                }
                Shl => Scalar::I(a.wrapping_shl(b as u32)),
                Shr => Scalar::I(a.wrapping_shr(b as u32)),
                Lt => Scalar::I(i64::from(a < b)),
                Gt => Scalar::I(i64::from(a > b)),
                Le => Scalar::I(i64::from(a <= b)),
                Ge => Scalar::I(i64::from(a >= b)),
                Eq => Scalar::I(i64::from(a == b)),
                Ne => Scalar::I(i64::from(a != b)),
                BitAnd => Scalar::I(a & b),
                BitXor => Scalar::I(a ^ b),
                BitOr => Scalar::I(a | b),
                And | Or => unreachable!("handled above"),
            };
            Counters::bump(&self.s.counters.int_ops);
            Ok(out)
        }
    }

    fn do_printf(&mut self, args: &[Expr], span: cfront::span::Span) -> RtResult<Scalar> {
        let Some(first) = args.first() else {
            return Err(RuntimeError::new("printf without format", span));
        };
        let fmt = match &first.kind {
            ExprKind::StrLit(s) => s.clone(),
            _ => {
                // Evaluate to a char pointer and read it back.
                let v = self.eval(first)?;
                let Scalar::P(mut p) = v else {
                    return Err(RuntimeError::new("printf format is not a string", span));
                };
                let mut s = String::new();
                while let Scalar::I(ch) = self.mem_load(p, span)? {
                    if ch == 0 {
                        break;
                    }
                    s.push(char::from_u32(ch as u32).unwrap_or('?'));
                    p = p.offset(1);
                }
                s
            }
        };
        let mut vals = Vec::with_capacity(args.len().saturating_sub(1));
        for a in &args[1..] {
            vals.push(self.eval(a)?);
        }
        let rendered = format_printf(&fmt, &vals, &self.s.mem);
        self.s.output.lock().push_str(&rendered);
        Ok(Scalar::I(rendered.len() as i64))
    }

    fn call_function(
        &mut self,
        name: &str,
        args: &[Scalar],
        span: cfront::span::Span,
    ) -> RtResult<Scalar> {
        Counters::bump(&self.s.counters.calls);
        // User definitions shadow builtins (e.g. __pc_* helper C sources).
        let func = self.s.prog.functions.get(name).cloned();
        match func {
            Some(f) if f.is_definition() => {
                match self.s.opts.max_call_depth {
                    Some(limit) if self.frames.len() > limit => {
                        return Err(RuntimeError::trap_at(
                            Trap::DepthLimit,
                            format!("call depth limit exceeded ({limit})"),
                            span,
                        ));
                    }
                    None if self.frames.len() > 512 => {
                        return Err(RuntimeError::new("call stack overflow", span));
                    }
                    _ => {}
                }
                let mut frame = HashMap::with_capacity(f.params.len());
                for (p, v) in f.params.iter().zip(args) {
                    if let Some(pname) = &p.name {
                        frame.insert(pname.clone(), self.coerce(*v, &p.ty));
                    }
                }
                self.frames.push(frame);
                let body = f.body.as_ref().expect("definition");
                // Route through exec_block so `#pragma omp parallel for`
                // regions at function top level are recognised.
                let flow = self.exec_block(body);
                self.frames.pop();
                match flow? {
                    Flow::Return(v) => Ok(v),
                    Flow::Normal => Ok(Scalar::I(0)),
                    Flow::Break | Flow::Continue => {
                        Err(RuntimeError::new("break/continue outside loop", f.span))
                    }
                }
            }
            _ => {
                let mut out = String::new();
                match call_builtin(name, args, &self.s.mem, &mut out) {
                    Some(Ok(v)) => {
                        if !out.is_empty() {
                            self.s.output.lock().push_str(&out);
                        }
                        Ok(v)
                    }
                    Some(Err(e)) => Err(RuntimeError::from_mem(e, span)),
                    None => Err(RuntimeError::new(
                        format!("call to undefined function '{name}'"),
                        span,
                    )),
                }
            }
        }
    }

    // -- statements -------------------------------------------------------------

    fn exec(&mut self, stmt: &Stmt) -> RtResult<Flow> {
        self.step(stmt.span)?;
        match &stmt.kind {
            StmtKind::Decl(d) => {
                self.declare(d, false)?;
                Ok(Flow::Normal)
            }
            StmtKind::Expr(Some(e)) => {
                self.eval(e)?;
                Ok(Flow::Normal)
            }
            StmtKind::Expr(None) | StmtKind::Pragma(_) => Ok(Flow::Normal),
            StmtKind::Block(b) => self.exec_block(b),
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                Counters::bump(&self.s.counters.branches);
                if self.eval(cond)?.truthy() {
                    self.exec(then_branch)
                } else if let Some(e) = else_branch {
                    self.exec(e)
                } else {
                    Ok(Flow::Normal)
                }
            }
            StmtKind::While { cond, body } => {
                loop {
                    Counters::bump(&self.s.counters.branches);
                    if !self.eval(cond)?.truthy() {
                        break;
                    }
                    match self.exec(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::DoWhile { body, cond } => {
                loop {
                    match self.exec(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                    Counters::bump(&self.s.counters.branches);
                    if !self.eval(cond)?.truthy() {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                match init.as_ref() {
                    ForInit::Decl(d) => self.declare(d, false)?,
                    ForInit::Expr(Some(e)) => {
                        self.eval(e)?;
                    }
                    ForInit::Expr(None) => {}
                }
                loop {
                    self.step(stmt.span)?;
                    Counters::bump(&self.s.counters.branches);
                    if let Some(c) = cond {
                        if !self.eval(c)?.truthy() {
                            break;
                        }
                    }
                    match self.exec(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                    if let Some(s) = step {
                        self.eval(s)?;
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e)?,
                    None => Scalar::I(0),
                };
                Ok(Flow::Return(v))
            }
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
        }
    }

    /// Execute a block, recognising `#pragma omp parallel for` regions.
    fn exec_block(&mut self, b: &Block) -> RtResult<Flow> {
        let mut i = 0;
        while i < b.stmts.len() {
            if let StmtKind::Pragma(p) = &b.stmts[i].kind {
                if let Some(schedule) = parse_omp_parallel_for(p) {
                    // Skip interleaved simd pragmas between omp and for.
                    let mut j = i + 1;
                    while j < b.stmts.len() && matches!(&b.stmts[j].kind, StmtKind::Pragma(_)) {
                        j += 1;
                    }
                    if j < b.stmts.len() && matches!(b.stmts[j].kind, StmtKind::For { .. }) {
                        self.exec_parallel_for(&b.stmts[j], schedule)?;
                        i = j + 1;
                        continue;
                    }
                }
            }
            match self.exec(&b.stmts[i])? {
                Flow::Normal => {}
                other => return Ok(other),
            }
            i += 1;
        }
        Ok(Flow::Normal)
    }

    /// Run a `for` loop in parallel under the omprt runtime.
    fn exec_parallel_for(&mut self, for_stmt: &Stmt, schedule: OmpSchedule) -> RtResult<()> {
        let StmtKind::For {
            init,
            cond,
            step,
            body,
        } = &for_stmt.kind
        else {
            return Err(RuntimeError::new("omp pragma without loop", for_stmt.span));
        };

        // Header: iterator, inclusive bounds, unit stride.
        let (iter_name, lb) = match init.as_ref() {
            ForInit::Decl(d) if d.declarators.len() == 1 => {
                let dec = &d.declarators[0];
                let init_e = dec.init.as_ref().ok_or_else(|| {
                    RuntimeError::new("parallel loop iterator lacks init", for_stmt.span)
                })?;
                (dec.name.clone(), self.eval(init_e)?.as_i64())
            }
            ForInit::Expr(Some(e)) => match &e.kind {
                ExprKind::Assign(AssignOp::Assign, lhs, rhs) => {
                    let name = lhs
                        .as_ident()
                        .ok_or_else(|| RuntimeError::new("bad parallel loop init", e.span))?;
                    (name.to_string(), self.eval(rhs)?.as_i64())
                }
                _ => return Err(RuntimeError::new("bad parallel loop init", e.span)),
            },
            _ => return Err(RuntimeError::new("bad parallel loop init", for_stmt.span)),
        };
        let ub_incl = match cond.as_ref().map(|c| &c.kind) {
            Some(ExprKind::Binary(BinOp::Lt, _, r)) => {
                let r = r.clone();
                self.eval(&r)?.as_i64() - 1
            }
            Some(ExprKind::Binary(BinOp::Le, _, r)) => {
                let r = r.clone();
                self.eval(&r)?.as_i64()
            }
            _ => {
                return Err(RuntimeError::new(
                    "parallel loop condition must be < or <=",
                    for_stmt.span,
                ))
            }
        };
        let unit_step = match step.as_ref().map(|s| &s.kind) {
            Some(ExprKind::Unary(UnOp::PreInc | UnOp::PostInc, target)) => {
                target.as_ident() == Some(iter_name.as_str())
            }
            Some(ExprKind::Assign(AssignOp::Add, lhs, rhs)) => {
                lhs.as_ident() == Some(iter_name.as_str())
                    && matches!(rhs.kind, ExprKind::IntLit(1))
            }
            _ => false,
        };
        if !unit_step {
            return Err(RuntimeError::new(
                "parallel loop must have unit increment",
                for_stmt.span,
            ));
        }

        if ub_incl < lb {
            return Ok(());
        }
        let n = (ub_incl - lb + 1) as u64;

        // Optional race check. The static verdict rules first:
        // Independent skips the O(n) dynamic pre-pass, Racy aborts
        // before any iteration runs, Unknown falls back to the dynamic
        // check.
        if self.s.opts.race_check {
            match self
                .s
                .prog
                .verdicts
                .get(&for_stmt.span)
                .copied()
                .unwrap_or_default()
            {
                RaceVerdict::Independent => {
                    Counters::bump(&self.s.counters.race_static_skips);
                }
                RaceVerdict::Racy => {
                    return Err(RuntimeError::new(
                        "static race analysis rejected this parallel loop (verdict: racy)",
                        for_stmt.span,
                    ));
                }
                RaceVerdict::Unknown => self.race_check(&iter_name, lb, n, body)?,
            }
        }

        let base_frame = self.frames.last().cloned().unwrap_or_default();
        let shared = self.s.clone();
        let err: Mutex<Option<RuntimeError>> = Mutex::new(None);
        // Trap-drains-siblings: once any iteration errors, remaining
        // iterations are skipped (checked lock-free at iteration start)
        // so a trap unwinds the region promptly instead of letting
        // siblings burn the rest of their budgets.
        let failed = AtomicBool::new(false);

        let iteration = |k: u64| {
            if failed.load(Ordering::Relaxed) {
                return;
            }
            let mut child = Interp::new(shared.clone());
            child.frames = vec![base_frame.clone()];
            child
                .frames
                .last_mut()
                .expect("frame")
                .insert(iter_name.clone(), Scalar::I(lb + k as i64));
            if let Err(e) = child.exec(body) {
                failed.store(true, Ordering::Relaxed);
                let mut g = err.lock();
                if g.is_none() {
                    *g = Some(e);
                }
            }
            child.refund_fuel();
        };
        if self.s.opts.pool {
            parallel_for_pooled(n, self.s.opts.threads, schedule, iteration);
        } else {
            parallel_for(n, self.s.opts.threads, schedule, iteration);
        }

        match err.into_inner() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Sequentially verify that iteration access sets are disjoint
    /// (write/write and write/read), the dynamic analogue of the paper's
    /// static guarantee.
    fn race_check(&mut self, iter: &str, lb: i64, n: u64, body: &Stmt) -> RtResult<()> {
        let mut acc = RaceAccumulator::new();
        let base_frame = self.frames.last().cloned().unwrap_or_default();
        let checked = n.min(self.s.opts.effective_race_check_cap());
        self.s
            .counters
            .race_dyn_iters
            .fetch_add(checked, Ordering::Relaxed);
        // One child interpreter reused across every validated iteration;
        // `clone_from` refills its single frame in place instead of
        // cloning the whole base frame per iteration.
        let mut child = Interp::new(self.s.clone());
        child.frames = vec![base_frame.clone()];
        for k in 0..checked {
            child.frames.truncate(1);
            child.frames[0].clone_from(&base_frame);
            child
                .frame()
                .insert(iter.to_string(), Scalar::I(lb + k as i64));
            child.track = Some(TrackSets::default());
            let res = child.exec(body);
            let t = child.track.take().expect("tracking on");
            res?;
            acc.absorb(t)
                .map_err(|msg| RuntimeError::new(msg, body.span))?;
        }
        child.refund_fuel();
        Ok(())
    }
}

/// Parse `pragma omp parallel for [private(...)] [schedule(kind[,chunk])]`.
/// Returns the schedule when this is a parallel-for pragma. Thin wrapper
/// over [`machine::parse_omp_parallel_for_clauses`] — the engines only
/// need the schedule; the static analyzer consumes the full clause list
/// (privates, unknown clauses) and warns about what the runtime ignores.
pub(crate) fn parse_omp_parallel_for(text: &str) -> Option<OmpSchedule> {
    machine::parse_omp_parallel_for_clauses(text).map(|c| c.schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfront::parser::parse;

    fn run_src(src: &str) -> RunResult {
        run_src_with(src, InterpOptions::default())
    }

    fn run_src_with(src: &str, opts: InterpOptions) -> RunResult {
        let r = parse(src);
        assert!(!r.diags.has_errors(), "{}", r.diags.render_all(src));
        Program::new(&r.unit).run(opts).expect("runs")
    }

    #[test]
    fn returns_exit_code() {
        assert_eq!(run_src("int main() { return 42; }").exit_code, 42);
        assert_eq!(run_src("int main() { return 40 + 2; }").exit_code, 42);
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let r = run_src(
            "int main() {\n\
                 int acc = 0;\n\
                 for (int i = 1; i <= 10; i++) acc += i;\n\
                 if (acc == 55) return 1; else return 0;\n\
             }",
        );
        assert_eq!(r.exit_code, 1);
    }

    #[test]
    fn while_and_do_while() {
        let r = run_src(
            "int main() {\n\
                 int i = 0, n = 0;\n\
                 while (i < 5) { i++; n += 2; }\n\
                 do { n--; } while (n > 7);\n\
                 return n;\n\
             }",
        );
        assert_eq!(r.exit_code, 7);
    }

    #[test]
    fn function_calls_and_recursion() {
        let r = run_src(
            "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }\n\
             int main() { return fib(10); }",
        );
        assert_eq!(r.exit_code, 55);
    }

    #[test]
    fn arrays_and_pointers() {
        let r = run_src(
            "int main() {\n\
                 int a[10];\n\
                 for (int i = 0; i < 10; i++) a[i] = i * i;\n\
                 int* p = a;\n\
                 return p[3] + *(p + 4);\n\
             }",
        );
        assert_eq!(r.exit_code, 9 + 16);
    }

    #[test]
    fn two_dim_arrays() {
        let r = run_src(
            "int main() {\n\
                 int g[4][4];\n\
                 for (int i = 0; i < 4; i++)\n\
                     for (int j = 0; j < 4; j++)\n\
                         g[i][j] = i * 10 + j;\n\
                 return g[2][3];\n\
             }",
        );
        assert_eq!(r.exit_code, 23);
    }

    #[test]
    fn malloc_free_round_trip() {
        let r = run_src(
            "int main() {\n\
                 int* buf = (int*) malloc(8 * sizeof(int));\n\
                 for (int i = 0; i < 8; i++) buf[i] = i + 1;\n\
                 int total = 0;\n\
                 for (int i = 0; i < 8; i++) total += buf[i];\n\
                 free(buf);\n\
                 return total;\n\
             }",
        );
        assert_eq!(r.exit_code, 36);
    }

    #[test]
    fn float_math_and_builtins() {
        let r = run_src(
            "int main() {\n\
                 float x = 2.0f;\n\
                 float y = sqrtf(x * x * 4.0f);\n\
                 if (y > 3.9f && y < 4.1f) return 1;\n\
                 return 0;\n\
             }",
        );
        assert_eq!(r.exit_code, 1);
    }

    #[test]
    fn globals_and_matrix_of_pointers() {
        let r = run_src(
            "float** A;\n\
             int main() {\n\
                 A = (float**) malloc(4 * sizeof(float*));\n\
                 for (int i = 0; i < 4; i++) {\n\
                     A[i] = (float*) malloc(4 * sizeof(float));\n\
                     for (int j = 0; j < 4; j++) A[i][j] = i + j;\n\
                 }\n\
                 return (int) A[2][3];\n\
             }",
        );
        assert_eq!(r.exit_code, 5);
    }

    #[test]
    fn printf_output_captured() {
        let r = run_src("int main() { printf(\"v=%d %.1f\\n\", 3, 2.5); return 0; }");
        assert_eq!(r.output, "v=3 2.5\n");
    }

    #[test]
    fn struct_fields() {
        let r = run_src(
            "struct point { int x; int y; };\n\
             int main() {\n\
                 struct point p;\n\
                 p.x = 3;\n\
                 p.y = 4;\n\
                 return p.x * p.x + p.y * p.y;\n\
             }",
        );
        assert_eq!(r.exit_code, 25);
    }

    #[test]
    fn ternary_and_logical_short_circuit() {
        let r = run_src(
            "int div0() { return 1 / 0; }\n\
             int main() {\n\
                 int x = 0;\n\
                 int safe = (x != 0) && div0();\n\
                 return safe == 0 ? 7 : 8;\n\
             }",
        );
        assert_eq!(r.exit_code, 7);
    }

    #[test]
    fn division_by_zero_is_runtime_error() {
        let r = parse("int main() { int z = 0; return 1 / z; }");
        let err = Program::new(&r.unit).run(InterpOptions::default());
        assert!(err.is_err());
    }

    #[test]
    fn step_limit_stops_infinite_loops() {
        let r = parse("int main() { while (1) ; return 0; }");
        let err = Program::new(&r.unit).run(InterpOptions {
            max_steps: 10_000,
            ..InterpOptions::default()
        });
        assert!(err.is_err());
    }

    #[test]
    fn parallel_for_executes_and_matches_sequential() {
        let src = "\
int main() {
    float* out = (float*) malloc(256 * sizeof(float));
#pragma omp parallel for
    for (int i = 0; i < 256; i++)
        out[i] = i * 2;
    int total = 0;
    for (int i = 0; i < 256; i++) total += (int) out[i];
    return total > 65535 ? 65535 : total % 256;
}
";
        let seq = run_src_with(
            src,
            InterpOptions {
                threads: 1,
                ..Default::default()
            },
        );
        let par = run_src_with(
            src,
            InterpOptions {
                threads: 8,
                ..Default::default()
            },
        );
        assert_eq!(seq.exit_code, par.exit_code);
    }

    #[test]
    fn parallel_for_with_dynamic_schedule() {
        let src = "\
int main() {
    int* out = (int*) malloc(100 * sizeof(int));
#pragma omp parallel for private(x) schedule(dynamic,1)
    for (int i = 0; i < 100; i++)
        out[i] = i;
    int acc = 0;
    for (int i = 0; i < 100; i++) acc += out[i];
    return acc == 4950 ? 1 : 0;
}
";
        let r = run_src_with(
            src,
            InterpOptions {
                threads: 16,
                ..Default::default()
            },
        );
        assert_eq!(r.exit_code, 1);
    }

    #[test]
    fn race_check_accepts_disjoint_loop() {
        let src = "\
int main() {
    int* a = (int*) malloc(64 * sizeof(int));
#pragma omp parallel for
    for (int i = 0; i < 64; i++) a[i] = i;
    return a[63];
}
";
        let r = run_src_with(
            src,
            InterpOptions {
                threads: 4,
                race_check: true,
                ..Default::default()
            },
        );
        assert_eq!(r.exit_code, 63);
    }

    #[test]
    fn race_check_rejects_carried_dependence() {
        // a[i] = a[i-1] — the Listing 5 hazard, caught dynamically.
        let src = "\
int main() {
    int* a = (int*) malloc(64 * sizeof(int));
    a[0] = 1;
#pragma omp parallel for
    for (int i = 1; i < 64; i++) a[i] = a[i - 1] + 1;
    return a[63];
}
";
        let r = parse(src);
        let err = Program::new(&r.unit).run(InterpOptions {
            threads: 4,
            race_check: true,
            ..Default::default()
        });
        assert!(err.is_err(), "race must be detected");
        assert!(err.unwrap_err().message.contains("race"));
    }

    #[test]
    fn counters_track_flops_and_calls() {
        let r = run_src(
            "float mult(float a, float b) { return a * b; }\n\
             int main() {\n\
                 float acc = 0.0f;\n\
                 for (int i = 0; i < 100; i++) acc += mult(i, 2.0f);\n\
                 return 0;\n\
             }",
        );
        // 100 multiplications + 100 additions (+ ~conversions).
        assert!(r.counters.flops >= 200, "{:?}", r.counters);
        // main + 100 × mult.
        assert!(r.counters.calls >= 101, "{:?}", r.counters);
    }

    #[test]
    fn pc_helper_definitions_in_c_shadow_builtins() {
        let src = "\
int __pc_max(int a, int b) { return a > b ? a : b; }
int main() { return __pc_max(3, 9); }
";
        assert_eq!(run_src(src).exit_code, 9);
    }

    #[test]
    fn array_initializer_lists() {
        let r = run_src("int main() { int a[3] = {5, 6, 7}; return a[0] + a[2]; }");
        assert_eq!(r.exit_code, 12);
    }

    #[test]
    fn parse_omp_pragma_variants() {
        assert_eq!(
            parse_omp_parallel_for("pragma omp parallel for private(t2)"),
            Some(OmpSchedule::Static)
        );
        assert_eq!(
            parse_omp_parallel_for("pragma omp parallel for private (x) schedule(dynamic,1)"),
            Some(OmpSchedule::Dynamic(1))
        );
        assert_eq!(
            parse_omp_parallel_for("pragma omp parallel for schedule(static)"),
            Some(OmpSchedule::Static)
        );
        assert_eq!(
            parse_omp_parallel_for("pragma omp parallel for schedule(static, 4)"),
            Some(OmpSchedule::StaticChunk(4))
        );
        assert_eq!(parse_omp_parallel_for("pragma omp simd"), None);
        assert_eq!(parse_omp_parallel_for("pragma scop"), None);
    }
}

#[cfg(test)]
mod control_flow_tests {
    use super::*;
    use cfront::parser::parse;

    fn run_src(src: &str) -> RunResult {
        let r = parse(src);
        assert!(!r.diags.has_errors(), "{}", r.diags.render_all(src));
        Program::new(&r.unit)
            .run(InterpOptions::default())
            .expect("runs")
    }

    #[test]
    fn continue_still_executes_loop_step() {
        // If `continue` skipped the step, this would loop forever (caught
        // by the step limit) or return the wrong count.
        let r = run_src(
            "int main() {\n\
                 int evens = 0;\n\
                 for (int i = 0; i < 10; i++) {\n\
                     if (i % 2 == 1) continue;\n\
                     evens++;\n\
                 }\n\
                 return evens;\n\
             }",
        );
        assert_eq!(r.exit_code, 5);
    }

    #[test]
    fn break_exits_only_innermost_loop() {
        let r = run_src(
            "int main() {\n\
                 int n = 0;\n\
                 for (int i = 0; i < 4; i++) {\n\
                     for (int j = 0; j < 100; j++) {\n\
                         if (j == 3) break;\n\
                         n++;\n\
                     }\n\
                 }\n\
                 return n;\n\
             }",
        );
        assert_eq!(r.exit_code, 12);
    }

    #[test]
    fn arrow_access_through_malloced_struct() {
        let r = run_src(
            "struct node { int value; int weight; };\n\
             int main() {\n\
                 struct node* n = (struct node*) malloc(2 * sizeof(int));\n\
                 n->value = 11;\n\
                 n->weight = 31;\n\
                 return n->value + n->weight;\n\
             }",
        );
        assert_eq!(r.exit_code, 42);
    }

    #[test]
    fn pointer_comparisons() {
        let r = run_src(
            "int main() {\n\
                 int a[4];\n\
                 int* p = a;\n\
                 int* q = a + 2;\n\
                 int same = (p == p);\n\
                 int diff = (p != q);\n\
                 int dist = q - p;\n\
                 return same * 100 + diff * 10 + dist;\n\
             }",
        );
        assert_eq!(r.exit_code, 112);
    }

    #[test]
    fn compound_assignment_operators() {
        let r = run_src(
            "int main() {\n\
                 int x = 7;\n\
                 x += 3; x -= 2; x *= 4; x /= 3; x %= 7;\n\
                 int y = 1;\n\
                 y <<= 4; y >>= 1; y |= 2; y &= 14; y ^= 1;\n\
                 return x * 100 + y;\n\
             }",
        );
        // x: 7+3=10, -2=8, *4=32, /3=10, %7=3. y: 16, 8, 10, 10, 11.
        assert_eq!(r.exit_code, 311);
    }

    #[test]
    fn ternary_nested_in_subscript() {
        let r = run_src(
            "int main() {\n\
                 int a[3] = {10, 20, 30};\n\
                 int k = 2;\n\
                 return a[k > 1 ? 2 : 0] - a[0];\n\
             }",
        );
        assert_eq!(r.exit_code, 20);
    }

    #[test]
    fn pre_vs_post_increment_values() {
        let r = run_src(
            "int main() {\n\
                 int i = 5;\n\
                 int a = i++;\n\
                 int b = ++i;\n\
                 return a * 10 + b; // 5*10 + 7\n\
             }",
        );
        assert_eq!(r.exit_code, 57);
    }

    #[test]
    fn char_and_string_literals() {
        let r = run_src(
            "int main() {\n\
                 char c = 'A';\n\
                 printf(\"%c%c\\n\", c, c + 1);\n\
                 return c;\n\
             }",
        );
        assert_eq!(r.exit_code, 65);
        assert_eq!(r.output, "AB\n");
    }

    #[test]
    fn global_initializers_evaluate_in_order() {
        let r = run_src(
            "int base = 10;\n\
             int scaled = 0;\n\
             int main() { scaled = base * 4; return scaled + base; }",
        );
        assert_eq!(r.exit_code, 50);
    }

    #[test]
    fn negative_modulo_matches_c_semantics() {
        let r = run_src("int main() { return (-7 % 3) + 10; }");
        // C: -7 % 3 == -1 (truncated division).
        assert_eq!(r.exit_code, 9);
    }

    /// Regression: two structs sharing a member name must not alias
    /// offsets. `s1.w` sits at offset 1, `s2.w` at offset 3 — the old
    /// name-keyed `field_offsets` map collapsed them to one entry.
    #[test]
    fn same_field_name_in_two_structs_does_not_alias() {
        let src = "\
struct s1 { int v; int w; };
struct s2 { int pad[3]; int w; };
int main() {
    struct s1 p;
    struct s2 q;
    p.v = 5;
    p.w = 7;
    q.w = 11;
    return p.v * 100 + p.w * 10 + q.w;
}
";
        let parsed = parse(src);
        assert!(!parsed.diags.has_errors());
        let prog = Program::new(&parsed.unit);
        // Layouts are keyed by (struct, field).
        assert_eq!(prog.field_offset("s1", "w"), Some((1, false)));
        assert_eq!(prog.field_offset("s2", "w"), Some((3, false)));
        assert_eq!(prog.field_offset("s2", "pad"), Some((0, true)));
        // Both engines compute through the non-aliased offsets.
        let resolved = prog.run(InterpOptions::default()).expect("resolved runs");
        let legacy = prog
            .run_legacy(InterpOptions::default())
            .expect("legacy runs");
        assert_eq!(resolved.exit_code, 5 * 100 + 7 * 10 + 11);
        assert_eq!(legacy.exit_code, resolved.exit_code);
    }

    /// The pointer-to-struct path (`->`) resolves through the same
    /// `(struct, field)` keying.
    #[test]
    fn arrow_access_disambiguates_struct_types() {
        let src = "\
struct a { int x; int y; };
struct b { int fill[5]; int y; };
int main() {
    struct a* pa = (struct a*) malloc(2 * sizeof(int));
    struct b* pb = (struct b*) malloc(6 * sizeof(int));
    pa->y = 21;
    pb->y = 2;
    return pa->y * pb->y;
}
";
        let parsed = parse(src);
        let prog = Program::new(&parsed.unit);
        let resolved = prog.run(InterpOptions::default()).expect("resolved");
        let legacy = prog.run_legacy(InterpOptions::default()).expect("legacy");
        assert_eq!(resolved.exit_code, 42);
        assert_eq!(legacy.exit_code, 42);
    }
}
