//! Trace sessions and Chrome trace-event export over
//! [`machine::omprt::instrument`].
//!
//! # Hot-path discipline
//!
//! Probe sites pay **one relaxed atomic load and one predictable branch**
//! when tracing is off — the same cost profile as the interpreter's
//! `fuel_local == 0` check, and nothing else: no clock read, no lock, no
//! allocation. When tracing is on, events land in **per-worker buffers**
//! (each thread appends to its own `Vec` behind an uncontended lock, the
//! Tally-shard discipline) and are merged only at joins and session end —
//! never on the dispatch path. See the [`instrument`] module docs for the
//! mechanism.
//!
//! # Sessions
//!
//! A [`TraceSession`] brackets one traced run: `start()` resets every
//! buffer, histogram and gauge and flips the process-wide switch;
//! `finish()` flips it back and drains the merged event stream. Sessions
//! are serialized on a global lock (the switch, buffers and metrics are
//! process-global), so concurrent tests cannot interleave their events.
//!
//! # Export format
//!
//! [`chrome_trace_json`] renders the drained events in Chrome
//! trace-event format — an object with a `traceEvents` array of
//! `B`/`E`/`i` phase records (`ts` in microseconds, one `pid`, the
//! instrumentation layer's stable thread ids as `tid`) — loadable in
//! `chrome://tracing` and Perfetto. [`validate_chrome_trace`] is the
//! structural checker the tests and `purec trace-check` use: every `B`
//! must close with a matching `E` on the same `tid` (LIFO nesting) and
//! timestamps must be non-decreasing per `tid`.

pub use machine::omprt::instrument;

use machine::omprt::instrument::{Event, EventKind, MetricsSnapshot};
use parking_lot::{Mutex, MutexGuard};
use serde_json::Value;
use std::collections::BTreeMap;

/// Serializes trace sessions (the underlying switch/buffers/metrics are
/// process-global).
static SESSION_LOCK: Mutex<()> = Mutex::new(());

/// One tracing session: RAII over the process-wide instrumentation
/// switch. Dropping the session (or calling [`TraceSession::finish`])
/// always flips the switch back off.
pub struct TraceSession {
    _guard: MutexGuard<'static, ()>,
}

/// Everything a finished session captured.
pub struct TraceData {
    /// Merged event stream, sorted by timestamp.
    pub events: Vec<Event>,
    /// Histograms and gauges accumulated during the session.
    pub metrics: MetricsSnapshot,
    /// Events discarded because a per-thread buffer overflowed.
    pub dropped: u64,
}

impl TraceSession {
    /// Begin a session: blocks until no other session is live, clears
    /// all buffers and metrics, then enables every probe site.
    pub fn start() -> TraceSession {
        let guard = SESSION_LOCK.lock();
        // Pin the trace epoch before enabling, so no probe can ever
        // observe a zero timestamp.
        let _ = instrument::now_ns();
        instrument::clear_events();
        instrument::reset_metrics();
        instrument::set_enabled(true);
        TraceSession { _guard: guard }
    }

    /// End the session and drain everything it captured.
    pub fn finish(self) -> TraceData {
        instrument::set_enabled(false);
        TraceData {
            events: instrument::drain_events(),
            metrics: instrument::metrics_snapshot(),
            dropped: instrument::dropped_events(),
        }
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        // Runs after a normal `finish` too (double-disable is harmless);
        // what matters is that a session abandoned on an unwind path
        // still switches the probes off.
        instrument::set_enabled(false);
    }
}

/// Render a session's events as Chrome trace-event JSON: an object with
/// a `traceEvents` array (`ph` ∈ `B`/`E`/`i`, `ts` in microseconds,
/// `pid` 1, the instrumentation thread id as `tid`), loadable in
/// `chrome://tracing` / Perfetto.
pub fn chrome_trace_json(data: &TraceData) -> String {
    let mut events = Vec::with_capacity(data.events.len());
    for e in &data.events {
        let ph = match e.kind {
            EventKind::Begin => "B",
            EventKind::End => "E",
            EventKind::Instant => "i",
        };
        let mut fields = vec![
            ("name".to_string(), Value::Str(e.name.to_string())),
            ("cat".to_string(), Value::Str(category(e.name).to_string())),
            ("ph".to_string(), Value::Str(ph.to_string())),
            ("ts".to_string(), Value::Num(e.ts_ns as f64 / 1000.0)),
            ("pid".to_string(), Value::Num(1.0)),
            ("tid".to_string(), Value::Num(e.tid as f64)),
        ];
        if e.kind == EventKind::Instant {
            // Instant scope: thread-local.
            fields.push(("s".to_string(), Value::Str("t".to_string())));
        }
        if e.kind != EventKind::End {
            fields.push((
                "args".to_string(),
                Value::Object(vec![("arg".to_string(), Value::Num(e.arg as f64))]),
            ));
        }
        events.push(Value::Object(fields));
    }
    let root = Value::Object(vec![
        ("traceEvents".to_string(), Value::Array(events)),
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
        (
            "otherData".to_string(),
            Value::Object(vec![(
                "droppedEvents".to_string(),
                Value::Num(data.dropped as f64),
            )]),
        ),
    ]);
    serde_json::to_string(&root).expect("trace JSON renders")
}

/// Perfetto category for a probe name (the prefix before the first dot).
fn category(name: &str) -> &str {
    name.split('.').next().unwrap_or(name)
}

/// Structural summary returned by a successful [`validate_chrome_trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStats {
    /// Total records in `traceEvents`.
    pub events: usize,
    /// Matched `B`/`E` pairs.
    pub spans: usize,
    /// Instant records.
    pub instants: usize,
    /// Distinct event names, sorted.
    pub names: Vec<String>,
}

impl TraceStats {
    /// Whether any record carries this exact name.
    pub fn has_name(&self, name: &str) -> bool {
        self.names.iter().any(|n| n == name)
    }
}

/// Structurally validate Chrome trace-event JSON: parseable, every `B`
/// closed by a matching same-name `E` on the same `tid` (LIFO nesting,
/// none left open), and `ts` non-decreasing per `tid`.
pub fn validate_chrome_trace(json: &str) -> Result<TraceStats, String> {
    let root: Value = serde_json::from_str(json).map_err(|e| format!("unparseable: {e}"))?;
    let events = root
        .as_object()
        .and_then(|fields| {
            fields
                .iter()
                .find(|(k, _)| k == "traceEvents")
                .map(|(_, v)| v)
        })
        .and_then(|v| v.as_array())
        .ok_or("missing traceEvents array")?;

    let mut stacks: BTreeMap<i64, Vec<String>> = BTreeMap::new();
    let mut last_ts: BTreeMap<i64, f64> = BTreeMap::new();
    let mut spans = 0usize;
    let mut instants = 0usize;
    let mut names: Vec<String> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let obj = ev.as_object().ok_or(format!("event {i}: not an object"))?;
        let field = |key: &str| obj.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let name = field("name")
            .and_then(|v| v.as_str())
            .ok_or(format!("event {i}: missing name"))?
            .to_string();
        let ph = field("ph")
            .and_then(|v| v.as_str())
            .ok_or(format!("event {i}: missing ph"))?
            .to_string();
        let ts = field("ts")
            .and_then(|v| v.as_f64())
            .ok_or(format!("event {i}: missing ts"))?;
        let tid = field("tid")
            .and_then(|v| v.as_f64())
            .ok_or(format!("event {i}: missing tid"))? as i64;
        if let Some(prev) = last_ts.get(&tid) {
            if ts < *prev {
                return Err(format!(
                    "event {i} ({name}): ts {ts} < {prev} on tid {tid} — not monotonic"
                ));
            }
        }
        last_ts.insert(tid, ts);
        if !names.contains(&name) {
            names.push(name.clone());
        }
        match ph.as_str() {
            "B" => stacks.entry(tid).or_default().push(name),
            "E" => {
                let open = stacks
                    .entry(tid)
                    .or_default()
                    .pop()
                    .ok_or(format!("event {i} ({name}): E with no open B on tid {tid}"))?;
                if open != name {
                    return Err(format!(
                        "event {i}: E({name}) closes B({open}) on tid {tid} — misnested"
                    ));
                }
                spans += 1;
            }
            "i" => instants += 1,
            other => return Err(format!("event {i} ({name}): unknown phase {other:?}")),
        }
    }
    for (tid, stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!("tid {tid}: span {open:?} never closed"));
        }
    }
    names.sort();
    Ok(TraceStats {
        events: events.len(),
        spans,
        instants,
        names,
    })
}

/// Render a [`MetricsSnapshot`] as a JSON value: histograms as
/// `{count, p50, p99, max, buckets: [[bit_length, count], …]}` (bucket
/// upper bound `2^bit_length − 1` in the series' unit), gauges as
/// `{samples, mean, max}`.
pub fn metrics_json(m: &MetricsSnapshot) -> Value {
    let hists: Vec<(String, Value)> = m
        .hists
        .iter()
        .map(|(name, h)| {
            let buckets: Vec<Value> = h
                .nonzero()
                .into_iter()
                .map(|(bits, count)| {
                    Value::Array(vec![Value::Num(bits as f64), Value::Num(count as f64)])
                })
                .collect();
            (
                name.to_string(),
                Value::Object(vec![
                    ("count".to_string(), Value::Num(h.count() as f64)),
                    ("p50".to_string(), Value::Num(h.quantile_upper(0.5) as f64)),
                    ("p99".to_string(), Value::Num(h.quantile_upper(0.99) as f64)),
                    ("buckets".to_string(), Value::Array(buckets)),
                ]),
            )
        })
        .collect();
    let gauges: Vec<(String, Value)> = m
        .gauges
        .iter()
        .map(|(name, g)| {
            (
                name.to_string(),
                Value::Object(vec![
                    ("samples".to_string(), Value::Num(g.count as f64)),
                    ("mean".to_string(), Value::Num(g.mean())),
                    ("max".to_string(), Value::Num(g.max as f64)),
                ]),
            )
        })
        .collect();
    Value::Object(vec![
        ("histograms".to_string(), Value::Object(hists)),
        ("gauges".to_string(), Value::Object(gauges)),
    ])
}

/// Render a [`crate::CounterSnapshot`] as a JSON object with one field
/// per counter — the machine-readable face of `--stats`, kept exhaustive
/// by construction (a new counter that misses this list is a compile
/// error only if it is also added here; the round-trip test pins the
/// field count to [`crate::CounterSnapshot`]'s).
pub fn counters_json(c: &crate::CounterSnapshot) -> Value {
    let n = |v: u64| Value::Num(v as f64);
    Value::Object(vec![
        ("flops".to_string(), n(c.flops)),
        ("int_ops".to_string(), n(c.int_ops)),
        ("loads".to_string(), n(c.loads)),
        ("stores".to_string(), n(c.stores)),
        ("calls".to_string(), n(c.calls)),
        ("branches".to_string(), n(c.branches)),
        ("memo_hits".to_string(), n(c.memo_hits)),
        ("memo_misses".to_string(), n(c.memo_misses)),
        ("memo_evictions".to_string(), n(c.memo_evictions)),
        ("futures_spawned".to_string(), n(c.futures_spawned)),
        ("futures_inlined".to_string(), n(c.futures_inlined)),
        ("futures_helped".to_string(), n(c.futures_helped)),
        ("tasks_stolen".to_string(), n(c.tasks_stolen)),
        ("local_pushes".to_string(), n(c.local_pushes)),
        ("insns_folded".to_string(), n(c.insns_folded)),
        ("insns_fused".to_string(), n(c.insns_fused)),
        ("icache_hits".to_string(), n(c.icache_hits)),
        ("race_static_skips".to_string(), n(c.race_static_skips)),
        ("race_dyn_iters".to_string(), n(c.race_dyn_iters)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_captures_and_exports_well_formed_json() {
        let session = TraceSession::start();
        {
            let _outer = instrument::span("test.region", 4);
            instrument::instant("test.point", 9);
            let _inner = instrument::span("test.chunk", 0);
        }
        let data = session.finish();
        assert!(data.events.len() >= 5);
        let json = chrome_trace_json(&data);
        let stats = validate_chrome_trace(&json).expect("well-formed");
        assert_eq!(stats.events, data.events.len());
        assert!(stats.spans >= 2);
        assert!(stats.instants >= 1);
        assert!(stats.has_name("test.region"));
        assert!(stats.has_name("test.point"));
    }

    #[test]
    fn sessions_reset_state_between_runs() {
        let session = TraceSession::start();
        instrument::instant("test.stale", 1);
        let first = session.finish();
        assert!(first.events.iter().any(|e| e.name == "test.stale"));
        let session = TraceSession::start();
        let second = session.finish();
        assert!(
            !second.events.iter().any(|e| e.name == "test.stale"),
            "a new session must not inherit the previous session's events"
        );
    }

    #[test]
    fn dropped_session_switches_probes_off() {
        {
            let _session = TraceSession::start();
            assert!(instrument::enabled());
        }
        assert!(!instrument::enabled(), "drop must disable instrumentation");
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        let no_e = r#"{"traceEvents":[{"name":"a","ph":"B","ts":1,"pid":1,"tid":0}]}"#;
        assert!(validate_chrome_trace(no_e)
            .unwrap_err()
            .contains("never closed"));
        let misnested = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1,"pid":1,"tid":0},
            {"name":"b","ph":"B","ts":2,"pid":1,"tid":0},
            {"name":"a","ph":"E","ts":3,"pid":1,"tid":0},
            {"name":"b","ph":"E","ts":4,"pid":1,"tid":0}]}"#;
        assert!(validate_chrome_trace(misnested)
            .unwrap_err()
            .contains("misnested"));
        let backwards = r#"{"traceEvents":[
            {"name":"a","ph":"i","ts":5,"pid":1,"tid":0},
            {"name":"b","ph":"i","ts":4,"pid":1,"tid":0}]}"#;
        assert!(validate_chrome_trace(backwards)
            .unwrap_err()
            .contains("monotonic"));
        let stray_e = r#"{"traceEvents":[{"name":"a","ph":"E","ts":1,"pid":1,"tid":0}]}"#;
        assert!(validate_chrome_trace(stray_e)
            .unwrap_err()
            .contains("no open B"));
        // Same names on different tids are independent stacks.
        let cross_tid = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1,"pid":1,"tid":0},
            {"name":"a","ph":"B","ts":2,"pid":1,"tid":1},
            {"name":"a","ph":"E","ts":3,"pid":1,"tid":1},
            {"name":"a","ph":"E","ts":4,"pid":1,"tid":0}]}"#;
        assert_eq!(validate_chrome_trace(cross_tid).unwrap().spans, 2);
    }

    #[test]
    fn counters_json_is_exhaustive() {
        let c = crate::CounterSnapshot::default();
        let v = counters_json(&c);
        let fields = v.as_object().unwrap().len();
        // One JSON field per CounterSnapshot counter; bump both together.
        assert_eq!(fields, 19, "counters_json drifted from CounterSnapshot");
    }
}
