//! Loop code generation from a transformed iteration space — the ClooG
//! stage of the PluTo stack, plus the pragma insertion the paper's chain
//! relies on (`#pragma omp parallel for private(...)`, Listing 8).
//!
//! Bounds are derived by successive Fourier–Motzkin projection of the
//! t-space domain: for each new iterator (outermost first) the constraints
//! involving it — after inner iterators are eliminated — become `max(...)`
//! lower and `min(...)` upper bound expressions. Non-unit coefficients
//! (tile loops) emit `__pc_floord`/`__pc_ceild` helper calls, mirroring
//! ClooG's `floord`/`ceild`.

use crate::affine::AffineExpr;
use crate::fourier_motzkin::eliminate;
use crate::model::Scop;
use crate::schedule::Transform;
use crate::set::{Constraint, ConstraintSystem, Rel};
use cfront::ast::*;
use cfront::diag::{Code, Diagnostics};
use cfront::span::Span;
use cfront::visit::visit_exprs_mut;
use std::collections::HashMap;

/// Codegen options.
#[derive(Debug, Clone, Copy)]
pub struct CodegenOptions {
    /// Rectangular tile size for the permutable band (requires full band).
    pub tile: Option<i64>,
    /// SICA mode: mark the innermost parallel loop for vectorization.
    pub sica: bool,
    /// Emit `#pragma omp parallel for` on the outermost parallel loop.
    pub omp: bool,
}

impl Default for CodegenOptions {
    fn default() -> Self {
        CodegenOptions {
            tile: None,
            sica: false,
            omp: true,
        }
    }
}

/// Generated code plus the iterator adaptation map for call reinsertion.
#[derive(Debug)]
pub struct Generated {
    /// Replacement statements (pragmas + the transformed nest).
    pub stmts: Vec<Stmt>,
    /// Original iterator name → expression over the new iterators.
    pub iter_map: HashMap<String, Expr>,
    /// Did we actually parallelize (emit an omp pragma)?
    pub parallelized: bool,
    /// Was the nest tiled?
    pub tiled: bool,
    /// Did codegen need the `__pc_floord`/`__pc_ceild`/`__pc_max`/`__pc_min`
    /// helpers? The driver injects their C definitions when true.
    pub needs_helpers: bool,
}

/// Names of the generated iterators, PluTo-style (`t1`, `t2`, …; tile
/// iterators get `t1t`, `t2t`, …).
fn point_iter(k: usize) -> String {
    format!("t{}", k + 1)
}

fn tile_iter(k: usize) -> String {
    format!("t{}t", k + 1)
}

/// Generate the transformed loop nest.
pub fn generate(
    scop: &Scop,
    transform: &Transform,
    opts: CodegenOptions,
) -> Result<Generated, Diagnostics> {
    let n = scop.depth();
    let mut diags = Diagnostics::new();
    if transform.depth() != n {
        diags.error(
            Code::PolyUnsupported,
            Span::DUMMY,
            "transform rank does not match nest depth",
        );
        return Err(diags);
    }

    let Some(inverse) = transform.inverse() else {
        diags.error(
            Code::PolyUnsupported,
            Span::DUMMY,
            "transformation matrix is not unimodular",
        );
        return Err(diags);
    };

    // old_i = Σ inverse[i][k] · t_k
    let mut iter_map: HashMap<String, Expr> = HashMap::new();
    let mut iter_affine: HashMap<String, AffineExpr> = HashMap::new();
    for (i, dim) in scop.loops.iter().enumerate() {
        let mut e = AffineExpr::constant(0);
        for (k, &coeff) in inverse[i].iter().enumerate().take(n) {
            e = e.add(&AffineExpr::term(point_iter(k), coeff));
        }
        iter_map.insert(dim.name.clone(), e.to_ast());
        iter_affine.insert(dim.name.clone(), e);
    }

    // Domain constraints in t-space.
    let mut tsys = ConstraintSystem::new();
    for c in &scop.domain().constraints {
        let mut e = AffineExpr::constant(c.expr.konst);
        for (name, &coeff) in &c.expr.coeffs {
            match iter_affine.get(name) {
                Some(sub) => e = e.add(&sub.scale(coeff)),
                None => e = e.add(&AffineExpr::term(name.clone(), coeff)), // parameter
            }
        }
        tsys.push(Constraint {
            expr: e,
            rel: c.rel,
        });
    }

    // Tiling: only across a full permutable band.
    let tile = match opts.tile {
        Some(b) if b >= 2 && transform.band == n && n >= 1 => Some(b),
        _ => None,
    };
    let tiled = tile.is_some();

    // Loop order outermost → innermost.
    let mut order: Vec<String> = Vec::new();
    if let Some(b) = tile {
        for k in 0..n {
            order.push(tile_iter(k));
        }
        for k in 0..n {
            order.push(point_iter(k));
        }
        // Tile constraints: b·Tk <= tk <= b·Tk + b - 1.
        for k in 0..n {
            let t = AffineExpr::var(point_iter(k));
            let bt = AffineExpr::term(tile_iter(k), b);
            tsys.push(Constraint::ge(&t, &bt));
            let mut hi = bt;
            hi.konst += b - 1;
            tsys.push(Constraint::le(&t, &hi));
        }
    } else {
        for k in 0..n {
            order.push(point_iter(k));
        }
    }

    // Successive projection: bounds for order[d] come from the system with
    // all deeper iterators eliminated.
    let mut projected: Vec<ConstraintSystem> = vec![ConstraintSystem::new(); order.len()];
    {
        let mut sys = tsys.clone();
        for d in (0..order.len()).rev() {
            projected[d] = sys.clone();
            sys = match eliminate(&sys, &order[d]) {
                Ok(next) => next,
                Err(reason) => {
                    diags.error(Code::PolyUnsupported, Span::DUMMY, reason);
                    return Err(diags);
                }
            };
        }
    }

    let mut needs_helpers = false;

    // Build bound expressions per level.
    struct Level {
        var: String,
        lb: Expr,
        ub: Expr,
    }
    let mut levels: Vec<Level> = Vec::new();
    for (d, var) in order.iter().enumerate() {
        // Only constraints whose deepest variable is `var`.
        let deeper: Vec<&String> = order[d + 1..].iter().collect();
        let mut lbs: Vec<Expr> = Vec::new();
        let mut ubs: Vec<Expr> = Vec::new();
        for c in &projected[d].constraints {
            let a = c.expr.coeff(var);
            if a == 0 || deeper.iter().any(|dv| c.expr.coeff(dv) != 0) {
                continue;
            }
            let mut rest = c.expr.clone();
            rest.coeffs.remove(var);
            match c.rel {
                Rel::Ge => {
                    if a > 0 {
                        // a·v + rest >= 0  ⇒  v >= ceild(-rest, a)
                        lbs.push(div_expr(rest.neg(), a, true, &mut needs_helpers));
                    } else {
                        // v <= floord(rest, -a)
                        ubs.push(div_expr(rest, -a, false, &mut needs_helpers));
                    }
                }
                Rel::Eq => {
                    lbs.push(div_expr(rest.neg(), a.abs(), true, &mut needs_helpers));
                    ubs.push(div_expr(rest.neg(), a.abs(), false, &mut needs_helpers));
                }
            }
        }
        if lbs.is_empty() || ubs.is_empty() {
            diags.error(
                Code::PolyUnsupported,
                Span::DUMMY,
                format!("could not derive bounds for generated iterator {var}"),
            );
            return Err(diags);
        }
        let lb = fold_minmax(lbs, "__pc_max", &mut needs_helpers);
        let ub = fold_minmax(ubs, "__pc_min", &mut needs_helpers);
        levels.push(Level {
            var: var.clone(),
            lb,
            ub,
        });
    }

    // Innermost body: original statements with renamed iterators.
    let mut body_stmts: Vec<Stmt> = Vec::new();
    for ps in &scop.stmts {
        let mut s = ps.ast.clone();
        visit_exprs_mut(&mut s, &mut |e| {
            if let ExprKind::Ident(name) = &e.kind {
                if let Some(rep) = iter_map.get(name) {
                    let span = e.span;
                    *e = rep.clone();
                    e.span = span;
                }
            }
        });
        body_stmts.push(s);
    }

    // Assemble nest innermost-out.
    let mut current: Stmt = if body_stmts.len() == 1 {
        body_stmts.pop().expect("one statement")
    } else {
        Stmt::new(
            StmtKind::Block(Block {
                stmts: body_stmts,
                span: Span::DUMMY,
            }),
            Span::DUMMY,
        )
    };

    // Which levels are parallel / vectorizable?
    let level_parallel = |lvl: usize| -> bool {
        if tiled {
            // Tile loops first (parallel iff their band dim is parallel),
            // then point loops (parallel within a tile iff dim parallel).
            if lvl < n {
                transform.parallel[lvl]
            } else {
                transform.parallel[lvl - n]
            }
        } else {
            transform.parallel[lvl]
        }
    };
    let omp_level = if opts.omp {
        (0..order.len()).find(|&l| level_parallel(l))
    } else {
        None
    };
    // SICA: innermost parallel level gets a simd pragma.
    let simd_level = if opts.sica {
        (0..order.len())
            .rev()
            .find(|&l| level_parallel(l) && Some(l) != omp_level)
            .or(if omp_level == Some(order.len() - 1) {
                omp_level
            } else {
                None
            })
    } else {
        None
    };

    for (lvl, level) in levels.iter().enumerate().rev() {
        let for_stmt = Stmt::new(
            StmtKind::For {
                init: Box::new(ForInit::Decl(Declaration {
                    storage: vec![],
                    declarators: vec![Declarator {
                        name: level.var.clone(),
                        ty: Type::int(),
                        array_dims: vec![],
                        init: Some(level.lb.clone()),
                        span: Span::DUMMY,
                    }],
                    span: Span::DUMMY,
                })),
                cond: Some(Expr::binary(
                    BinOp::Le,
                    Expr::ident(level.var.clone()),
                    level.ub.clone(),
                )),
                step: Some(Expr::new(
                    ExprKind::Unary(UnOp::PostInc, Box::new(Expr::ident(level.var.clone()))),
                    Span::DUMMY,
                )),
                body: Box::new(current),
            },
            Span::DUMMY,
        );

        // Wrap with pragmas where needed (pragma + loop become a block so
        // they stay adjacent when nested under an outer loop).
        let mut wrapped: Vec<Stmt> = Vec::new();
        if Some(lvl) == simd_level {
            wrapped.push(Stmt::new(
                StmtKind::Pragma("pragma omp simd".to_string()),
                Span::DUMMY,
            ));
        }
        if Some(lvl) == omp_level {
            let privates: Vec<String> = order[lvl + 1..].to_vec();
            let pragma = if privates.is_empty() {
                "pragma omp parallel for".to_string()
            } else {
                format!("pragma omp parallel for private({})", privates.join(", "))
            };
            wrapped.push(Stmt::new(StmtKind::Pragma(pragma), Span::DUMMY));
        }
        if wrapped.is_empty() {
            current = for_stmt;
        } else {
            wrapped.push(for_stmt);
            if lvl == 0 {
                // Top level: return the sequence directly.
                return Ok(Generated {
                    stmts: wrapped,
                    iter_map,
                    parallelized: omp_level.is_some(),
                    tiled,
                    needs_helpers,
                });
            }
            current = Stmt::new(
                StmtKind::Block(Block {
                    stmts: wrapped,
                    span: Span::DUMMY,
                }),
                Span::DUMMY,
            );
        }
    }

    Ok(Generated {
        stmts: vec![current],
        iter_map,
        parallelized: omp_level.is_some(),
        tiled,
        needs_helpers,
    })
}

/// `expr / a` rounded up (`ceil`) or down (`floor`). Unit divisors emit the
/// expression directly; otherwise a `__pc_ceild`/`__pc_floord` helper call.
fn div_expr(e: AffineExpr, a: i64, ceil: bool, needs_helpers: &mut bool) -> Expr {
    debug_assert!(a > 0);
    if a == 1 {
        return e.to_ast();
    }
    *needs_helpers = true;
    let name = if ceil { "__pc_ceild" } else { "__pc_floord" };
    Expr::call(name, vec![e.to_ast(), Expr::int(a)])
}

/// Fold multiple bound expressions with `__pc_max`/`__pc_min`.
fn fold_minmax(mut exprs: Vec<Expr>, helper: &str, needs_helpers: &mut bool) -> Expr {
    // Deduplicate structurally identical bounds.
    let mut uniq: Vec<Expr> = Vec::new();
    for e in exprs.drain(..) {
        if !uniq.contains(&e) {
            uniq.push(e);
        }
    }
    let mut it = uniq.into_iter();
    let first = it.next().expect("at least one bound");
    it.fold(first, |acc, e| {
        *needs_helpers = true;
        Expr::call(helper, vec![acc, e])
    })
}

/// C definitions of the codegen helpers, prepended by the driver when
/// [`Generated::needs_helpers`] is set.
pub const HELPER_DEFS: &str = "\
int __pc_floord(int n, int d) {
    if (n >= 0) return n / d;
    return -((-n + d - 1) / d);
}
int __pc_ceild(int n, int d) {
    if (n >= 0) return (n + d - 1) / d;
    return -((-n) / d);
}
int __pc_max(int a, int b) { return a > b ? a : b; }
int __pc_min(int a, int b) { return a < b ? a : b; }
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::analyze;
    use crate::extract::extract_scop;
    use crate::schedule::compute_schedule;
    use cfront::parser::parse;
    use cfront::printer::print_stmt;

    fn scop_of(src: &str) -> Scop {
        let unit = parse(src).unit;
        let mut found: Option<Stmt> = None;
        for f in unit.functions() {
            if let Some(body) = &f.body {
                for s in &body.stmts {
                    s.walk(&mut |st| {
                        if found.is_none() && matches!(st.kind, StmtKind::For { .. }) {
                            found = Some(st.clone());
                        }
                    });
                }
            }
        }
        extract_scop(&found.expect("for")).expect("scop")
    }

    fn print_all(g: &Generated) -> String {
        g.stmts.iter().map(print_stmt).collect::<Vec<_>>().join("")
    }

    #[test]
    fn matmul_generates_parallel_t1_t2() {
        let scop = scop_of(
            "float** C;\nvoid f() {\n\
             for (int i = 0; i < 4096; i++)\n\
                 for (int j = 0; j < 4096; j++)\n\
                     C[i][j] = tmpConst_dot_0;\n}",
        );
        let deps = analyze(&scop);
        let t = compute_schedule(&scop, &deps);
        let g = generate(&scop, &t, CodegenOptions::default()).expect("codegen");
        let out = print_all(&g);
        assert!(g.parallelized);
        assert!(
            out.contains("#pragma omp parallel for private(t2)"),
            "{out}"
        );
        assert!(out.contains("for (int t1 = 0; t1 <= 4095; t1++)"), "{out}");
        assert!(out.contains("C[t1][t2] = tmpConst_dot_0;"), "{out}");
        // Iterator map points i→t1, j→t2.
        assert_eq!(cfront::printer::print_expr(&g.iter_map["i"]), "t1");
        assert_eq!(cfront::printer::print_expr(&g.iter_map["j"]), "t2");
    }

    #[test]
    fn fig2_skewed_codegen_bounds() {
        let scop = scop_of(
            "void f(float** a) {\n\
             for (int i = 1; i < 64; i++)\n\
                 for (int j = 1; j < 63; j++)\n\
                     a[i][j] = a[i - 1][j] + a[i - 1][j + 1];\n}",
        );
        let deps = analyze(&scop);
        let t = compute_schedule(&scop, &deps);
        assert!(t.skewed);
        let g = generate(&scop, &t, CodegenOptions::default()).expect("codegen");
        let out = print_all(&g);
        // t1 = i ∈ [1,63]; t2 = i + j ∈ [t1+1, t1+62].
        assert!(out.contains("for (int t1 = 1; t1 <= 63; t1++)"), "{out}");
        assert!(out.contains("t1 + 1"), "{out}");
        assert!(out.contains("t1 + 62"), "{out}");
        // Statement indices adapt: i→t1, j→t2−t1.
        assert!(
            out.contains("a[t1][t2 - t1]") || out.contains("a[t1][-t1 + t2]"),
            "{out}"
        );
        // Inner loop is the parallel one (wavefront).
        assert!(out.contains("#pragma omp parallel for"), "{out}");
    }

    #[test]
    fn tiled_matmul_has_four_loops_and_helpers() {
        let scop = scop_of(
            "float** C;\nvoid f() {\n\
             for (int i = 0; i < 4096; i++)\n\
                 for (int j = 0; j < 4096; j++)\n\
                     C[i][j] = tmpConst_dot_0;\n}",
        );
        let deps = analyze(&scop);
        let t = compute_schedule(&scop, &deps);
        let g = generate(
            &scop,
            &t,
            CodegenOptions {
                tile: Some(32),
                sica: false,
                omp: true,
            },
        )
        .expect("codegen");
        assert!(g.tiled);
        assert!(g.needs_helpers);
        let out = print_all(&g);
        assert!(out.contains("t1t"), "{out}");
        assert!(out.contains("t2t"), "{out}");
        // Constant tile bounds fold at compile time (normalize() performs
        // the floord); the point loops keep max/min clamps.
        assert!(
            out.contains("__pc_max") && out.contains("__pc_min"),
            "{out}"
        );
        assert!(out.contains("32 * t1t"), "{out}");
        // Parallel pragma lands on the outermost (tile) loop.
        assert!(
            out.contains("#pragma omp parallel for private(t2t, t1, t2)"),
            "{out}"
        );
    }

    #[test]
    fn sica_adds_simd_pragma() {
        let scop = scop_of(
            "float** C;\nvoid f() {\n\
             for (int i = 0; i < 64; i++)\n\
                 for (int j = 0; j < 64; j++)\n\
                     C[i][j] = tmpConst_dot_0;\n}",
        );
        let deps = analyze(&scop);
        let t = compute_schedule(&scop, &deps);
        let g = generate(
            &scop,
            &t,
            CodegenOptions {
                tile: None,
                sica: true,
                omp: true,
            },
        )
        .expect("codegen");
        let out = print_all(&g);
        assert!(out.contains("#pragma omp simd"), "{out}");
    }

    #[test]
    fn sequential_reduction_gets_no_pragma() {
        let scop = scop_of(
            "void f(float* a) { float res; for (int i = 0; i < 8; i++) res = res + a[i]; }",
        );
        let deps = analyze(&scop);
        let t = compute_schedule(&scop, &deps);
        let g = generate(&scop, &t, CodegenOptions::default()).expect("codegen");
        assert!(!g.parallelized);
        let out = print_all(&g);
        assert!(!out.contains("omp parallel"), "{out}");
        assert!(out.contains("for (int t1 = 0; t1 <= 7; t1++)"), "{out}");
    }

    #[test]
    fn parametric_bounds_survive_codegen() {
        let scop = scop_of("void f(int n, float* a) { for (int i = 0; i < n; i++) a[i] = 0; }");
        let deps = analyze(&scop);
        let t = compute_schedule(&scop, &deps);
        let g = generate(&scop, &t, CodegenOptions::default()).expect("codegen");
        let out = print_all(&g);
        assert!(out.contains("t1 <= n - 1"), "{out}");
    }

    #[test]
    fn generated_code_reparses() {
        let scop = scop_of(
            "float** C;\nvoid f() {\n\
             for (int i = 0; i < 64; i++)\n\
                 for (int j = 0; j < 64; j++)\n\
                     C[i][j] = tmpConst_dot_0;\n}",
        );
        let deps = analyze(&scop);
        let t = compute_schedule(&scop, &deps);
        for tile in [None, Some(16)] {
            let g = generate(
                &scop,
                &t,
                CodegenOptions {
                    tile,
                    sica: true,
                    omp: true,
                },
            )
            .expect("codegen");
            let src = format!("void wrapper() {{\n{}\n}}", print_all(&g));
            let r = parse(&src);
            assert!(
                !r.diags.has_errors(),
                "{}:\n{src}",
                r.diags.render_all(&src)
            );
        }
    }
}

#[cfg(test)]
mod codegen_proptests {
    use super::*;
    use crate::deps::analyze;
    use crate::extract::extract_scop;
    use crate::schedule::compute_schedule;
    use cfront::parser::parse;
    use proptest::prelude::*;

    /// Generated code for a randomly sized 2-D parallel nest must
    /// enumerate exactly the same iteration points as the original
    /// (checked by interpreting both bound structures symbolically via
    /// constant folding — here: counting points with the domain).
    fn scop_for(n: i64, m: i64) -> crate::model::Scop {
        let src = format!(
            "float** C;\nvoid f() {{\n\
             for (int i = 0; i < {n}; i++)\n\
                 for (int j = 0; j < {m}; j++)\n\
                     C[i][j] = tmpConst_k_0;\n}}"
        );
        let unit = parse(&src).unit;
        let mut found: Option<cfront::ast::Stmt> = None;
        for f in unit.functions() {
            if let Some(body) = &f.body {
                for s in &body.stmts {
                    s.walk(&mut |st| {
                        if found.is_none() && matches!(st.kind, cfront::ast::StmtKind::For { .. }) {
                            found = Some(st.clone());
                        }
                    });
                }
            }
        }
        extract_scop(&found.unwrap()).unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn generated_nest_preserves_trip_count(n in 1i64..40, m in 1i64..40, tile in prop::option::of(2i64..16)) {
            let scop = scop_for(n, m);
            let deps = analyze(&scop);
            let t = compute_schedule(&scop, &deps);
            let g = generate(
                &scop,
                &t,
                CodegenOptions { tile, sica: false, omp: true },
            )
            .expect("codegen");
            // The generated code must reparse as valid C.
            let wrapped = format!("void w() {{\n{}\n}}",
                g.stmts.iter().map(cfront::print_stmt).collect::<String>());
            let r = parse(&wrapped);
            prop_assert!(!r.diags.has_errors(), "{}", r.diags.render_all(&wrapped));
            // And the domain's trip count is preserved by the transform
            // (unimodular ⇒ bijection on integer points).
            prop_assert_eq!(scop.constant_trip_count(), Some((n * m) as u64));
        }
    }
}
