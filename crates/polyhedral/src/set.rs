//! Linear constraint systems (the "Z-polyhedra" of the paper's Fig. 2).
//!
//! A [`ConstraintSystem`] is a conjunction of affine constraints
//! (`expr ≥ 0` or `expr = 0`) over named dimensions. Emptiness is decided
//! by Fourier–Motzkin elimination (see [`crate::fourier_motzkin`]); the
//! test is exact over the rationals and *conservative* over the integers
//! (it may report a rationally-feasible/integer-empty system as non-empty,
//! which for dependence analysis errs on the safe side: a spurious
//! dependence can only suppress a transformation, never produce an illegal
//! one). A GCD divisibility test on equalities removes the most common
//! integer-infeasible cases.

use crate::affine::AffineExpr;
use std::collections::BTreeSet;
use std::fmt;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rel {
    /// `expr >= 0`
    Ge,
    /// `expr == 0`
    Eq,
}

/// One affine constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    pub expr: AffineExpr,
    pub rel: Rel,
}

impl Constraint {
    pub fn ge0(expr: AffineExpr) -> Self {
        Constraint { expr, rel: Rel::Ge }
    }

    pub fn eq0(expr: AffineExpr) -> Self {
        Constraint { expr, rel: Rel::Eq }
    }

    /// `a >= b` as `a - b >= 0`.
    pub fn ge(a: &AffineExpr, b: &AffineExpr) -> Self {
        Constraint::ge0(a.sub(b))
    }

    /// `a <= b` as `b - a >= 0`.
    pub fn le(a: &AffineExpr, b: &AffineExpr) -> Self {
        Constraint::ge0(b.sub(a))
    }

    /// `a == b` as `a - b == 0`.
    pub fn eq(a: &AffineExpr, b: &AffineExpr) -> Self {
        Constraint::eq0(a.sub(b))
    }

    /// `a < b` over the integers: `b - a - 1 >= 0`.
    pub fn lt(a: &AffineExpr, b: &AffineExpr) -> Self {
        let mut e = b.sub(a);
        e.konst -= 1;
        Constraint::ge0(e)
    }

    /// `a > b` over the integers: `a - b - 1 >= 0`.
    pub fn gt(a: &AffineExpr, b: &AffineExpr) -> Self {
        let mut e = a.sub(b);
        e.konst -= 1;
        Constraint::ge0(e)
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.rel {
            Rel::Ge => write!(f, "{} >= 0", self.expr),
            Rel::Eq => write!(f, "{} = 0", self.expr),
        }
    }
}

/// Conjunction of constraints.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConstraintSystem {
    pub constraints: Vec<Constraint>,
}

impl ConstraintSystem {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, c: Constraint) {
        self.constraints.push(c);
    }

    pub fn and(mut self, c: Constraint) -> Self {
        self.push(c);
        self
    }

    pub fn extend(&mut self, other: &ConstraintSystem) {
        self.constraints.extend(other.constraints.iter().cloned());
    }

    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// All dimension names mentioned by any constraint.
    pub fn vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for c in &self.constraints {
            for v in c.expr.vars() {
                out.insert(v.to_string());
            }
        }
        out
    }

    /// Decide satisfiability (conservatively, see module docs).
    pub fn is_satisfiable(&self) -> bool {
        crate::fourier_motzkin::satisfiable(self)
    }

    /// Rename every dimension.
    pub fn rename(&self, f: &dyn Fn(&str) -> String) -> ConstraintSystem {
        ConstraintSystem {
            constraints: self
                .constraints
                .iter()
                .map(|c| Constraint {
                    expr: c.expr.rename(f),
                    rel: c.rel,
                })
                .collect(),
        }
    }

    /// Exhaustively enumerate the integer points of this system within the
    /// given bounding box (inclusive). Exponential — test helper only, used
    /// by property tests to cross-check Fourier–Motzkin.
    pub fn enumerate_points(
        &self,
        vars: &[String],
        lo: i64,
        hi: i64,
    ) -> Vec<std::collections::BTreeMap<String, i64>> {
        let mut out = Vec::new();
        let mut env = std::collections::BTreeMap::new();
        self.enum_rec(vars, lo, hi, 0, &mut env, &mut out);
        out
    }

    fn enum_rec(
        &self,
        vars: &[String],
        lo: i64,
        hi: i64,
        idx: usize,
        env: &mut std::collections::BTreeMap<String, i64>,
        out: &mut Vec<std::collections::BTreeMap<String, i64>>,
    ) {
        if idx == vars.len() {
            let sat = self.constraints.iter().all(|c| {
                let v = c.expr.eval(env).unwrap_or(i64::MIN);
                match c.rel {
                    Rel::Ge => v >= 0,
                    Rel::Eq => v == 0,
                }
            });
            if sat {
                out.push(env.clone());
            }
            return;
        }
        for v in lo..=hi {
            env.insert(vars[idx].clone(), v);
            self.enum_rec(vars, lo, hi, idx + 1, env, out);
        }
        env.remove(&vars[idx]);
    }
}

impl fmt::Display for ConstraintSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{ ")?;
        for (i, c) in self.constraints.iter().enumerate() {
            if i > 0 {
                write!(f, " and ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, " }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> AffineExpr {
        AffineExpr::var(n)
    }

    fn k(x: i64) -> AffineExpr {
        AffineExpr::constant(x)
    }

    #[test]
    fn constraint_builders() {
        // i >= 0, i <= 9  ⇒ box
        let c1 = Constraint::ge(&v("i"), &k(0));
        assert_eq!(c1.to_string(), "i >= 0");
        let c2 = Constraint::le(&v("i"), &k(9));
        assert_eq!(c2.to_string(), "-i + 9 >= 0");
        let c3 = Constraint::lt(&v("i"), &v("n"));
        assert_eq!(c3.to_string(), "-i + n - 1 >= 0");
        let c4 = Constraint::eq(&v("i"), &v("j"));
        assert_eq!(c4.to_string(), "i - j = 0");
    }

    #[test]
    fn enumeration_matches_manual_count() {
        // 0 <= i <= 3, 0 <= j <= 3, i + j <= 3 — triangle with 10 points.
        let sys = ConstraintSystem::new()
            .and(Constraint::ge(&v("i"), &k(0)))
            .and(Constraint::le(&v("i"), &k(3)))
            .and(Constraint::ge(&v("j"), &k(0)))
            .and(Constraint::le(&v("j"), &k(3)))
            .and(Constraint::le(&v("i").add(&v("j")), &k(3)));
        let pts = sys.enumerate_points(&["i".into(), "j".into()], -1, 5);
        assert_eq!(pts.len(), 10);
    }

    #[test]
    fn vars_collects_all_names() {
        let sys = ConstraintSystem::new()
            .and(Constraint::ge(&v("i"), &k(0)))
            .and(Constraint::lt(&v("j"), &v("n")));
        let vars = sys.vars();
        assert_eq!(
            vars.into_iter().collect::<Vec<_>>(),
            vec!["i".to_string(), "j".into(), "n".into()]
        );
    }
}
