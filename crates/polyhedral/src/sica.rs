//! SICA extension (PluTo-SICA, Feld et al.): hardware-aware tile-size
//! selection and SIMD annotation.
//!
//! The original SICA chooses tile sizes so the working set of a tile fits
//! the targeted cache level, and marks stride-1 inner loops for
//! vectorization. We reproduce the sizing rule: for a band of dimension
//! `d` touching `A` distinct arrays of element size `E`, the tile edge is
//! the largest power of two `B` with `A · E · B^d ≤ cache_bytes`, clamped
//! to a SIMD-friendly minimum.

use crate::model::Scop;
use std::collections::BTreeSet;

/// Cache/SIMD parameters of the target machine (defaults: AMD Opteron 6272
/// "Bulldozer" module — 16 KiB L1D per core, 2 MiB shared L2, AVX 128-bit
/// effective FP datapath per core pair).
#[derive(Debug, Clone, Copy)]
pub struct SicaParams {
    pub l1_bytes: usize,
    pub l2_bytes: usize,
    /// SIMD vector width in elements for f32 (Opteron 6272 AVX: 8).
    pub simd_width: usize,
    /// Element size assumed for working-set estimation.
    pub elem_bytes: usize,
}

impl Default for SicaParams {
    fn default() -> Self {
        SicaParams {
            l1_bytes: 16 * 1024,
            l2_bytes: 2 * 1024 * 1024,
            simd_width: 8,
            elem_bytes: 4,
        }
    }
}

/// Number of distinct arrays accessed by the SCoP (scalars excluded).
pub fn distinct_arrays(scop: &Scop) -> usize {
    let mut names: BTreeSet<&str> = BTreeSet::new();
    for s in &scop.stmts {
        for a in s.writes.iter().chain(&s.reads) {
            if !a.indices.is_empty() {
                names.insert(a.array.as_str());
            }
        }
    }
    names.len().max(1)
}

/// Choose a rectangular tile edge for the permutable band (band length
/// `d ≥ 2`): largest power of two whose tile working set fits L2, but at
/// least `simd_width`.
pub fn select_tile_size(scop: &Scop, band: usize, p: SicaParams) -> Option<i64> {
    if band < 2 {
        return None;
    }
    let arrays = distinct_arrays(scop) as f64;
    let budget = p.l2_bytes as f64 / (arrays * p.elem_bytes as f64);
    // B^band <= budget ⇒ B <= budget^(1/band)
    let ideal = budget.powf(1.0 / band as f64);
    let mut b: i64 = 1;
    while ((b * 2) as f64) <= ideal && b * 2 <= 1024 {
        b *= 2;
    }
    Some(b.max(p.simd_width as i64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract_scop;
    use cfront::ast::{Stmt, StmtKind};
    use cfront::parser::parse;

    fn scop_of(src: &str) -> Scop {
        let unit = parse(src).unit;
        let mut found: Option<Stmt> = None;
        for f in unit.functions() {
            if let Some(body) = &f.body {
                for s in &body.stmts {
                    s.walk(&mut |st| {
                        if found.is_none() && matches!(st.kind, StmtKind::For { .. }) {
                            found = Some(st.clone());
                        }
                    });
                }
            }
        }
        extract_scop(&found.expect("for")).expect("scop")
    }

    #[test]
    fn counts_distinct_arrays() {
        let scop = scop_of(
            "void f(float** a, float** b, float** c) {\n\
             for (int i = 0; i < 8; i++)\n\
                 for (int j = 0; j < 8; j++)\n\
                     c[i][j] = a[i][j] + b[i][j] + a[i][j];\n}",
        );
        assert_eq!(distinct_arrays(&scop), 3);
    }

    #[test]
    fn tile_size_is_power_of_two_and_fits_l2() {
        let scop = scop_of(
            "void f(float** a, float** b) {\n\
             for (int i = 0; i < 4096; i++)\n\
                 for (int j = 0; j < 4096; j++)\n\
                     b[i][j] = a[i][j];\n}",
        );
        let p = SicaParams::default();
        let b = select_tile_size(&scop, 2, p).unwrap();
        assert!(b >= p.simd_width as i64);
        assert_eq!(b & (b - 1), 0, "tile must be a power of two, got {b}");
        let working_set = 2 * p.elem_bytes as i64 * b * b;
        assert!(working_set <= p.l2_bytes as i64, "tile {b} overflows L2");
        // And doubling it must overflow (maximality).
        let doubled = 2 * p.elem_bytes as i64 * (2 * b) * (2 * b);
        assert!(doubled > p.l2_bytes as i64, "tile {b} is not maximal");
    }

    #[test]
    fn no_tile_for_1d_band() {
        let scop = scop_of("void f(float* a) { for (int i = 0; i < 8; i++) a[i] = 0; }");
        assert_eq!(select_tile_size(&scop, 1, SicaParams::default()), None);
    }

    #[test]
    fn smaller_cache_gives_smaller_tile() {
        let scop = scop_of(
            "void f(float** a, float** b) {\n\
             for (int i = 0; i < 4096; i++)\n\
                 for (int j = 0; j < 4096; j++)\n\
                     b[i][j] = a[i][j];\n}",
        );
        let big = select_tile_size(&scop, 2, SicaParams::default()).unwrap();
        let small = select_tile_size(
            &scop,
            2,
            SicaParams {
                l2_bytes: 64 * 1024,
                ..SicaParams::default()
            },
        )
        .unwrap();
        assert!(small <= big);
    }
}
