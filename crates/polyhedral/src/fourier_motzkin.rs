//! Fourier–Motzkin elimination over rational affine constraint systems,
//! with a GCD normalization step that catches the common integer-empty
//! cases (e.g. `2i = 1`).
//!
//! This is the feasibility engine behind dependence analysis — the role
//! ISL/Piplib play in the original PluTo stack. All systems arising from
//! the evaluation programs are small (≤ ~20 constraints, ≤ ~10 variables),
//! so the classic doubly-exponential worst case is irrelevant in practice;
//! a constraint-count cap guards against pathological blowup and fails
//! *conservatively* (reports "satisfiable").

use crate::affine::AffineExpr;
use crate::set::{Constraint, ConstraintSystem, Rel};

/// Upper bound on intermediate constraint count; beyond this we give up and
/// conservatively report satisfiable (⇒ a dependence is assumed).
const MAX_CONSTRAINTS: usize = 4096;

/// Decide whether the system has a rational solution (conservative integer
/// answer; see module docs).
pub fn satisfiable(sys: &ConstraintSystem) -> bool {
    // Normalize: substitute equalities away where possible, then eliminate
    // remaining variables pairwise.
    let mut constraints: Vec<Constraint> = sys.constraints.clone();

    // Step 1: use equalities with a ±1 coefficient to substitute variables
    // exactly (keeps everything integral), and apply the GCD test to the
    // rest.
    loop {
        let mut substituted = false;
        for idx in 0..constraints.len() {
            if constraints[idx].rel != Rel::Eq {
                continue;
            }
            let expr = constraints[idx].expr.clone();
            if expr.is_constant() {
                if expr.konst != 0 {
                    return false;
                }
                constraints.swap_remove(idx);
                substituted = true;
                break;
            }
            // GCD test: gcd of coefficients must divide the constant.
            let g = expr.coeffs.values().fold(0i64, |acc, &c| gcd(acc, c.abs()));
            if g > 1 && expr.konst % g != 0 {
                return false;
            }
            // Find a unit-coefficient variable to substitute.
            if let Some((name, &c)) = expr.coeffs.iter().find(|(_, c)| c.abs() == 1) {
                let name = name.clone();
                // name = -(expr - c*name)/c  ⇒ replacement = (c==1) ? -(rest) : rest
                let mut rest = expr.clone();
                rest.coeffs.remove(&name);
                let replacement = if c == 1 { rest.neg() } else { rest };
                constraints.swap_remove(idx);
                for con in &mut constraints {
                    substitute(&mut con.expr, &name, &replacement);
                }
                substituted = true;
                break;
            }
        }
        if !substituted {
            break;
        }
    }

    // Step 2: split any remaining equalities into two inequalities.
    let mut ineqs: Vec<AffineExpr> = Vec::with_capacity(constraints.len());
    for c in constraints {
        match c.rel {
            Rel::Ge => ineqs.push(c.expr),
            Rel::Eq => {
                ineqs.push(c.expr.clone());
                ineqs.push(c.expr.neg());
            }
        }
    }

    // Step 3: classic FM elimination of every remaining variable.
    loop {
        // Trivial checks first.
        ineqs.retain(|e| !(e.is_constant() && e.konst >= 0));
        if ineqs.iter().any(|e| e.is_constant() && e.konst < 0) {
            return false;
        }
        let Some(var) = pick_variable(&ineqs) else {
            return true; // no variables left, all constants were consistent
        };

        let mut lower: Vec<AffineExpr> = Vec::new(); // c > 0: var >= -rest/c
        let mut upper: Vec<AffineExpr> = Vec::new(); // c < 0: var <= rest/(-c)
        let mut rest: Vec<AffineExpr> = Vec::new();
        for e in ineqs.drain(..) {
            let c = e.coeff(&var);
            if c > 0 {
                lower.push(e);
            } else if c < 0 {
                upper.push(e);
            } else {
                rest.push(e);
            }
        }

        if lower.len() * upper.len() + rest.len() > MAX_CONSTRAINTS {
            return true; // conservative bail-out
        }

        // Combine every lower with every upper:
        //   l: a·var + L >= 0 (a>0)  and  u: -b·var + U >= 0 (b>0)
        //   ⇒ b·L + a·U >= 0.
        for l in &lower {
            let a = l.coeff(&var);
            let mut l_rest = l.clone();
            l_rest.coeffs.remove(&var);
            for u in &upper {
                let b = -u.coeff(&var);
                let mut u_rest = u.clone();
                u_rest.coeffs.remove(&var);
                let combined = normalize(l_rest.scale(b).add(&u_rest.scale(a)));
                rest.push(combined);
            }
        }
        ineqs = rest;
    }
}

/// Divide all coefficients by their GCD (floor the constant — sound for
/// `>= 0` constraints over integers, and tightens them).
fn normalize(mut e: AffineExpr) -> AffineExpr {
    let g = e.coeffs.values().fold(0i64, |acc, &c| gcd(acc, c.abs()));
    if g > 1 {
        for c in e.coeffs.values_mut() {
            *c /= g;
        }
        e.konst = e.konst.div_euclid(g);
    }
    e
}

/// Pick the variable whose elimination produces the fewest new constraints.
fn pick_variable(ineqs: &[AffineExpr]) -> Option<String> {
    use std::collections::BTreeMap;
    let mut pos: BTreeMap<&str, usize> = BTreeMap::new();
    let mut neg: BTreeMap<&str, usize> = BTreeMap::new();
    for e in ineqs {
        for (name, &c) in &e.coeffs {
            if c > 0 {
                *pos.entry(name).or_default() += 1;
            } else if c < 0 {
                *neg.entry(name).or_default() += 1;
            }
        }
    }
    let mut vars: std::collections::BTreeSet<&str> = pos.keys().copied().collect();
    vars.extend(neg.keys().copied());
    vars.into_iter()
        .min_by_key(|v| {
            let p = pos.get(v).copied().unwrap_or(0);
            let n = neg.get(v).copied().unwrap_or(0);
            p * n
        })
        .map(str::to_string)
}

/// Replace `var` by `replacement` in `expr`.
fn substitute(expr: &mut AffineExpr, var: &str, replacement: &AffineExpr) {
    let c = expr.coeff(var);
    if c == 0 {
        return;
    }
    expr.coeffs.remove(var);
    let scaled = replacement.scale(c);
    let combined = expr.add(&scaled);
    *expr = combined;
}

/// Constraint budget for projection: a combine step that would produce
/// more than this many constraints aborts instead of blowing up
/// quadratically per eliminated variable (exponentially over a deep
/// nest). Callers degrade the nest to `Skipped` — mirroring PluTo, which
/// simply refuses pathological regions.
pub const ELIMINATE_BUDGET: usize = 4096;

/// Project a variable out of a system (FM elimination keeping the
/// resulting constraints, for loop-bound generation à la ClooG).
/// Equalities involving the variable are first converted to inequality
/// pairs so a single code path handles both. Returns `Err` when the
/// combine step would exceed [`ELIMINATE_BUDGET`] constraints.
pub fn eliminate(sys: &ConstraintSystem, var: &str) -> Result<ConstraintSystem, String> {
    let mut ineqs: Vec<AffineExpr> = Vec::new();
    let mut out = ConstraintSystem::new();
    for c in &sys.constraints {
        if c.expr.coeff(var) == 0 {
            out.push(c.clone());
            continue;
        }
        match c.rel {
            Rel::Ge => ineqs.push(c.expr.clone()),
            Rel::Eq => {
                ineqs.push(c.expr.clone());
                ineqs.push(c.expr.neg());
            }
        }
    }
    let mut lower: Vec<AffineExpr> = Vec::new();
    let mut upper: Vec<AffineExpr> = Vec::new();
    for e in ineqs {
        if e.coeff(var) > 0 {
            lower.push(e);
        } else {
            upper.push(e);
        }
    }
    if lower.len() * upper.len() + out.constraints.len() > ELIMINATE_BUDGET {
        return Err(format!(
            "Fourier-Motzkin budget exceeded eliminating `{var}`: \
             {} lower x {} upper bounds (cap {ELIMINATE_BUDGET})",
            lower.len(),
            upper.len()
        ));
    }
    for l in &lower {
        let a = l.coeff(var);
        let mut l_rest = l.clone();
        l_rest.coeffs.remove(var);
        for u in &upper {
            let b = -u.coeff(var);
            let mut u_rest = u.clone();
            u_rest.coeffs.remove(var);
            let combined = normalize(l_rest.scale(b).add(&u_rest.scale(a)));
            // Skip tautologies.
            if combined.is_constant() && combined.konst >= 0 {
                continue;
            }
            out.push(Constraint::ge0(combined));
        }
    }
    Ok(out)
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Compute conservative integer bounds of `target` subject to `sys`:
/// returns `(min, max)` where `None` means unbounded in that direction
/// (or beyond the search window `[-limit, limit]`).
pub fn bounds_of(
    sys: &ConstraintSystem,
    target: &AffineExpr,
    limit: i64,
) -> (Option<i64>, Option<i64>) {
    // Feasibility probes: target <= k / target >= k.
    let feasible_le = |k: i64| {
        let mut s = sys.clone();
        s.push(Constraint::le(target, &AffineExpr::constant(k)));
        s.is_satisfiable()
    };
    let feasible_ge = |k: i64| {
        let mut s = sys.clone();
        s.push(Constraint::ge(target, &AffineExpr::constant(k)));
        s.is_satisfiable()
    };

    if !sys.is_satisfiable() {
        return (None, None);
    }

    // Min: smallest k with target <= k feasible ⇒ binary search on the
    // predicate "exists point with target <= k" (monotone in k).
    let min = if feasible_le(-limit) {
        None // may extend below the window: treat as unbounded
    } else {
        let (mut lo, mut hi) = (-limit, limit);
        // invariant: !feasible_le(lo - 1 ...), search first feasible.
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if feasible_le(mid) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        if feasible_le(lo) {
            Some(lo)
        } else {
            None
        }
    };

    let max = if feasible_ge(limit) {
        None
    } else {
        let (mut lo, mut hi) = (-limit, limit);
        while lo < hi {
            let mid = lo + (hi - lo + 1) / 2;
            if feasible_ge(mid) {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        if feasible_ge(lo) {
            Some(lo)
        } else {
            None
        }
    };

    (min, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::AffineExpr;

    fn v(n: &str) -> AffineExpr {
        AffineExpr::var(n)
    }

    fn k(x: i64) -> AffineExpr {
        AffineExpr::constant(x)
    }

    #[test]
    fn empty_system_is_satisfiable() {
        assert!(satisfiable(&ConstraintSystem::new()));
    }

    #[test]
    fn simple_box_is_satisfiable() {
        let sys = ConstraintSystem::new()
            .and(Constraint::ge(&v("i"), &k(0)))
            .and(Constraint::le(&v("i"), &k(9)));
        assert!(satisfiable(&sys));
    }

    #[test]
    fn contradictory_bounds_unsatisfiable() {
        let sys = ConstraintSystem::new()
            .and(Constraint::ge(&v("i"), &k(10)))
            .and(Constraint::le(&v("i"), &k(9)));
        assert!(!satisfiable(&sys));
    }

    #[test]
    fn eliminate_respects_constraint_budget() {
        // 70 lower bounds x 70 upper bounds on `i` would combine into 4900
        // constraints — past the budget, so elimination must refuse.
        let mut sys = ConstraintSystem::new();
        for p in 0..70 {
            sys.push(Constraint::ge(&v("i"), &v(&format!("lo{p}"))));
            sys.push(Constraint::le(&v("i"), &v(&format!("hi{p}"))));
        }
        let err = eliminate(&sys, "i").unwrap_err();
        assert!(err.contains("budget"), "{err}");

        // A small system still projects fine.
        let small = ConstraintSystem::new()
            .and(Constraint::ge(&v("i"), &k(0)))
            .and(Constraint::le(&v("i"), &v("n")));
        let out = eliminate(&small, "i").unwrap();
        // 0 <= i <= n projects to n >= 0.
        assert_eq!(out.constraints.len(), 1);
    }

    #[test]
    fn equality_substitution_works() {
        // i = j, i >= 5, j <= 4  ⇒ empty
        let sys = ConstraintSystem::new()
            .and(Constraint::eq(&v("i"), &v("j")))
            .and(Constraint::ge(&v("i"), &k(5)))
            .and(Constraint::le(&v("j"), &k(4)));
        assert!(!satisfiable(&sys));
    }

    #[test]
    fn gcd_test_catches_parity() {
        // 2i = 1 has no integer solution.
        let sys = ConstraintSystem::new().and(Constraint::eq0(v("i").scale(2).sub(&k(1))));
        assert!(!satisfiable(&sys));
    }

    #[test]
    fn chained_inequalities() {
        // i <= j, j <= kk, kk <= i - 1 ⇒ empty
        let sys = ConstraintSystem::new()
            .and(Constraint::le(&v("i"), &v("j")))
            .and(Constraint::le(&v("j"), &v("kk")))
            .and(Constraint::le(&v("kk"), &v("i").sub(&k(1))));
        assert!(!satisfiable(&sys));
        // Without the -1 it is satisfiable (all equal).
        let sys2 = ConstraintSystem::new()
            .and(Constraint::le(&v("i"), &v("j")))
            .and(Constraint::le(&v("j"), &v("kk")))
            .and(Constraint::le(&v("kk"), &v("i")));
        assert!(satisfiable(&sys2));
    }

    #[test]
    fn matmul_output_independence() {
        // Two distinct (i,j) ≠ (i',j') writing C[i][j] = C[i'][j'] ⇒ empty.
        let sys = ConstraintSystem::new()
            .and(Constraint::eq(&v("i"), &v("ip")))
            .and(Constraint::eq(&v("j"), &v("jp")))
            // lexicographic strict order: i < ip (one branch)
            .and(Constraint::lt(&v("i"), &v("ip")));
        assert!(!satisfiable(&sys));
    }

    #[test]
    fn stencil_dependence_exists() {
        // a[i][j] reads a[i-1][j]: i' = i - 1 with i in [1,9], i' in [0,9].
        let sys = ConstraintSystem::new()
            .and(Constraint::ge(&v("i"), &k(1)))
            .and(Constraint::le(&v("i"), &k(9)))
            .and(Constraint::ge(&v("ip"), &k(0)))
            .and(Constraint::le(&v("ip"), &k(9)))
            .and(Constraint::eq(&v("ip"), &v("i").sub(&k(1))));
        assert!(satisfiable(&sys));
    }

    #[test]
    fn parametric_system() {
        // 0 <= i < n, n >= 1 — satisfiable for some n.
        let sys = ConstraintSystem::new()
            .and(Constraint::ge(&v("i"), &k(0)))
            .and(Constraint::lt(&v("i"), &v("n")))
            .and(Constraint::ge(&v("n"), &k(1)));
        assert!(satisfiable(&sys));
        // 0 <= i < n, n <= 0 — empty.
        let sys2 = ConstraintSystem::new()
            .and(Constraint::ge(&v("i"), &k(0)))
            .and(Constraint::lt(&v("i"), &v("n")))
            .and(Constraint::le(&v("n"), &k(0)));
        assert!(!satisfiable(&sys2));
    }

    #[test]
    fn bounds_of_simple_range() {
        let sys = ConstraintSystem::new()
            .and(Constraint::ge(&v("i"), &k(2)))
            .and(Constraint::le(&v("i"), &k(7)));
        let (min, max) = bounds_of(&sys, &v("i"), 100);
        assert_eq!(min, Some(2));
        assert_eq!(max, Some(7));
    }

    #[test]
    fn bounds_of_difference() {
        // d = ip - i with ip = i + 1 ⇒ d ∈ [1, 1].
        let sys = ConstraintSystem::new()
            .and(Constraint::eq(&v("ip"), &v("i").add(&k(1))))
            .and(Constraint::ge(&v("i"), &k(0)))
            .and(Constraint::le(&v("i"), &k(100)));
        let d = v("ip").sub(&v("i"));
        let (min, max) = bounds_of(&sys, &d, 64);
        assert_eq!(min, Some(1));
        assert_eq!(max, Some(1));
    }

    #[test]
    fn bounds_of_unbounded_direction() {
        let sys = ConstraintSystem::new().and(Constraint::ge(&v("i"), &k(3)));
        let (min, max) = bounds_of(&sys, &v("i"), 64);
        assert_eq!(min, Some(3));
        assert_eq!(max, None);
    }

    #[test]
    fn brute_force_agreement_on_random_small_systems() {
        // Deterministic pseudo-random small systems; FM must agree with
        // enumeration whenever enumeration finds a point, and must only
        // disagree in the conservative direction otherwise.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let vars = ["x".to_string(), "y".to_string()];
        for _ in 0..200 {
            let mut sys = ConstraintSystem::new();
            let n = (next() % 4 + 1) as usize;
            for _ in 0..n {
                let a = (next() % 7) as i64 - 3;
                let b = (next() % 7) as i64 - 3;
                let c = (next() % 11) as i64 - 5;
                let mut e = AffineExpr::constant(c);
                e = e.add(&AffineExpr::term("x", a));
                e = e.add(&AffineExpr::term("y", b));
                if next() % 4 == 0 {
                    sys.push(Constraint::eq0(e));
                } else {
                    sys.push(Constraint::ge0(e));
                }
            }
            // Keep the search box generous relative to coefficients.
            let brute = !sys.enumerate_points(&vars, -12, 12).is_empty();
            let fm = satisfiable(&sys);
            if brute {
                assert!(fm, "FM must not miss integer point: {sys}");
            }
            // fm && !brute is allowed only if a rational point exists
            // outside the box or between lattice points — conservative.
        }
    }
}
