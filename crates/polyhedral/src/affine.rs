//! Affine expressions over named dimensions.
//!
//! An [`AffineExpr`] is `Σ cᵢ·xᵢ + k` with integer coefficients over
//! iterator/parameter names. The polyhedral model requires loop bounds and
//! array subscripts to be affine; [`AffineExpr::from_ast`] performs that
//! extraction and fails (returns `None`) on anything non-affine, which is
//! exactly the condition under which PluTo refuses a loop.

use cfront::ast::{BinOp, Expr, ExprKind, UnOp};
use std::collections::BTreeMap;
use std::fmt;

/// Integer affine expression: coefficient map + constant.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AffineExpr {
    /// Sorted for deterministic iteration and display.
    pub coeffs: BTreeMap<String, i64>,
    pub konst: i64,
}

impl AffineExpr {
    pub fn constant(k: i64) -> Self {
        AffineExpr {
            coeffs: BTreeMap::new(),
            konst: k,
        }
    }

    pub fn var(name: impl Into<String>) -> Self {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(name.into(), 1);
        AffineExpr { coeffs, konst: 0 }
    }

    pub fn term(name: impl Into<String>, coeff: i64) -> Self {
        let mut coeffs = BTreeMap::new();
        if coeff != 0 {
            coeffs.insert(name.into(), coeff);
        }
        AffineExpr { coeffs, konst: 0 }
    }

    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    pub fn coeff(&self, name: &str) -> i64 {
        self.coeffs.get(name).copied().unwrap_or(0)
    }

    pub fn add(&self, other: &AffineExpr) -> AffineExpr {
        let mut out = self.clone();
        for (name, c) in &other.coeffs {
            let e = out.coeffs.entry(name.clone()).or_insert(0);
            *e += c;
            if *e == 0 {
                out.coeffs.remove(name);
            }
        }
        out.konst += other.konst;
        out
    }

    pub fn sub(&self, other: &AffineExpr) -> AffineExpr {
        self.add(&other.neg())
    }

    pub fn neg(&self) -> AffineExpr {
        AffineExpr {
            coeffs: self.coeffs.iter().map(|(n, c)| (n.clone(), -c)).collect(),
            konst: -self.konst,
        }
    }

    pub fn scale(&self, k: i64) -> AffineExpr {
        if k == 0 {
            return AffineExpr::constant(0);
        }
        AffineExpr {
            coeffs: self
                .coeffs
                .iter()
                .map(|(n, c)| (n.clone(), c * k))
                .collect(),
            konst: self.konst * k,
        }
    }

    /// Rename a dimension (used when relating two statement instances:
    /// `i` → `i'`).
    pub fn rename(&self, f: &dyn Fn(&str) -> String) -> AffineExpr {
        AffineExpr {
            coeffs: self.coeffs.iter().map(|(n, c)| (f(n), *c)).collect(),
            konst: self.konst,
        }
    }

    /// All dimension names referenced.
    pub fn vars(&self) -> impl Iterator<Item = &str> {
        self.coeffs.keys().map(String::as_str)
    }

    /// Extract an affine expression from a C AST expression. `None` when
    /// the expression is not affine (products of variables, division,
    /// calls, indexing…).
    pub fn from_ast(e: &Expr) -> Option<AffineExpr> {
        match &e.kind {
            ExprKind::IntLit(v) => Some(AffineExpr::constant(*v)),
            ExprKind::Ident(name) => Some(AffineExpr::var(name.clone())),
            ExprKind::Unary(UnOp::Neg, inner) => Some(AffineExpr::from_ast(inner)?.neg()),
            ExprKind::Binary(op, l, r) => {
                let lhs = AffineExpr::from_ast(l);
                let rhs = AffineExpr::from_ast(r);
                match op {
                    BinOp::Add => Some(lhs?.add(&rhs?)),
                    BinOp::Sub => Some(lhs?.sub(&rhs?)),
                    BinOp::Mul => {
                        let lhs = lhs?;
                        let rhs = rhs?;
                        if lhs.is_constant() {
                            Some(rhs.scale(lhs.konst))
                        } else if rhs.is_constant() {
                            Some(lhs.scale(rhs.konst))
                        } else {
                            None // variable × variable: not affine
                        }
                    }
                    _ => None,
                }
            }
            ExprKind::Cast(_, inner) => AffineExpr::from_ast(inner),
            _ => None,
        }
    }

    /// Convert back to a C AST expression (canonical form: terms in name
    /// order, constant last).
    pub fn to_ast(&self) -> Expr {
        let mut acc: Option<Expr> = None;
        for (name, &c) in &self.coeffs {
            if c == 0 {
                continue;
            }
            let term = if c == 1 {
                Expr::ident(name.clone())
            } else if c == -1 {
                Expr::new(
                    ExprKind::Unary(UnOp::Neg, Box::new(Expr::ident(name.clone()))),
                    cfront::span::Span::DUMMY,
                )
            } else {
                Expr::binary(BinOp::Mul, Expr::int(c.abs()), Expr::ident(name.clone()))
            };
            acc = Some(match acc {
                None => {
                    if c < -1 {
                        Expr::new(
                            ExprKind::Unary(UnOp::Neg, Box::new(term)),
                            cfront::span::Span::DUMMY,
                        )
                    } else {
                        term
                    }
                }
                Some(prev) => {
                    if c < 0 && c != -1 {
                        Expr::binary(BinOp::Sub, prev, term)
                    } else if c == -1 {
                        // term already carries the negation
                        Expr::binary(BinOp::Add, prev, term)
                    } else {
                        Expr::binary(BinOp::Add, prev, term)
                    }
                }
            });
        }
        match acc {
            None => Expr::int(self.konst),
            Some(expr) if self.konst == 0 => expr,
            Some(expr) if self.konst > 0 => Expr::binary(BinOp::Add, expr, Expr::int(self.konst)),
            Some(expr) => Expr::binary(BinOp::Sub, expr, Expr::int(-self.konst)),
        }
    }

    /// Evaluate under a full assignment; `None` if a variable is missing.
    pub fn eval(&self, env: &BTreeMap<String, i64>) -> Option<i64> {
        let mut v = self.konst;
        for (name, c) in &self.coeffs {
            v += c * env.get(name)?;
        }
        Some(v)
    }
}

impl fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (name, c) in &self.coeffs {
            if *c == 0 {
                continue;
            }
            if first {
                match *c {
                    1 => write!(f, "{name}")?,
                    -1 => write!(f, "-{name}")?,
                    c => write!(f, "{c}{name}")?,
                }
                first = false;
            } else if *c > 0 {
                if *c == 1 {
                    write!(f, " + {name}")?;
                } else {
                    write!(f, " + {c}{name}")?;
                }
            } else if *c == -1 {
                write!(f, " - {name}")?;
            } else {
                write!(f, " - {}{name}", -c)?;
            }
        }
        if first {
            write!(f, "{}", self.konst)?;
        } else if self.konst > 0 {
            write!(f, " + {}", self.konst)?;
        } else if self.konst < 0 {
            write!(f, " - {}", -self.konst)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfront::parser::parse_expr_str;

    fn aff(src: &str) -> Option<AffineExpr> {
        AffineExpr::from_ast(&parse_expr_str(src).unwrap())
    }

    #[test]
    fn extracts_linear_expressions() {
        let e = aff("2 * i + j - 3").unwrap();
        assert_eq!(e.coeff("i"), 2);
        assert_eq!(e.coeff("j"), 1);
        assert_eq!(e.konst, -3);
    }

    #[test]
    fn extracts_nested_arithmetic() {
        let e = aff("4 * (i + 2) - (j - 1) * 3").unwrap();
        assert_eq!(e.coeff("i"), 4);
        assert_eq!(e.coeff("j"), -3);
        assert_eq!(e.konst, 8 + 3);
    }

    #[test]
    fn rejects_non_affine() {
        assert!(aff("i * j").is_none());
        assert!(aff("i / 2").is_none());
        assert!(aff("f(i)").is_none());
        assert!(aff("a[i]").is_none());
        assert!(aff("i % 4").is_none());
    }

    #[test]
    fn arithmetic_identities() {
        let a = aff("i + 1").unwrap();
        let b = aff("j - 1").unwrap();
        assert_eq!(a.add(&b), aff("i + j").unwrap());
        assert_eq!(a.sub(&a), AffineExpr::constant(0));
        assert_eq!(a.scale(3), aff("3 * i + 3").unwrap());
        assert_eq!(a.neg().neg(), a);
    }

    #[test]
    fn cancelled_coefficients_are_removed() {
        let e = aff("i - i + 4").unwrap();
        assert!(e.is_constant());
        assert_eq!(e.konst, 4);
        assert!(e.coeffs.is_empty());
    }

    #[test]
    fn round_trips_through_ast() {
        for src in ["i", "i + 1", "2 * i + 3 * j - 4", "-i + j", "7"] {
            let e = aff(src).unwrap();
            let back = AffineExpr::from_ast(&e.to_ast()).unwrap();
            assert_eq!(e, back, "round trip failed for {src}");
        }
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(aff("2 * i + j - 3").unwrap().to_string(), "2i + j - 3");
        assert_eq!(aff("-i").unwrap().to_string(), "-i");
        assert_eq!(AffineExpr::constant(0).to_string(), "0");
    }

    #[test]
    fn eval_under_assignment() {
        let e = aff("2 * i + j - 3").unwrap();
        let mut env = BTreeMap::new();
        env.insert("i".to_string(), 5);
        env.insert("j".to_string(), 1);
        assert_eq!(e.eval(&env), Some(8));
        env.remove("j");
        assert_eq!(e.eval(&env), None);
    }

    #[test]
    fn rename_moves_coefficients() {
        let e = aff("i + 2 * j").unwrap();
        let r = e.rename(&|n| format!("{n}_dst"));
        assert_eq!(r.coeff("i_dst"), 1);
        assert_eq!(r.coeff("j_dst"), 2);
        assert_eq!(r.coeff("i"), 0);
    }
}
