//! The static control part (SCoP) model: what Clan/OpenScop provide in the
//! original PluTo stack.
//!
//! A [`Scop`] is a perfect loop nest with affine bounds whose innermost body
//! is a sequence of assignment statements with affine array subscripts.
//! (Imperfect nests are handled by the driver by descending to inner
//! perfect nests — see `extract`.)

use crate::affine::AffineExpr;
use crate::set::{Constraint, ConstraintSystem};
use cfront::ast::Stmt;
use std::collections::BTreeSet;
use std::fmt;

/// One loop dimension: `lb <= name <= ub` with unit stride.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopDim {
    pub name: String,
    pub lb: AffineExpr,
    pub ub: AffineExpr,
}

/// A single array (or scalar) access with affine subscripts. Scalars have
/// an empty `indices` vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Access {
    pub array: String,
    pub indices: Vec<AffineExpr>,
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.array)?;
        for ix in &self.indices {
            write!(f, "[{ix}]")?;
        }
        Ok(())
    }
}

/// A statement at the innermost level of the nest.
#[derive(Debug, Clone)]
pub struct PolyStmt {
    /// Position in the innermost body (textual order).
    pub id: usize,
    pub writes: Vec<Access>,
    pub reads: Vec<Access>,
    /// The original AST statement, re-emitted (with renamed iterators) by
    /// the code generator.
    pub ast: Stmt,
}

/// A static control part: perfect nest + statements.
#[derive(Debug, Clone)]
pub struct Scop {
    pub loops: Vec<LoopDim>,
    pub stmts: Vec<PolyStmt>,
    /// Symbolic parameters (size variables appearing in bounds/subscripts).
    pub params: BTreeSet<String>,
}

impl Scop {
    pub fn depth(&self) -> usize {
        self.loops.len()
    }

    pub fn iter_names(&self) -> Vec<&str> {
        self.loops.iter().map(|l| l.name.as_str()).collect()
    }

    /// Constraint system of the iteration domain over the iterator names.
    pub fn domain(&self) -> ConstraintSystem {
        let mut sys = ConstraintSystem::new();
        for dim in &self.loops {
            let it = AffineExpr::var(dim.name.clone());
            sys.push(Constraint::ge(&it, &dim.lb));
            sys.push(Constraint::le(&it, &dim.ub));
        }
        sys
    }

    /// The same domain with every iterator renamed through `f` (parameters
    /// keep their names — they are shared between instances).
    pub fn domain_renamed(&self, f: &dyn Fn(&str) -> String) -> ConstraintSystem {
        let iters: BTreeSet<&str> = self.loops.iter().map(|l| l.name.as_str()).collect();
        self.domain().rename(&|name| {
            if iters.contains(name) {
                f(name)
            } else {
                name.to_string()
            }
        })
    }

    /// Total number of iteration points when all bounds are constant.
    pub fn constant_trip_count(&self) -> Option<u64> {
        let mut total = 1u64;
        for dim in &self.loops {
            if !dim.lb.is_constant() || !dim.ub.is_constant() {
                return None;
            }
            let n = dim.ub.konst - dim.lb.konst + 1;
            if n <= 0 {
                return Some(0);
            }
            total = total.checked_mul(n as u64)?;
        }
        Some(total)
    }
}

impl fmt::Display for Scop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scop[")?;
        for (i, l) in self.loops.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} in {}..={}", l.name, l.lb, l.ub)?;
        }
        write!(f, "] with {} stmt(s)", self.stmts.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfront::ast::StmtKind;
    use cfront::span::Span;

    fn dim(name: &str, lo: i64, hi: i64) -> LoopDim {
        LoopDim {
            name: name.to_string(),
            lb: AffineExpr::constant(lo),
            ub: AffineExpr::constant(hi),
        }
    }

    fn dummy_stmt() -> PolyStmt {
        PolyStmt {
            id: 0,
            writes: vec![],
            reads: vec![],
            ast: Stmt::new(StmtKind::Expr(None), Span::DUMMY),
        }
    }

    #[test]
    fn domain_builds_box_constraints() {
        let scop = Scop {
            loops: vec![dim("i", 0, 9), dim("j", 1, 4)],
            stmts: vec![dummy_stmt()],
            params: BTreeSet::new(),
        };
        let d = scop.domain();
        assert_eq!(d.len(), 4);
        assert!(d.is_satisfiable());
        assert_eq!(scop.constant_trip_count(), Some(40));
    }

    #[test]
    fn renamed_domain_keeps_params() {
        let scop = Scop {
            loops: vec![LoopDim {
                name: "i".into(),
                lb: AffineExpr::constant(0),
                ub: AffineExpr::var("n").sub(&AffineExpr::constant(1)),
            }],
            stmts: vec![dummy_stmt()],
            params: ["n".to_string()].into_iter().collect(),
        };
        let renamed = scop.domain_renamed(&|n| format!("{n}_src"));
        let vars = renamed.vars();
        assert!(vars.contains("i_src"));
        assert!(vars.contains("n"));
        assert!(!vars.contains("i"));
        assert_eq!(scop.constant_trip_count(), None);
    }

    #[test]
    fn empty_range_trip_count_zero() {
        let scop = Scop {
            loops: vec![dim("i", 5, 4)],
            stmts: vec![dummy_stmt()],
            params: BTreeSet::new(),
        };
        assert_eq!(scop.constant_trip_count(), Some(0));
    }
}
