//! AST → SCoP extraction (the Clan stage of the PluTo stack).
//!
//! Walks a `for`-nest between `#pragma scop` / `#pragma endscop` and builds
//! the polyhedral model. Anything outside the affine subset produces a
//! [`Code::PolyNonAffine`] / [`Code::PolyUnsupported`] diagnostic and the
//! nest is left untransformed — mirroring PluTo, which simply refuses such
//! loops (the paper leans on this: without `pure`, calls make loops
//! non-analyzable).

use crate::affine::AffineExpr;
use crate::model::{Access, LoopDim, PolyStmt, Scop};
use cfront::ast::*;
use cfront::diag::{Code, Diagnostics};
use std::collections::BTreeSet;

/// Try to extract a SCoP from a for-statement. On failure, diagnostics
/// explain why (non-affine bound, unsupported statement form, …).
pub fn extract_scop(for_stmt: &Stmt) -> Result<Scop, Diagnostics> {
    let mut diags = Diagnostics::new();
    let mut loops: Vec<LoopDim> = Vec::new();
    let mut cur = for_stmt;

    // Peel the perfect nest.
    while let StmtKind::For {
        init,
        cond,
        step,
        body,
    } = &cur.kind
    {
        match extract_loop_dim(init, cond.as_ref(), step.as_ref()) {
            Ok(dim) => loops.push(dim),
            Err(msg) => {
                diags.error(Code::PolyNonAffine, cur.span, msg);
                return Err(diags);
            }
        }

        // Descend: body is either another `for` (possibly wrapped in a
        // single-statement block) or the innermost statement list.
        let inner = unwrap_single_for(body);
        match inner {
            Some(next_for) => cur = next_for,
            None => {
                let stmts = innermost_statements(body);
                let iters: BTreeSet<&str> = loops.iter().map(|l| l.name.as_str()).collect();
                let mut poly_stmts = Vec::new();
                for (id, s) in stmts.iter().enumerate() {
                    match extract_stmt(s, id, &iters) {
                        Ok(ps) => poly_stmts.push(ps),
                        Err(msg) => {
                            diags.error(Code::PolyUnsupported, s.span, msg);
                            return Err(diags);
                        }
                    }
                }
                if poly_stmts.is_empty() {
                    diags.error(
                        Code::PolyUnsupported,
                        body.span,
                        "loop body has no analyzable statements",
                    );
                    return Err(diags);
                }
                let params = collect_params(&loops, &poly_stmts);
                return Ok(Scop {
                    loops,
                    stmts: poly_stmts,
                    params,
                });
            }
        }
    }

    diags.error(Code::PolyUnsupported, for_stmt.span, "not a for-loop nest");
    Err(diags)
}

/// If `body` is exactly one nested `for` (directly or as the only statement
/// of a block), return it.
fn unwrap_single_for(body: &Stmt) -> Option<&Stmt> {
    match &body.kind {
        StmtKind::For { .. } => Some(body),
        StmtKind::Block(b) => {
            let non_empty: Vec<&Stmt> = b
                .stmts
                .iter()
                .filter(|s| !matches!(s.kind, StmtKind::Expr(None)))
                .collect();
            match non_empty.as_slice() {
                [single] if matches!(single.kind, StmtKind::For { .. }) => Some(single),
                _ => None,
            }
        }
        _ => None,
    }
}

/// The innermost statement list (flattening one block level).
fn innermost_statements(body: &Stmt) -> Vec<&Stmt> {
    match &body.kind {
        StmtKind::Block(b) => b
            .stmts
            .iter()
            .filter(|s| !matches!(s.kind, StmtKind::Expr(None)))
            .collect(),
        _ => vec![body],
    }
}

/// Parse `for (init; cond; step)` into a unit-stride [`LoopDim`].
fn extract_loop_dim(
    init: &ForInit,
    cond: Option<&Expr>,
    step: Option<&Expr>,
) -> Result<LoopDim, String> {
    // Iterator + lower bound.
    let (name, lb) = match init {
        ForInit::Decl(d) => {
            if d.declarators.len() != 1 {
                return Err("multiple declarators in loop init".into());
            }
            let dec = &d.declarators[0];
            let init_expr = dec
                .init
                .as_ref()
                .ok_or("loop iterator lacks an initial value")?;
            let lb = AffineExpr::from_ast(init_expr)
                .ok_or_else(|| format!("non-affine lower bound for '{}'", dec.name))?;
            (dec.name.clone(), lb)
        }
        ForInit::Expr(Some(e)) => match &e.kind {
            ExprKind::Assign(AssignOp::Assign, lhs, rhs) => {
                let name = lhs
                    .as_ident()
                    .ok_or("loop init must assign a simple variable")?;
                let lb = AffineExpr::from_ast(rhs)
                    .ok_or_else(|| format!("non-affine lower bound for '{name}'"))?;
                (name.to_string(), lb)
            }
            _ => return Err("unsupported loop init expression".into()),
        },
        ForInit::Expr(None) => return Err("loop without init is not affine".into()),
    };

    // Upper bound from the condition.
    let cond = cond.ok_or("loop without condition is not affine")?;
    let ub = match &cond.kind {
        ExprKind::Binary(op, l, r) => {
            let lname = l.as_ident();
            if lname != Some(name.as_str()) {
                return Err(format!("loop condition must test iterator '{name}'"));
            }
            let bound = AffineExpr::from_ast(r)
                .ok_or_else(|| format!("non-affine upper bound for '{name}'"))?;
            match op {
                BinOp::Lt => bound.sub(&AffineExpr::constant(1)),
                BinOp::Le => bound,
                _ => return Err("only < / <= loop conditions are supported".into()),
            }
        }
        _ => return Err("unsupported loop condition".into()),
    };

    // Unit positive stride.
    let step = step.ok_or("loop without step")?;
    let unit = match &step.kind {
        ExprKind::Unary(UnOp::PreInc | UnOp::PostInc, inner) => {
            inner.as_ident() == Some(name.as_str())
        }
        ExprKind::Assign(AssignOp::Add, lhs, rhs) => {
            lhs.as_ident() == Some(name.as_str()) && matches!(rhs.kind, ExprKind::IntLit(1))
        }
        ExprKind::Assign(AssignOp::Assign, lhs, rhs) => {
            // i = i + 1
            lhs.as_ident() == Some(name.as_str())
                && AffineExpr::from_ast(rhs)
                    .map(|e| e.coeff(&name) == 1 && e.konst == 1 && e.coeffs.len() == 1)
                    .unwrap_or(false)
        }
        _ => false,
    };
    if !unit {
        return Err(format!("loop over '{name}' must have unit stride"));
    }

    Ok(LoopDim { name, lb, ub })
}

/// Extract reads/writes of one innermost statement.
fn extract_stmt(stmt: &Stmt, id: usize, iters: &BTreeSet<&str>) -> Result<PolyStmt, String> {
    let StmtKind::Expr(Some(e)) = &stmt.kind else {
        return Err("only assignment statements are supported inside a scop nest".into());
    };
    let mut writes = Vec::new();
    let mut reads = Vec::new();
    collect_accesses(e, iters, &mut writes, &mut reads)?;
    Ok(PolyStmt {
        id,
        writes,
        reads,
        ast: stmt.clone(),
    })
}

/// Recursive access collection. Assignment LHS → writes; everything else →
/// reads. Compound assignments read their target as well.
fn collect_accesses(
    e: &Expr,
    iters: &BTreeSet<&str>,
    writes: &mut Vec<Access>,
    reads: &mut Vec<Access>,
) -> Result<(), String> {
    match &e.kind {
        ExprKind::Assign(op, lhs, rhs) => {
            let acc = access_of(lhs, iters)?
                .ok_or("assignment target is not an array or scalar access")?;
            if *op != AssignOp::Assign {
                reads.push(acc.clone());
            }
            writes.push(acc);
            // Subscript expressions of the LHS are reads too.
            collect_index_reads(lhs, iters, reads)?;
            collect_accesses(rhs, iters, writes, reads)
        }
        ExprKind::Unary(op, inner) if op.writes_operand() => {
            let acc = access_of(inner, iters)?
                .ok_or("increment target is not an array or scalar access")?;
            reads.push(acc.clone());
            writes.push(acc);
            Ok(())
        }
        ExprKind::Index(..) => {
            if let Some(acc) = access_of(e, iters)? {
                reads.push(acc);
            }
            collect_index_reads(e, iters, reads)
        }
        ExprKind::Ident(name) => {
            // Scalar read; iterators and placeholders are not memory.
            if !iters.contains(name.as_str()) {
                reads.push(Access {
                    array: name.clone(),
                    indices: vec![],
                });
            }
            Ok(())
        }
        ExprKind::Binary(_, l, r) | ExprKind::Comma(l, r) => {
            collect_accesses(l, iters, writes, reads)?;
            collect_accesses(r, iters, writes, reads)
        }
        ExprKind::Ternary(c, t, f) => {
            collect_accesses(c, iters, writes, reads)?;
            collect_accesses(t, iters, writes, reads)?;
            collect_accesses(f, iters, writes, reads)
        }
        ExprKind::Unary(_, inner) | ExprKind::Cast(_, inner) => {
            collect_accesses(inner, iters, writes, reads)
        }
        ExprKind::Call { args, .. } => {
            // Calls inside scops are only the substituted placeholders'
            // arguments in degenerate cases; treat arguments as reads.
            for a in args {
                collect_accesses(a, iters, writes, reads)?;
            }
            Ok(())
        }
        ExprKind::Member { .. } => Err("struct accesses are not affine".into()),
        _ => Ok(()),
    }
}

/// Subscripts of an index chain are reads (e.g. `a[b[i]]` reads `b`).
fn collect_index_reads(
    e: &Expr,
    iters: &BTreeSet<&str>,
    reads: &mut Vec<Access>,
) -> Result<(), String> {
    if let ExprKind::Index(base, idx) = &e.kind {
        let mut dummy_writes = Vec::new();
        collect_accesses(idx, iters, &mut dummy_writes, reads)?;
        collect_index_reads(base, iters, reads)?;
    }
    Ok(())
}

/// Interpret an lvalue as an array access with affine subscripts.
/// `a[i][j]` → `Access { a, [i, j] }`; plain `x` → scalar access.
fn access_of(e: &Expr, _iters: &BTreeSet<&str>) -> Result<Option<Access>, String> {
    match &e.kind {
        ExprKind::Ident(name) => Ok(Some(Access {
            array: name.clone(),
            indices: vec![],
        })),
        ExprKind::Index(..) => {
            let mut indices = Vec::new();
            let mut cur = e;
            loop {
                match &cur.kind {
                    ExprKind::Index(base, idx) => {
                        let aff = AffineExpr::from_ast(idx)
                            .ok_or_else(|| "non-affine array subscript".to_string())?;
                        indices.push(aff);
                        cur = base;
                    }
                    ExprKind::Ident(name) => {
                        indices.reverse();
                        return Ok(Some(Access {
                            array: name.clone(),
                            indices,
                        }));
                    }
                    ExprKind::Cast(_, inner) => cur = inner,
                    _ => return Err("array base must be a simple variable".into()),
                }
            }
        }
        ExprKind::Cast(_, inner) => access_of(inner, _iters),
        ExprKind::Unary(UnOp::Deref, inner) => {
            // `*p` ≈ `p[0]`.
            match access_of(inner, _iters)? {
                Some(mut acc) => {
                    acc.indices.push(AffineExpr::constant(0));
                    Ok(Some(acc))
                }
                None => Ok(None),
            }
        }
        _ => Ok(None),
    }
}

/// Parameters = names in bounds/subscripts that are not loop iterators.
fn collect_params(loops: &[LoopDim], stmts: &[PolyStmt]) -> BTreeSet<String> {
    let iters: BTreeSet<&str> = loops.iter().map(|l| l.name.as_str()).collect();
    let mut params = BTreeSet::new();
    let mut note = |e: &AffineExpr| {
        for v in e.vars() {
            if !iters.contains(v) {
                params.insert(v.to_string());
            }
        }
    };
    for l in loops {
        note(&l.lb);
        note(&l.ub);
    }
    for s in stmts {
        for a in s.writes.iter().chain(&s.reads) {
            for ix in &a.indices {
                note(ix);
            }
        }
    }
    params
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfront::parser::parse;

    /// Parse a function and return its first for-loop statement.
    fn first_for(src: &str) -> Stmt {
        let unit = parse(src).unit;
        for f in unit.functions() {
            if let Some(body) = &f.body {
                for s in &body.stmts {
                    let mut found = None;
                    s.walk(&mut |st| {
                        if found.is_none() && matches!(st.kind, StmtKind::For { .. }) {
                            found = Some(st.clone());
                        }
                    });
                    if let Some(f) = found {
                        return f;
                    }
                }
            }
        }
        panic!("no for loop in source");
    }

    #[test]
    fn extracts_matmul_nest() {
        let s = first_for(
            "float **C;\nvoid f() {\n\
             for (int i = 0; i < 4096; ++i)\n\
                 for (int j = 0; j < 4096; ++j)\n\
                     C[i][j] = tmpConst_dot_0;\n}",
        );
        let scop = extract_scop(&s).expect("scop");
        assert_eq!(scop.depth(), 2);
        assert_eq!(scop.loops[0].name, "i");
        assert_eq!(scop.loops[1].ub, AffineExpr::constant(4095));
        assert_eq!(scop.stmts.len(), 1);
        assert_eq!(scop.stmts[0].writes.len(), 1);
        assert_eq!(scop.stmts[0].writes[0].array, "C");
        assert_eq!(scop.stmts[0].writes[0].indices.len(), 2);
        // The placeholder reads as a scalar.
        assert!(scop.stmts[0]
            .reads
            .iter()
            .any(|a| a.array == "tmpConst_dot_0"));
        assert_eq!(scop.constant_trip_count(), Some(4096 * 4096));
    }

    #[test]
    fn extracts_parametric_bounds() {
        let s = first_for("void f(int n, float* a) { for (int i = 0; i <= n - 1; i++) a[i] = 0; }");
        let scop = extract_scop(&s).unwrap();
        assert_eq!(scop.depth(), 1);
        assert!(scop.params.contains("n"));
        assert_eq!(scop.constant_trip_count(), None);
    }

    #[test]
    fn extracts_stencil_accesses() {
        let s = first_for(
            "void f(float** a, float** b) {\n\
             for (int i = 1; i < 63; i++)\n\
                 for (int j = 1; j < 63; j++)\n\
                     b[i][j] = a[i - 1][j] + a[i + 1][j] + a[i][j - 1] + a[i][j + 1];\n}",
        );
        let scop = extract_scop(&s).unwrap();
        let reads: Vec<String> = scop.stmts[0].reads.iter().map(|a| a.to_string()).collect();
        assert!(reads.contains(&"a[i - 1][j]".to_string()), "{reads:?}");
        assert!(reads.contains(&"a[i][j + 1]".to_string()), "{reads:?}");
        assert_eq!(scop.stmts[0].writes[0].to_string(), "b[i][j]");
    }

    #[test]
    fn compound_assignment_reads_target() {
        let s = first_for("void f(float* r) { for (int i = 0; i < 8; i++) r[0] += i; }");
        let scop = extract_scop(&s).unwrap();
        let st = &scop.stmts[0];
        assert_eq!(st.writes[0].to_string(), "r[0]");
        assert!(st.reads.iter().any(|a| a.to_string() == "r[0]"));
    }

    #[test]
    fn scalar_reduction_detected() {
        let s = first_for(
            "void f(float* a) { float res; for (int i = 0; i < 8; i++) res = res + a[i]; }",
        );
        let scop = extract_scop(&s).unwrap();
        let st = &scop.stmts[0];
        assert!(st
            .writes
            .iter()
            .any(|a| a.array == "res" && a.indices.is_empty()));
        assert!(st.reads.iter().any(|a| a.array == "res"));
    }

    #[test]
    fn rejects_non_affine_subscript() {
        let s = first_for("void f(float* a) { for (int i = 0; i < 8; i++) a[i * i] = 0; }");
        let err = extract_scop(&s).unwrap_err();
        assert!(err.has_code(Code::PolyNonAffine) || err.has_code(Code::PolyUnsupported));
    }

    #[test]
    fn rejects_non_unit_stride() {
        let s = first_for("void f(float* a) { for (int i = 0; i < 8; i += 2) a[i] = 0; }");
        assert!(extract_scop(&s).is_err());
    }

    #[test]
    fn rejects_imperfect_nest_with_interleaved_stmt() {
        let s = first_for(
            "void f(float** a, float* s) {\n\
             for (int i = 0; i < 8; i++) {\n\
                 s[i] = 0;\n\
                 for (int j = 0; j < 8; j++) a[i][j] = 1;\n\
             }\n}",
        );
        // Two innermost statements where one is a for → unsupported form.
        assert!(extract_scop(&s).is_err());
    }

    #[test]
    fn multiple_innermost_statements_allowed() {
        let s = first_for(
            "void f(float** a, float** b) {\n\
             for (int i = 0; i < 8; i++)\n\
                 for (int j = 0; j < 8; j++) {\n\
                     a[i][j] = i;\n\
                     b[i][j] = a[i][j] * 2;\n\
                 }\n}",
        );
        let scop = extract_scop(&s).unwrap();
        assert_eq!(scop.stmts.len(), 2);
        assert_eq!(scop.stmts[1].id, 1);
    }

    #[test]
    fn indirect_subscript_is_rejected() {
        // ELL-style indirect addressing must be refused (the paper's LAMA
        // loop is only parallelizable because the indirection is hidden
        // inside the pure function).
        let s =
            first_for("void f(float* a, int* idx) { for (int i = 0; i < 8; i++) a[idx[i]] = 0; }");
        assert!(extract_scop(&s).is_err());
    }

    #[test]
    fn pointer_deref_is_zero_index() {
        let s = first_for("void f(float* p) { for (int i = 0; i < 8; i++) *p = i; }");
        let scop = extract_scop(&s).unwrap();
        assert_eq!(scop.stmts[0].writes[0].to_string(), "p[0]");
    }

    #[test]
    fn le_condition_inclusive_bound() {
        let s = first_for("void f(float* a) { for (int i = 0; i <= 7; i++) a[i] = 0; }");
        let scop = extract_scop(&s).unwrap();
        assert_eq!(scop.loops[0].ub, AffineExpr::constant(7));
    }
}
