//! PluTo-style schedule computation: find a legal, tiling-friendly loop
//! transformation (Sect. 3.3 of the paper, Bondhugula et al. for the full
//! algorithm).
//!
//! We search small integer hyperplanes `h` (coefficients 0..=2, as in
//! PluTo's bounded coefficient search) such that every dependence distance
//! vector `d` satisfies `h·d ≥ 0` — the *permutability* condition that
//! makes rectangular tiling of the transformed space legal (the paper's
//! Fig. 2: the valid green tiling exists only after the shear). Distances
//! are interval vectors from the dependence analysis; the dot product is
//! evaluated in interval arithmetic, so unknown components conservatively
//! forbid a hyperplane.

use crate::deps::{Dependence, DistBound};
use crate::model::Scop;

/// A complete loop transformation: `new = matrix · old` (unimodular), with
/// per-dimension parallelism flags and the length of the outermost
/// permutable band (the tilable prefix).
#[derive(Debug, Clone, PartialEq)]
pub struct Transform {
    /// Row `k` holds the coefficients of new iterator `k` over the original
    /// iterators.
    pub matrix: Vec<Vec<i64>>,
    /// `parallel[k]`: no unresolved dependence is carried by dimension `k`.
    pub parallel: Vec<bool>,
    /// Outermost `band` dimensions are mutually permutable (tilable).
    pub band: usize,
    /// True when the matrix is not the identity (a skew/interchange was
    /// applied).
    pub skewed: bool,
}

impl Transform {
    pub fn identity(n: usize, parallel: Vec<bool>, band: usize) -> Self {
        Transform {
            matrix: (0..n)
                .map(|i| (0..n).map(|j| i64::from(i == j)).collect())
                .collect(),
            parallel,
            band,
            skewed: false,
        }
    }

    pub fn depth(&self) -> usize {
        self.matrix.len()
    }

    pub fn is_identity(&self) -> bool {
        self.matrix
            .iter()
            .enumerate()
            .all(|(i, row)| row.iter().enumerate().all(|(j, &v)| v == i64::from(i == j)))
    }

    /// First parallel dimension, if any.
    pub fn outermost_parallel(&self) -> Option<usize> {
        self.parallel.iter().position(|&p| p)
    }

    /// Integer inverse (valid because the matrix is unimodular).
    pub fn inverse(&self) -> Option<Vec<Vec<i64>>> {
        invert_unimodular(&self.matrix)
    }
}

/// Interval dot product `h · d` where components of `d` are [`DistBound`]s.
/// Returns `(min, max)` with `None` = unbounded.
pub fn interval_dot(h: &[i64], d: &[DistBound]) -> (Option<i64>, Option<i64>) {
    let mut min = Some(0i64);
    let mut max = Some(0i64);
    for (&c, b) in h.iter().zip(d) {
        if c == 0 {
            continue;
        }
        let (term_min, term_max) = if c > 0 {
            (b.min.map(|v| c * v), b.max.map(|v| c * v))
        } else {
            (b.max.map(|v| c * v), b.min.map(|v| c * v))
        };
        min = match (min, term_min) {
            (Some(a), Some(b)) => Some(a + b),
            _ => None,
        };
        max = match (max, term_max) {
            (Some(a), Some(b)) => Some(a + b),
            _ => None,
        };
    }
    (min, max)
}

/// Compute a schedule for the SCoP. Falls back to the identity schedule
/// (with per-level parallelism under the original order) when no better
/// legal band is found — the identity is always legal.
pub fn compute_schedule(scop: &Scop, deps: &[Dependence]) -> Transform {
    let n = scop.depth();
    if n == 0 {
        return Transform::identity(0, vec![], 0);
    }

    // Only loop-carried deps constrain hyperplanes; loop-independent deps
    // (distance 0) satisfy h·d = 0 for every h.
    let carried: Vec<&Dependence> = deps.iter().filter(|d| d.level.is_some()).collect();

    if carried.is_empty() {
        return Transform::identity(n, vec![true; n], n);
    }

    // Greedy band construction.
    let candidates = hyperplane_candidates(n);
    let mut rows: Vec<Vec<i64>> = Vec::new();
    for _level in 0..n {
        let mut chosen: Option<Vec<i64>> = None;
        for h in &candidates {
            if !independent(&rows, h) {
                continue;
            }
            // Permutability: h·d >= 0 for *all* carried deps.
            let ok = carried.iter().all(|dep| {
                let (min, _) = interval_dot(h, &dep.dist);
                matches!(min, Some(v) if v >= 0)
            });
            if ok {
                chosen = Some(h.clone());
                break;
            }
        }
        match chosen {
            Some(h) => rows.push(h),
            None => break,
        }
    }

    if rows.len() < n {
        // Partial band: complete with identity rows is possible, but the
        // mixed matrix may reorder dependences illegally. Use the original
        // order, which is always legal.
        let parallel = crate::deps::parallel_levels(scop, deps);
        // The identity still has a (possibly empty) permutable prefix:
        // levels l where all carried deps have dist[l] interval >= 0 — for
        // a legal original program that holds up to the first level with a
        // negative-capable component.
        let mut band = 0;
        'outer: for l in 0..n {
            for dep in &carried {
                match dep.dist[l].min {
                    Some(v) if v >= 0 => {}
                    _ => break 'outer,
                }
            }
            band = l + 1;
        }
        return Transform::identity(n, parallel, band);
    }

    // Verify unimodularity; fall back otherwise.
    if det(&rows).abs() != 1 {
        let parallel = crate::deps::parallel_levels(scop, deps);
        return Transform::identity(n, parallel, 0);
    }

    // Parallelism: dependence `dep` is resolved before level k if some
    // earlier level strictly carries it (min(h·d) >= 1). Level k is
    // parallel iff every unresolved dep has h_k·d exactly 0.
    let mut parallel = vec![false; n];
    for k in 0..n {
        let mut all_zero = true;
        for dep in &carried {
            let resolved = (0..k).any(|l| {
                let (min, _) = interval_dot(&rows[l], &dep.dist);
                matches!(min, Some(v) if v >= 1)
            });
            if resolved {
                continue;
            }
            let (min, max) = interval_dot(&rows[k], &dep.dist);
            if !(min == Some(0) && max == Some(0)) {
                all_zero = false;
                break;
            }
        }
        parallel[k] = all_zero;
    }

    let skewed = rows
        .iter()
        .enumerate()
        .any(|(i, row)| row.iter().enumerate().any(|(j, &v)| v != i64::from(i == j)));

    Transform {
        matrix: rows,
        parallel,
        band: n,
        skewed,
    }
}

/// Deepest nest for which the full 3^n skew enumeration runs; deeper nests
/// fall back to unit vectors only so schedule search stays polynomial.
const MAX_SKEW_DEPTH: usize = 6;

/// Candidate hyperplanes in preference order: identity axes first (original
/// order), then axes in other orders, then skews with growing coefficients.
fn hyperplane_candidates(n: usize) -> Vec<Vec<i64>> {
    let mut out: Vec<Vec<i64>> = Vec::new();
    // Unit vectors in original order.
    for i in 0..n {
        let mut v = vec![0; n];
        v[i] = 1;
        out.push(v);
    }
    if n > MAX_SKEW_DEPTH {
        return out;
    }
    // All vectors with coefficients in 0..=2 (excluding zero and the unit
    // vectors already present), sorted by (sum, max coeff) — small skews
    // first, matching PluTo's preference for low-complexity transforms.
    let mut rest: Vec<Vec<i64>> = Vec::new();
    let mut v = vec![0i64; n];
    loop {
        // increment base-3 counter
        let mut i = 0;
        loop {
            if i == n {
                // done enumerating
                rest.sort_by_key(|v| {
                    (
                        v.iter().sum::<i64>(),
                        *v.iter().max().unwrap_or(&0),
                        v.clone(),
                    )
                });
                out.extend(rest);
                return out;
            }
            v[i] += 1;
            if v[i] <= 2 {
                break;
            }
            v[i] = 0;
            i += 1;
        }
        let nonzero = v.iter().filter(|&&c| c != 0).count();
        if nonzero >= 2 {
            rest.push(v.clone());
        }
    }
}

/// Rank check: is `h` linearly independent of `rows`?
fn independent(rows: &[Vec<i64>], h: &[i64]) -> bool {
    let mut m: Vec<Vec<f64>> = rows
        .iter()
        .map(|r| r.iter().map(|&x| x as f64).collect())
        .collect();
    m.push(h.iter().map(|&x| x as f64).collect());
    rank(&mut m) == m.len()
}

fn rank(m: &mut [Vec<f64>]) -> usize {
    let rows = m.len();
    if rows == 0 {
        return 0;
    }
    let cols = m[0].len();
    let mut r = 0;
    for c in 0..cols {
        if r == rows {
            break;
        }
        // pivot
        let Some(p) = (r..rows).max_by(|&a, &b| m[a][c].abs().partial_cmp(&m[b][c].abs()).unwrap())
        else {
            continue;
        };
        if m[p][c].abs() < 1e-9 {
            continue;
        }
        m.swap(r, p);
        for i in (r + 1)..rows {
            let f = m[i][c] / m[r][c];
            // Two rows of `m` are live at once (read r, write i), so the
            // index loop cannot become an iterator chain.
            #[allow(clippy::needless_range_loop)]
            for j in c..cols {
                m[i][j] -= f * m[r][j];
            }
        }
        r += 1;
    }
    r
}

/// Integer determinant by fraction-free (Bareiss) elimination.
pub fn det(m: &[Vec<i64>]) -> i64 {
    let n = m.len();
    if n == 0 {
        return 1;
    }
    let mut a: Vec<Vec<i128>> = m
        .iter()
        .map(|r| r.iter().map(|&x| x as i128).collect())
        .collect();
    let mut sign = 1i128;
    let mut prev = 1i128;
    for k in 0..n - 1 {
        if a[k][k] == 0 {
            // find a row to swap
            let Some(p) = (k + 1..n).find(|&i| a[i][k] != 0) else {
                return 0;
            };
            a.swap(k, p);
            sign = -sign;
        }
        for i in k + 1..n {
            for j in k + 1..n {
                a[i][j] = (a[i][j] * a[k][k] - a[i][k] * a[k][j]) / prev;
            }
            a[i][k] = 0;
        }
        prev = a[k][k];
    }
    (sign * a[n - 1][n - 1]) as i64
}

/// Invert a unimodular integer matrix (|det| = 1) via the adjugate.
pub fn invert_unimodular(m: &[Vec<i64>]) -> Option<Vec<Vec<i64>>> {
    let n = m.len();
    let d = det(m);
    if d.abs() != 1 {
        return None;
    }
    let mut inv = vec![vec![0i64; n]; n];
    for (i, inv_row) in inv.iter_mut().enumerate() {
        for (j, cell) in inv_row.iter_mut().enumerate() {
            // Cofactor C_ji for the (i,j) entry of the inverse.
            let minor: Vec<Vec<i64>> = (0..n)
                .filter(|&r| r != j)
                .map(|r| (0..n).filter(|&c| c != i).map(|c| m[r][c]).collect())
                .collect();
            let sign = if (i + j) % 2 == 0 { 1 } else { -1 };
            *cell = sign * det(&minor) * d; // d = ±1 ⇒ division is mult
        }
    }
    Some(inv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::analyze;
    use crate::extract::extract_scop;
    use cfront::ast::{Stmt, StmtKind};
    use cfront::parser::parse;

    fn scop_of(src: &str) -> Scop {
        let unit = parse(src).unit;
        let mut found: Option<Stmt> = None;
        for f in unit.functions() {
            if let Some(body) = &f.body {
                for s in &body.stmts {
                    s.walk(&mut |st| {
                        if found.is_none() && matches!(st.kind, StmtKind::For { .. }) {
                            found = Some(st.clone());
                        }
                    });
                }
            }
        }
        extract_scop(&found.expect("for")).expect("scop")
    }

    #[test]
    fn matmul_gets_identity_fully_parallel() {
        let scop = scop_of(
            "float** C;\nvoid f() {\n\
             for (int i = 0; i < 64; i++)\n\
                 for (int j = 0; j < 64; j++)\n\
                     C[i][j] = tmpConst_dot_0;\n}",
        );
        let deps = analyze(&scop);
        let t = compute_schedule(&scop, &deps);
        assert!(t.is_identity());
        assert_eq!(t.parallel, vec![true, true]);
        assert_eq!(t.band, 2);
        assert_eq!(t.outermost_parallel(), Some(0));
    }

    #[test]
    fn fig2_stencil_gets_skewed_band() {
        // deps (1,0) and (1,-1): axes (0,1) fails ((0,1)·(1,-1) = -1), so
        // the second hyperplane must be the shear (1,1) — exactly Fig. 2.
        let scop = scop_of(
            "void f(float** a) {\n\
             for (int i = 1; i < 64; i++)\n\
                 for (int j = 1; j < 63; j++)\n\
                     a[i][j] = a[i - 1][j] + a[i - 1][j + 1];\n}",
        );
        let deps = analyze(&scop);
        let t = compute_schedule(&scop, &deps);
        assert_eq!(t.matrix[0], vec![1, 0]);
        assert_eq!(t.matrix[1], vec![1, 1]);
        assert!(t.skewed);
        assert_eq!(t.band, 2, "shear must restore full tilability");
        // After the shear: d(1,0)→(1,1), d(1,-1)→(1,0): level 0 carries
        // everything, level 1 is NOT all-zero ⇒ sequential outer, and the
        // inner is not parallel either (distance varies 0..1).
        assert!(!t.parallel[0]);
    }

    #[test]
    fn seidel_stencil_inner_parallel_after_skew() {
        // deps (1,0) and (0,1): band {(1,0),(1,1)} or {(1,0),(0,1)}? The
        // axes already satisfy h·d >= 0 for both deps, so identity works
        // and is preferred.
        let scop = scop_of(
            "void f(float** a) {\n\
             for (int i = 1; i < 64; i++)\n\
                 for (int j = 1; j < 64; j++)\n\
                     a[i][j] = a[i - 1][j] + a[i][j - 1];\n}",
        );
        let deps = analyze(&scop);
        let t = compute_schedule(&scop, &deps);
        assert!(t.is_identity());
        assert_eq!(t.band, 2); // rectangular tiling legal: all dists >= 0
        assert_eq!(t.parallel, vec![false, false]);
    }

    #[test]
    fn jacobi_no_deps_all_parallel() {
        let scop = scop_of(
            "void f(float** a, float** b) {\n\
             for (int i = 1; i < 63; i++)\n\
                 for (int j = 1; j < 63; j++)\n\
                     b[i][j] = a[i - 1][j] + a[i + 1][j];\n}",
        );
        let deps = analyze(&scop);
        let t = compute_schedule(&scop, &deps);
        assert_eq!(t.parallel, vec![true, true]);
    }

    #[test]
    fn reduction_is_sequential() {
        let scop = scop_of(
            "void f(float* a) { float res; for (int i = 0; i < 8; i++) res = res + a[i]; }",
        );
        let deps = analyze(&scop);
        let t = compute_schedule(&scop, &deps);
        assert_eq!(t.outermost_parallel(), None);
    }

    #[test]
    fn interval_dot_handles_unbounded() {
        let d = [
            DistBound::exact(1),
            DistBound {
                min: None,
                max: Some(3),
            },
        ];
        let (min, max) = interval_dot(&[1, 1], &d);
        assert_eq!(min, None);
        assert_eq!(max, Some(4));
        let (min2, max2) = interval_dot(&[1, 0], &d);
        assert_eq!((min2, max2), (Some(1), Some(1)));
        let (min3, _) = interval_dot(&[0, -1], &d);
        assert_eq!(min3, Some(-3));
    }

    #[test]
    fn det_and_inverse() {
        let m = vec![vec![1, 0], vec![1, 1]];
        assert_eq!(det(&m), 1);
        let inv = invert_unimodular(&m).unwrap();
        assert_eq!(inv, vec![vec![1, 0], vec![-1, 1]]);

        let id3 = vec![vec![1, 0, 0], vec![0, 1, 0], vec![0, 0, 1]];
        assert_eq!(det(&id3), 1);
        assert_eq!(invert_unimodular(&id3).unwrap(), id3);

        let swap = vec![vec![0, 1], vec![1, 0]];
        assert_eq!(det(&swap), -1);
        assert_eq!(invert_unimodular(&swap).unwrap(), swap);

        let noninv = vec![vec![2, 0], vec![0, 1]];
        assert_eq!(det(&noninv), 2);
        assert!(invert_unimodular(&noninv).is_none());
    }

    #[test]
    fn candidates_prefer_identity_axes() {
        let c = hyperplane_candidates(2);
        assert_eq!(c[0], vec![1, 0]);
        assert_eq!(c[1], vec![0, 1]);
        assert!(c.contains(&vec![1, 1]));
        assert!(c.contains(&vec![2, 1]));
        // no zero vector
        assert!(!c.contains(&vec![0, 0]));
    }
}

#[cfg(test)]
mod more_schedule_tests {
    use super::*;
    use crate::deps::analyze;
    use crate::extract::extract_scop;
    use cfront::ast::{Stmt, StmtKind};
    use cfront::parser::parse;

    fn scop_of(src: &str) -> crate::model::Scop {
        let unit = parse(src).unit;
        let mut found: Option<Stmt> = None;
        for f in unit.functions() {
            if let Some(body) = &f.body {
                for s in &body.stmts {
                    s.walk(&mut |st| {
                        if found.is_none() && matches!(st.kind, StmtKind::For { .. }) {
                            found = Some(st.clone());
                        }
                    });
                }
            }
        }
        extract_scop(&found.expect("for")).expect("scop")
    }

    #[test]
    fn three_level_matmul_style_nest_fully_parallel_outer_two() {
        // Classic ijk matmul (inlined form): reduction carried by k only.
        let scop = scop_of(
            "void f(float** a, float** b, float** c) {\n\
             for (int i = 0; i < 32; i++)\n\
                 for (int j = 0; j < 32; j++)\n\
                     for (int k = 0; k < 32; k++)\n\
                         c[i][j] = c[i][j] + a[i][k] * b[k][j];\n}",
        );
        let deps = analyze(&scop);
        let t = compute_schedule(&scop, &deps);
        assert_eq!(t.depth(), 3);
        // i and j carry nothing; k carries the reduction.
        assert!(t.parallel[0], "{t:?}");
        assert!(t.parallel[1], "{t:?}");
        assert!(!t.parallel[2], "{t:?}");
        // The whole nest is permutable (all distances >= 0) → tilable.
        assert_eq!(t.band, 3);
    }

    #[test]
    fn backward_dependence_limits_the_band() {
        // a[i] = a[i+1]: anti dep with distance +1 — still non-negative,
        // band covers the loop; it is sequential though.
        let scop = scop_of("void f(float* a) { for (int i = 0; i < 63; i++) a[i] = a[i + 1]; }");
        let deps = analyze(&scop);
        let t = compute_schedule(&scop, &deps);
        assert_eq!(t.outermost_parallel(), None);
        assert_eq!(t.band, 1);
    }

    #[test]
    fn long_distance_dependence_bounds() {
        let scop = scop_of("void f(float* a) { for (int i = 8; i < 64; i++) a[i] = a[i - 8]; }");
        let deps = analyze(&scop);
        let flow = deps
            .iter()
            .find(|d| d.kind == crate::deps::DepKind::Flow)
            .expect("flow dep");
        assert!(flow.dist[0].is_exactly(8), "{flow}");
    }

    #[test]
    fn schedule_of_empty_nest() {
        let t = compute_schedule(
            &crate::model::Scop {
                loops: vec![],
                stmts: vec![],
                params: Default::default(),
            },
            &[],
        );
        assert_eq!(t.depth(), 0);
        assert_eq!(t.band, 0);
    }

    #[test]
    fn interval_dot_zero_coefficients_ignore_unknowns() {
        let d = [
            crate::deps::DistBound {
                min: None,
                max: None,
            },
            crate::deps::DistBound::exact(2),
        ];
        let (min, max) = interval_dot(&[0, 3], &d);
        assert_eq!((min, max), (Some(6), Some(6)));
    }
}
