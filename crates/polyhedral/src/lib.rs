//! # polyhedral — a PluTo-style polyhedral loop transformer
//!
//! Substrate crate reproducing the parallelization back end of
//! *Pure Functions in C* (Süß et al.): the role played by
//! PluTo + Clan + ClooG + ISL in the original compiler chain, plus the
//! SICA hardware-aware extension (PluTo-SICA).
//!
//! Pipeline: [`extract`] builds the SCoP model from a marked loop nest,
//! [`deps`] computes dependence polyhedra and distance bounds via
//! Fourier–Motzkin ([`fourier_motzkin`]), [`schedule`] searches legal
//! permutable hyperplane bands (skewing when needed — the paper's Fig. 2),
//! [`codegen`] emits the transformed nest with OpenMP/SIMD pragmas, and
//! [`polycc`] drives the whole stage over `#pragma scop` regions.

pub mod affine;
pub mod codegen;
pub mod deps;
pub mod extract;
pub mod fourier_motzkin;
pub mod model;
pub mod polycc;
pub mod schedule;
pub mod set;
pub mod sica;

pub use affine::AffineExpr;
pub use codegen::{generate, CodegenOptions, Generated, HELPER_DEFS};
pub use deps::{analyze, parallel_levels, DepKind, Dependence, DistBound};
pub use extract::extract_scop;
pub use model::{Access, LoopDim, PolyStmt, Scop};
pub use polycc::{run_polycc, PolyccOptions, PolyccReport, RegionOutcome};
pub use schedule::{compute_schedule, Transform};
pub use set::{Constraint, ConstraintSystem, Rel};
pub use sica::{select_tile_size, SicaParams};
