//! Dependence analysis: the arrows of the paper's Fig. 2.
//!
//! For every pair of accesses to the same array with at least one write, we
//! build the *dependence polyhedron* — source instance `x`, destination
//! instance `y`, both domains, subscript equality, and `x ≺ y` in execution
//! order — and test it for points with Fourier–Motzkin. Classic level-wise
//! splitting turns the lexicographic order into a finite union of
//! conjunctive systems: a dependence *carried at level ℓ* fixes
//! `d₁..d₍ℓ₋₁₎ = 0 ∧ d_ℓ ≥ 1`; a *loop-independent* dependence has all
//! distances 0 and relies on textual order.

use crate::affine::AffineExpr;
use crate::fourier_motzkin::bounds_of;
use crate::model::{Access, Scop};
use crate::set::{Constraint, ConstraintSystem};
use std::fmt;

/// Kind of data dependence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// write → read (true/flow)
    Flow,
    /// read → write
    Anti,
    /// write → write
    Output,
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DepKind::Flow => write!(f, "flow"),
            DepKind::Anti => write!(f, "anti"),
            DepKind::Output => write!(f, "output"),
        }
    }
}

/// Interval bounds of one component of the distance vector
/// (`dst_level − src_level`). `None` = unbounded / outside the probe
/// window, i.e. unknown in that direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistBound {
    pub min: Option<i64>,
    pub max: Option<i64>,
}

impl DistBound {
    pub fn exact(v: i64) -> Self {
        DistBound {
            min: Some(v),
            max: Some(v),
        }
    }

    pub fn is_exactly(&self, v: i64) -> bool {
        self.min == Some(v) && self.max == Some(v)
    }
}

impl fmt::Display for DistBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.min, self.max) {
            (Some(a), Some(b)) if a == b => write!(f, "{a}"),
            (a, b) => write!(
                f,
                "[{}, {}]",
                a.map_or("-inf".into(), |v| v.to_string()),
                b.map_or("+inf".into(), |v| v.to_string())
            ),
        }
    }
}

/// One dependence between two statement instances of the (shared) nest.
#[derive(Debug, Clone)]
pub struct Dependence {
    pub kind: DepKind,
    pub src_stmt: usize,
    pub dst_stmt: usize,
    pub array: String,
    /// Loop level (0-based) that carries the dependence; `None` for
    /// loop-independent (same iteration, textual order).
    pub level: Option<usize>,
    /// Distance bounds per loop dimension of the nest.
    pub dist: Vec<DistBound>,
}

impl fmt::Display for Dependence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} dep on {}: S{} -> S{} @ {} dist (",
            self.kind,
            self.array,
            self.src_stmt,
            self.dst_stmt,
            self.level.map_or("indep".into(), |l| format!("level {l}")),
        )?;
        for (i, d) in self.dist.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

/// Probe window for distance bounds (larger values cost more FM probes).
const DIST_PROBE_LIMIT: i64 = 64;

/// Compute all dependences of a SCoP.
pub fn analyze(scop: &Scop) -> Vec<Dependence> {
    let mut deps = Vec::new();
    let n = scop.stmts.len();
    for src in 0..n {
        for dst in 0..n {
            for (kind, src_accs, dst_accs) in [
                (
                    DepKind::Flow,
                    &scop.stmts[src].writes,
                    &scop.stmts[dst].reads,
                ),
                (
                    DepKind::Anti,
                    &scop.stmts[src].reads,
                    &scop.stmts[dst].writes,
                ),
                (
                    DepKind::Output,
                    &scop.stmts[src].writes,
                    &scop.stmts[dst].writes,
                ),
            ] {
                for a in src_accs.iter() {
                    for b in dst_accs.iter() {
                        if a.array != b.array || a.indices.len() != b.indices.len() {
                            continue;
                        }
                        test_pair(scop, kind, src, dst, a, b, &mut deps);
                    }
                }
            }
        }
    }
    deps
}

fn src_name(n: &str) -> String {
    format!("{n}__s")
}

fn dst_name(n: &str) -> String {
    format!("{n}__d")
}

/// Build the base dependence system (domains + subscript equality) for a
/// pair of accesses; levels are added by the caller.
fn base_system(scop: &Scop, a: &Access, b: &Access) -> ConstraintSystem {
    let mut sys = ConstraintSystem::new();
    sys.extend(&scop.domain_renamed(&|n| src_name(n)));
    sys.extend(&scop.domain_renamed(&|n| dst_name(n)));
    let iters: std::collections::BTreeSet<&str> =
        scop.loops.iter().map(|l| l.name.as_str()).collect();
    let rename_iters = |e: &AffineExpr, f: &dyn Fn(&str) -> String| {
        e.rename(&|n| {
            if iters.contains(n) {
                f(n)
            } else {
                n.to_string()
            }
        })
    };
    for (ia, ib) in a.indices.iter().zip(&b.indices) {
        let ea = rename_iters(ia, &src_name);
        let eb = rename_iters(ib, &dst_name);
        sys.push(Constraint::eq(&ea, &eb));
    }
    sys
}

fn test_pair(
    scop: &Scop,
    kind: DepKind,
    src: usize,
    dst: usize,
    a: &Access,
    b: &Access,
    out: &mut Vec<Dependence>,
) {
    let depth = scop.depth();
    let diff = |level: usize| {
        let name = &scop.loops[level].name;
        AffineExpr::var(dst_name(name)).sub(&AffineExpr::var(src_name(name)))
    };

    // Carried at level ℓ: d_0..d_{ℓ-1} = 0, d_ℓ >= 1.
    for level in 0..depth {
        let mut sys = base_system(scop, a, b);
        for l in 0..level {
            sys.push(Constraint::eq0(diff(l)));
        }
        sys.push(Constraint::ge(&diff(level), &AffineExpr::constant(1)));
        if sys.is_satisfiable() {
            let dist = (0..depth)
                .map(|l| {
                    let (min, max) = bounds_of(&sys, &diff(l), DIST_PROBE_LIMIT);
                    DistBound { min, max }
                })
                .collect();
            out.push(Dependence {
                kind,
                src_stmt: src,
                dst_stmt: dst,
                array: a.array.clone(),
                level: Some(level),
                dist,
            });
        }
    }

    // Loop-independent: all distances 0, src textually before dst (or a
    // write/read pair within the same statement — intra-statement flow is
    // not a parallelism obstacle and is skipped).
    if src < dst {
        let mut sys = base_system(scop, a, b);
        for l in 0..depth {
            sys.push(Constraint::eq0(diff(l)));
        }
        if sys.is_satisfiable() {
            out.push(Dependence {
                kind,
                src_stmt: src,
                dst_stmt: dst,
                array: a.array.clone(),
                level: None,
                dist: vec![DistBound::exact(0); depth],
            });
        }
    }
}

/// Convenience: is loop level `l` parallel under the *original* schedule,
/// i.e. does no dependence carry at that level?
pub fn parallel_levels(scop: &Scop, deps: &[Dependence]) -> Vec<bool> {
    let mut parallel = vec![true; scop.depth()];
    for d in deps {
        if let Some(l) = d.level {
            parallel[l] = false;
        }
    }
    parallel
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract_scop;
    use cfront::ast::{Stmt, StmtKind};
    use cfront::parser::parse;

    fn scop_of(src: &str) -> Scop {
        let unit = parse(src).unit;
        let mut found: Option<Stmt> = None;
        for f in unit.functions() {
            if let Some(body) = &f.body {
                for s in &body.stmts {
                    s.walk(&mut |st| {
                        if found.is_none() && matches!(st.kind, StmtKind::For { .. }) {
                            found = Some(st.clone());
                        }
                    });
                }
            }
        }
        extract_scop(&found.expect("for loop")).expect("scop")
    }

    #[test]
    fn matmul_writes_are_independent() {
        let scop = scop_of(
            "float** C;\nvoid f() {\n\
             for (int i = 0; i < 64; i++)\n\
                 for (int j = 0; j < 64; j++)\n\
                     C[i][j] = tmpConst_dot_0;\n}",
        );
        let deps = analyze(&scop);
        assert!(deps.is_empty(), "{deps:?}");
        assert_eq!(parallel_levels(&scop, &deps), vec![true, true]);
    }

    #[test]
    fn jacobi_two_arrays_has_no_carried_deps() {
        let scop = scop_of(
            "void f(float** a, float** b) {\n\
             for (int i = 1; i < 63; i++)\n\
                 for (int j = 1; j < 63; j++)\n\
                     b[i][j] = a[i - 1][j] + a[i + 1][j] + a[i][j - 1] + a[i][j + 1];\n}",
        );
        let deps = analyze(&scop);
        assert!(deps.is_empty(), "{deps:?}");
    }

    #[test]
    fn seidel_in_place_stencil_carries_both_levels() {
        // a[i][j] = a[i-1][j] + a[i][j-1]: flow deps (1,0) and (0,1).
        let scop = scop_of(
            "void f(float** a) {\n\
             for (int i = 1; i < 64; i++)\n\
                 for (int j = 1; j < 64; j++)\n\
                     a[i][j] = a[i - 1][j] + a[i][j - 1];\n}",
        );
        let deps = analyze(&scop);
        let carried: Vec<Option<usize>> = deps.iter().map(|d| d.level).collect();
        assert!(carried.contains(&Some(0)), "{deps:?}");
        assert!(carried.contains(&Some(1)), "{deps:?}");
        assert_eq!(parallel_levels(&scop, &deps), vec![false, false]);

        // The (1,0) flow dep must have exact distance (1,0).
        let d10 = deps
            .iter()
            .find(|d| d.kind == DepKind::Flow && d.level == Some(0) && d.dist[0].is_exactly(1))
            .expect("flow dep at level 0");
        assert!(d10.dist[1].is_exactly(0) || d10.dist[1].min.is_some());
    }

    #[test]
    fn fig2_skew_example_distances() {
        // The paper's Fig. 2 shape: deps (1,0) and (1,-1) make rectangular
        // tiling of the original space invalid.
        let scop = scop_of(
            "void f(float** a) {\n\
             for (int i = 1; i < 64; i++)\n\
                 for (int j = 1; j < 63; j++)\n\
                     a[i][j] = a[i - 1][j] + a[i - 1][j + 1];\n}",
        );
        let deps = analyze(&scop);
        assert!(!deps.is_empty());
        // All carried at level 0 (the i loop), with j-distance min of -1.
        let flows: Vec<&Dependence> = deps.iter().filter(|d| d.kind == DepKind::Flow).collect();
        assert!(flows.iter().all(|d| d.level == Some(0)), "{deps:?}");
        let has_neg_j = flows.iter().any(|d| d.dist[1].min == Some(-1));
        assert!(has_neg_j, "{deps:?}");
        // The j loop itself carries nothing → parallel at fixed i.
        assert_eq!(parallel_levels(&scop, &deps), vec![false, true]);
    }

    #[test]
    fn reduction_scalar_carries_innermost() {
        let scop = scop_of(
            "void f(float* a) { float res; for (int i = 0; i < 8; i++) res = res + a[i]; }",
        );
        let deps = analyze(&scop);
        assert!(deps.iter().any(|d| d.level == Some(0)), "{deps:?}");
        assert_eq!(parallel_levels(&scop, &deps), vec![false]);
    }

    #[test]
    fn one_dim_shift_distance() {
        let scop = scop_of("void f(float* a) { for (int i = 0; i < 63; i++) a[i] = a[i + 1]; }");
        let deps = analyze(&scop);
        // Anti dependence: read a[i+1] then write a[i+1] one iteration later.
        let anti = deps
            .iter()
            .find(|d| d.kind == DepKind::Anti)
            .expect("anti dep");
        assert_eq!(anti.level, Some(0));
        assert!(anti.dist[0].is_exactly(1), "{anti}");
        // No flow dep in this direction.
        assert!(deps.iter().all(|d| d.kind != DepKind::Flow), "{deps:?}");
    }

    #[test]
    fn loop_independent_dep_between_statements() {
        let scop = scop_of(
            "void f(float* a, float* b) {\n\
             for (int i = 0; i < 8; i++) {\n\
                 a[i] = i;\n\
                 b[i] = a[i] * 2;\n\
             }\n}",
        );
        let deps = analyze(&scop);
        let indep = deps
            .iter()
            .find(|d| d.level.is_none())
            .expect("loop-independent dep");
        assert_eq!(indep.kind, DepKind::Flow);
        assert_eq!(indep.src_stmt, 0);
        assert_eq!(indep.dst_stmt, 1);
        // Loop-independent deps do not block parallelism.
        assert_eq!(parallel_levels(&scop, &deps), vec![true]);
    }

    #[test]
    fn parametric_bounds_still_analyzable() {
        let scop =
            scop_of("void f(int n, float* a) { for (int i = 1; i < n; i++) a[i] = a[i - 1]; }");
        let deps = analyze(&scop);
        let flow = deps.iter().find(|d| d.kind == DepKind::Flow).expect("flow");
        assert_eq!(flow.level, Some(0));
        assert!(flow.dist[0].is_exactly(1), "{flow}");
    }
}
