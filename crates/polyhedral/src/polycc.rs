//! `polycc` — the driver entry of the polyhedral stage (what the PluTo
//! distribution's `polycc` script does): find `#pragma scop` regions,
//! model, analyze, schedule, and replace them with transformed, annotated
//! loop nests.
//!
//! Imperfect nests degrade gracefully: if the marked loop itself cannot be
//! modelled (e.g. the heat application's time loop whose body holds two
//! spatial nests and a pointer swap), the driver keeps the loop sequential
//! and recurses into its children, transforming every inner nest it *can*
//! model — which is exactly the behaviour the paper's evaluation relies on.

use crate::codegen::{generate, CodegenOptions, Generated};
use crate::deps::analyze;
use crate::extract::extract_scop;
use crate::schedule::{compute_schedule, Transform};
use crate::sica::{select_tile_size, SicaParams};
use cfront::ast::*;
use cfront::diag::Diagnostics;
use cfront::printer::{print_expr, print_stmt};
use cfront::visit::visit_exprs_mut;
use std::collections::{HashMap, HashSet};

/// Marker pragma prepended to every transformed nest. It survives the
/// print → reparse round trip as a plain `#pragma affine` statement, which
/// the interpreter's lowering reads to enable schedule-aware (hoisted-bound,
/// single-dispatch) loop execution for the nest.
pub const AFFINE_MARKER: &str = "pragma affine";

/// Options for the whole polyhedral stage.
#[derive(Debug, Clone, Default)]
pub struct PolyccOptions {
    /// Base codegen options (omp / explicit tile).
    pub codegen: CodegenOptions,
    /// SICA mode: auto-select tile sizes from the cache model and add SIMD
    /// pragmas (overrides `codegen.tile`/`codegen.sica`).
    pub sica: Option<SicaParams>,
    /// `--poly-unmarked`: also route *bare-body* `for` nests (loops hanging
    /// directly off `if`/`while`/`for`, where no `#pragma scop` sibling can
    /// exist) through the polyhedral stage, provided every function they
    /// call is in this verified-pure set — the precondition for an
    /// `Independent` race verdict.
    pub unmarked: Option<HashSet<String>>,
}

/// What happened to one marked region.
#[derive(Debug)]
pub enum RegionOutcome {
    Transformed {
        depth: usize,
        parallelized: bool,
        tiled: bool,
        skewed: bool,
        /// Original iterator → new-iterator expression, for reinsertion of
        /// the substituted pure calls in this region.
        iter_map: HashMap<String, Expr>,
        /// `tmpConst_*` placeholders appearing in the region.
        placeholders: Vec<String>,
        transform: Transform,
    },
    /// Left sequential (model extraction failed); children may still have
    /// been transformed (they appear as separate outcomes).
    Skipped { reason: String },
}

/// Report of a `polycc` run.
#[derive(Debug, Default)]
pub struct PolyccReport {
    pub regions: Vec<RegionOutcome>,
    /// Adjacent compatible nests merged by the fusion pass.
    pub fused: usize,
    /// Loop bounds hoisted to `__pc_ub*` temporaries ahead of their nests.
    pub hoisted: usize,
    /// Invariant row pointers hoisted to `__pc_row*` temporaries out of
    /// inner loops (strength reduction of two-level subscript streams).
    pub rows_hoisted: usize,
    /// True when any generated code uses the `__pc_*` helpers; the caller
    /// must prepend [`crate::codegen::HELPER_DEFS`].
    pub needs_helpers: bool,
    pub diags: Diagnostics,
}

impl PolyccReport {
    pub fn transformed_count(&self) -> usize {
        self.regions
            .iter()
            .filter(|r| matches!(r, RegionOutcome::Transformed { .. }))
            .count()
    }

    pub fn parallelized_count(&self) -> usize {
        self.regions
            .iter()
            .filter(|r| {
                matches!(
                    r,
                    RegionOutcome::Transformed {
                        parallelized: true,
                        ..
                    }
                )
            })
            .count()
    }

    pub fn tiled_count(&self) -> usize {
        self.regions
            .iter()
            .filter(|r| matches!(r, RegionOutcome::Transformed { tiled: true, .. }))
            .count()
    }

    /// Merge all per-region iterator maps keyed by placeholder name.
    pub fn placeholder_iter_maps(&self) -> HashMap<String, HashMap<String, Expr>> {
        let mut out = HashMap::new();
        for r in &self.regions {
            if let RegionOutcome::Transformed {
                iter_map,
                placeholders,
                ..
            } = r
            {
                for p in placeholders {
                    out.insert(p.clone(), iter_map.clone());
                }
            }
        }
        out
    }
}

/// Run the polyhedral stage over a marked translation unit.
pub fn run_polycc(unit: &mut TranslationUnit, opts: PolyccOptions) -> PolyccReport {
    let mut report = PolyccReport::default();
    let rows = row_pointer_globals(unit);
    for item in &mut unit.items {
        let Item::Function(f) = item else { continue };
        let Some(body) = &mut f.body else { continue };
        process_block(body, &opts, &mut report);
    }
    // Strength-reduce after all regions settle: transformed nests are
    // identifiable by their affine markers wherever they ended up, so a
    // whole-unit sweep avoids threading state through the region walk.
    if !rows.is_empty() {
        for item in &mut unit.items {
            let Item::Function(f) = item else { continue };
            let Some(body) = &mut f.body else { continue };
            hoist_rows_block(body, &rows, &mut report);
        }
    }
    report
}

/// Recursive sweep that applies [`hoist_rows`] to every statement list in
/// a function body (markers can sit at any block depth — e.g. spatial
/// nests transformed inside a rejected time loop).
fn hoist_rows_block(b: &mut Block, rows: &HashMap<String, Type>, report: &mut PolyccReport) {
    hoist_rows(&mut b.stmts, rows, report);
    for s in &mut b.stmts {
        hoist_rows_stmt(s, rows, report);
    }
}

fn hoist_rows_stmt(s: &mut Stmt, rows: &HashMap<String, Type>, report: &mut PolyccReport) {
    match &mut s.kind {
        StmtKind::Block(b) => hoist_rows_block(b, rows, report),
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => {
            hoist_rows_stmt(then_branch, rows, report);
            if let Some(e) = else_branch {
                hoist_rows_stmt(e, rows, report);
            }
        }
        StmtKind::While { body, .. }
        | StmtKind::DoWhile { body, .. }
        | StmtKind::For { body, .. } => hoist_rows_stmt(body, rows, report),
        _ => {}
    }
}

/// Is this pragma text a user `#pragma omp parallel for` header?
fn is_omp_parallel_for(text: &str) -> bool {
    let t = text.trim();
    t.starts_with("pragma omp parallel for") || t.starts_with("pragma omp for")
}

/// The `schedule(...)` clause substring of an omp pragma, if present.
fn schedule_clause(text: &str) -> Option<&str> {
    let start = text.find("schedule(")?;
    let rest = &text[start..];
    let end = rest.find(')')?;
    Some(&rest[..=end])
}

/// Append the user's `schedule(...)` clause to the first generated
/// `omp parallel for` pragma in the replacement (searching nested blocks:
/// the parallel level of a tiled nest may not be the outermost one).
fn carry_schedule(stmts: &mut [Stmt], user_pragma: &str) {
    let Some(clause) = schedule_clause(user_pragma) else {
        return;
    };
    fn visit(stmts: &mut [Stmt], clause: &str) -> bool {
        for s in stmts {
            let inner = match &mut s.kind {
                StmtKind::Pragma(p) if is_omp_parallel_for(p) => {
                    p.push(' ');
                    p.push_str(clause);
                    return true;
                }
                StmtKind::Block(b) => &mut b.stmts[..],
                StmtKind::For { body, .. } => std::slice::from_mut(&mut **body),
                _ => continue,
            };
            if visit(inner, clause) {
                return true;
            }
        }
        false
    }
    visit(stmts, clause);
}

/// Find `[scop-pragma, for, endscop-pragma]` triples — and unmarked
/// `[omp-pragma, for]` pairs, the paper's input form — in a block and
/// replace them with transformed code, then fuse and bound-hoist the
/// resulting nests.
fn process_block(block: &mut Block, opts: &PolyccOptions, report: &mut PolyccReport) {
    let mut i = 0;
    while i < block.stmts.len() {
        let is_scop_open = matches!(
            &block.stmts[i].kind,
            StmtKind::Pragma(p) if p.trim() == "pragma scop"
        );
        if is_scop_open {
            // Expect For at i+1 and endscop at i+2.
            let ok_shape = i + 2 < block.stmts.len()
                && matches!(block.stmts[i + 1].kind, StmtKind::For { .. })
                && matches!(
                    &block.stmts[i + 2].kind,
                    StmtKind::Pragma(p) if p.trim() == "pragma endscop"
                );
            if !ok_shape {
                report.regions.push(RegionOutcome::Skipped {
                    reason: "malformed scop region (pragma without loop)".into(),
                });
                i += 1;
                continue;
            }

            // A user `omp parallel for` header directly above the markers
            // belongs to this nest: consume it (its schedule clause carries
            // over) instead of leaving a duplicate pragma on the output.
            let user_omp = if i > 0 {
                match &block.stmts[i - 1].kind {
                    StmtKind::Pragma(p) if is_omp_parallel_for(p) => Some(p.clone()),
                    _ => None,
                }
            } else {
                None
            };

            let mut loop_stmt = block.stmts[i + 1].clone();
            let snapshot = (report.regions.len(), report.needs_helpers);
            let replacement = transform_nest(&mut loop_stmt, opts, report);
            let parallelized = matches!(
                report.regions.last(),
                Some(RegionOutcome::Transformed {
                    parallelized: true,
                    ..
                })
            );
            match (replacement, user_omp) {
                (Some(mut stmts), Some(pragma)) if parallelized => {
                    carry_schedule(&mut stmts, &pragma);
                    block.stmts.drain(i - 1..i + 3);
                    let count = stmts.len();
                    for (off, s) in stmts.into_iter().enumerate() {
                        block.stmts.insert(i - 1 + off, s);
                    }
                    i = i - 1 + count;
                }
                (Some(_), Some(_)) => {
                    // The user asserted parallelism but the legality-checked
                    // schedule stayed sequential: keep the literal omp nest
                    // rather than silently serializing it.
                    report.regions.truncate(snapshot.0);
                    report.needs_helpers = snapshot.1;
                    report.regions.push(RegionOutcome::Skipped {
                        reason: "user-parallel nest not auto-parallelized; kept literal".into(),
                    });
                    block.stmts.drain(i..i + 3);
                    block.stmts.insert(i, loop_stmt);
                    descend(&mut block.stmts[i], opts, report);
                    i += 1;
                }
                (Some(stmts), None) => {
                    block.stmts.drain(i..i + 3);
                    let count = stmts.len();
                    for (off, s) in stmts.into_iter().enumerate() {
                        block.stmts.insert(i + off, s);
                    }
                    i += count;
                }
                (None, _) => {
                    block.stmts.drain(i..i + 3);
                    block.stmts.insert(i, loop_stmt);
                    i += 1;
                }
            }
            continue;
        }

        // Unmarked `omp parallel for` nest: treat it as an implicit SCoP.
        let is_unmarked_omp = matches!(
            &block.stmts[i].kind,
            StmtKind::Pragma(p) if is_omp_parallel_for(p)
        ) && i + 1 < block.stmts.len()
            && matches!(block.stmts[i + 1].kind, StmtKind::For { .. });
        if is_unmarked_omp {
            let StmtKind::Pragma(pragma) = block.stmts[i].kind.clone() else {
                unreachable!("matched a pragma");
            };
            let mut loop_stmt = block.stmts[i + 1].clone();
            let snapshot = (report.regions.len(), report.needs_helpers);
            let replacement = transform_nest(&mut loop_stmt, opts, report);
            let parallelized = matches!(
                report.regions.last(),
                Some(RegionOutcome::Transformed {
                    parallelized: true,
                    ..
                })
            );
            match replacement {
                Some(mut stmts) if parallelized => {
                    carry_schedule(&mut stmts, &pragma);
                    block.stmts.drain(i..i + 2);
                    let count = stmts.len();
                    for (off, s) in stmts.into_iter().enumerate() {
                        block.stmts.insert(i + off, s);
                    }
                    i += count;
                }
                Some(_) => {
                    report.regions.truncate(snapshot.0);
                    report.needs_helpers = snapshot.1;
                    report.regions.push(RegionOutcome::Skipped {
                        reason: "user-parallel nest not auto-parallelized; kept literal".into(),
                    });
                    descend(&mut block.stmts[i + 1], opts, report);
                    i += 2;
                }
                None => {
                    // Children may have been transformed in place.
                    block.stmts[i + 1] = loop_stmt;
                    i += 2;
                }
            }
            continue;
        }

        // Recurse into nested structures.
        descend(&mut block.stmts[i], opts, report);
        i += 1;
    }
    finish_block(&mut block.stmts, report);
}

/// Post-passes over a finished statement list: fuse adjacent compatible
/// transformed nests, then hoist non-trivial loop bounds.
fn finish_block(stmts: &mut Vec<Stmt>, report: &mut PolyccReport) {
    fuse_adjacent(stmts, report);
    hoist_bounds(stmts, report);
}

fn descend(stmt: &mut Stmt, opts: &PolyccOptions, report: &mut PolyccReport) {
    match &mut stmt.kind {
        StmtKind::Block(b) => process_block(b, opts, report),
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => {
            maybe_unmarked(then_branch, opts, report);
            if let Some(e) = else_branch {
                maybe_unmarked(e, opts, report);
            }
        }
        StmtKind::While { body, .. }
        | StmtKind::DoWhile { body, .. }
        | StmtKind::For { body, .. } => maybe_unmarked(body, opts, report),
        _ => {}
    }
}

/// `--poly-unmarked`: a bare-body `for` nest (no surrounding block, so it
/// could never have received scop markers) whose calls are all verified
/// pure is routed through the transformer like an implicit SCoP.
fn maybe_unmarked(stmt: &mut Stmt, opts: &PolyccOptions, report: &mut PolyccReport) {
    if let Some(pure) = &opts.unmarked {
        if matches!(stmt.kind, StmtKind::For { .. }) && calls_all_pure(stmt, pure) {
            let mut child = stmt.clone();
            if let Some(mut new_stmts) = transform_nest(&mut child, opts, report) {
                finish_block(&mut new_stmts, report);
                *stmt = Stmt::new(
                    StmtKind::Block(Block {
                        stmts: new_stmts,
                        span: stmt.span,
                    }),
                    stmt.span,
                );
            } else {
                *stmt = child; // children may have changed
            }
            return;
        }
    }
    descend(stmt, opts, report)
}

/// Every called function in the subtree is in the verified-pure set.
fn calls_all_pure(stmt: &Stmt, pure: &HashSet<String>) -> bool {
    let mut ok = true;
    stmt.walk_exprs(&mut |e| {
        if let ExprKind::Call { callee, .. } = &e.kind {
            match &callee.kind {
                ExprKind::Ident(name) if pure.contains(name) => {}
                _ => ok = false,
            }
        }
    });
    ok
}

/// Transform one marked nest. Returns the replacement statements, or `None`
/// to keep the original loop (possibly with transformed children, already
/// rewritten in-place through `loop_stmt`).
fn transform_nest(
    loop_stmt: &mut Stmt,
    opts: &PolyccOptions,
    report: &mut PolyccReport,
) -> Option<Vec<Stmt>> {
    match extract_scop(loop_stmt) {
        Ok(scop) => {
            let deps = analyze(&scop);
            let transform = compute_schedule(&scop, &deps);

            // Resolve codegen options (SICA overrides).
            let mut cg = opts.codegen;
            if let Some(p) = opts.sica {
                cg.sica = true;
                if cg.tile.is_none() {
                    cg.tile = select_tile_size(&scop, transform.band, p);
                }
            }

            match generate(&scop, &transform, cg) {
                Ok(Generated {
                    mut stmts,
                    iter_map,
                    parallelized,
                    tiled,
                    needs_helpers,
                }) => {
                    report.needs_helpers |= needs_helpers;
                    let placeholders = collect_placeholders(&stmts);
                    report.regions.push(RegionOutcome::Transformed {
                        depth: scop.depth(),
                        parallelized,
                        tiled,
                        skewed: transform.skewed,
                        iter_map,
                        placeholders,
                        transform,
                    });
                    // Tag the nest for schedule-aware lowering on the VM.
                    stmts.insert(
                        0,
                        Stmt::new(StmtKind::Pragma(AFFINE_MARKER.into()), loop_stmt.span),
                    );
                    Some(stmts)
                }
                Err(diags) => {
                    let reason = diags
                        .items()
                        .first()
                        .map(|d| d.message.clone())
                        .unwrap_or_else(|| "code generation failed".into());
                    report.diags.extend(diags);
                    report.regions.push(RegionOutcome::Skipped { reason });
                    None
                }
            }
        }
        Err(diags) => {
            // Imperfect / non-affine: keep the loop sequential but try the
            // children (the heat time loop pattern).
            let reason = diags
                .items()
                .first()
                .map(|d| d.message.clone())
                .unwrap_or_else(|| "not a static control part".into());
            report.regions.push(RegionOutcome::Skipped { reason });
            let StmtKind::For { body, .. } = &mut loop_stmt.kind else {
                return None;
            };
            transform_children(body, opts, report);
            None
        }
    }
}

/// Recursively attempt every child for-nest of a body.
fn transform_children(body: &mut Stmt, opts: &PolyccOptions, report: &mut PolyccReport) {
    match &mut body.kind {
        StmtKind::Block(b) => {
            let mut i = 0;
            while i < b.stmts.len() {
                if matches!(b.stmts[i].kind, StmtKind::For { .. }) {
                    let mut child = b.stmts[i].clone();
                    if let Some(new_stmts) = transform_nest(&mut child, opts, report) {
                        b.stmts.remove(i);
                        let count = new_stmts.len();
                        for (off, s) in new_stmts.into_iter().enumerate() {
                            b.stmts.insert(i + off, s);
                        }
                        i += count;
                        continue;
                    } else {
                        b.stmts[i] = child; // children may have changed
                    }
                } else {
                    descend(&mut b.stmts[i], opts, report);
                }
                i += 1;
            }
            finish_block(&mut b.stmts, report);
        }
        StmtKind::For { .. } => {
            let mut child = body.clone();
            if let Some(mut new_stmts) = transform_nest(&mut child, opts, report) {
                finish_block(&mut new_stmts, report);
                // Single-statement body replaced by a block.
                *body = Stmt::new(
                    StmtKind::Block(Block {
                        stmts: new_stmts,
                        span: body.span,
                    }),
                    body.span,
                );
            } else {
                *body = child;
            }
        }
        _ => {}
    }
}

// ---------------------------------------------------------------------------
// Fusion: merge adjacent compatible transformed nests
// ---------------------------------------------------------------------------

fn is_affine_marker(s: &Stmt) -> bool {
    matches!(&s.kind, StmtKind::Pragma(p) if p.trim() == AFFINE_MARKER)
}

/// One transformed-nest group in a statement list: the affine marker,
/// an optional pragma (the generated `omp parallel for` header), and the
/// loop itself.
struct NestGroup {
    start: usize,
    pragma: Option<String>,
    for_idx: usize,
}

fn group_at(stmts: &[Stmt], i: usize) -> Option<NestGroup> {
    if i >= stmts.len() || !is_affine_marker(&stmts[i]) {
        return None;
    }
    let mut j = i + 1;
    let mut pragma = None;
    if let Some(StmtKind::Pragma(p)) = stmts.get(j).map(|s| &s.kind) {
        pragma = Some(p.clone());
        j += 1;
    }
    if j < stmts.len() && matches!(stmts[j].kind, StmtKind::For { .. }) {
        Some(NestGroup {
            start: i,
            pragma,
            for_idx: j,
        })
    } else {
        None
    }
}

/// Canonical text of a For header (body emptied), for header equality.
fn for_header_key(s: &Stmt) -> Option<String> {
    if !matches!(s.kind, StmtKind::For { .. }) {
        return None;
    }
    let mut shell = s.clone();
    if let StmtKind::For { body, .. } = &mut shell.kind {
        **body = Stmt::new(
            StmtKind::Block(Block {
                stmts: vec![],
                span: body.span,
            }),
            body.span,
        );
    }
    Some(print_stmt(&shell))
}

/// A loop body as a flat statement list (unwrapping one Block level).
fn body_stmts(body: &Stmt) -> Vec<Stmt> {
    match &body.kind {
        StmtKind::Block(b) => b.stmts.clone(),
        _ => vec![body.clone()],
    }
}

/// Legality-checked fusion of two same-header nests: model the fused nest
/// and refuse if any dependence points from a statement of the second nest
/// back into the first — such a pair ran first-nest-then-second in the
/// original program, so the fused interleaving would reverse it. Imperfect
/// fused bodies (multi-level nests) fail extraction and are refused too.
fn try_fuse(f1: &Stmt, f2: &Stmt) -> Option<Stmt> {
    let (StmtKind::For { body: b1, .. }, StmtKind::For { body: b2, .. }) = (&f1.kind, &f2.kind)
    else {
        return None;
    };
    let first = body_stmts(b1);
    let k1 = first.len();
    let mut merged = first;
    merged.extend(body_stmts(b2));

    let mut fused = f1.clone();
    let StmtKind::For { body, .. } = &mut fused.kind else {
        unreachable!("cloned a For");
    };
    **body = Stmt::new(
        StmtKind::Block(Block {
            stmts: merged,
            span: f1.span,
        }),
        f1.span,
    );

    let scop = extract_scop(&fused).ok()?;
    let deps = analyze(&scop);
    if deps.iter().any(|d| d.src_stmt >= k1 && d.dst_stmt < k1) {
        return None;
    }
    Some(fused)
}

/// Fuse runs of adjacent transformed nests with textually equal headers
/// and identical pragmas. Fused parallel nests collapse into a single
/// `omp` region — one pool launch and one join barrier instead of two.
fn fuse_adjacent(stmts: &mut Vec<Stmt>, report: &mut PolyccReport) {
    let mut i = 0;
    while i < stmts.len() {
        let Some(g1) = group_at(stmts, i) else {
            i += 1;
            continue;
        };
        let Some(g2) = group_at(stmts, g1.for_idx + 1) else {
            i = g1.for_idx + 1;
            continue;
        };
        let headers_match = g1.pragma == g2.pragma
            && match (
                for_header_key(&stmts[g1.for_idx]),
                for_header_key(&stmts[g2.for_idx]),
            ) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            };
        let fused = if headers_match {
            try_fuse(&stmts[g1.for_idx], &stmts[g2.for_idx])
        } else {
            None
        };
        match fused {
            Some(f) => {
                stmts[g1.for_idx] = f;
                stmts.drain(g1.for_idx + 1..g2.for_idx + 1);
                report.fused += 1;
                // Stay on this group: it may fuse with the next one too.
            }
            None => i = g1.for_idx + 1,
        }
    }
}

// ---------------------------------------------------------------------------
// Bound hoisting: evaluate non-trivial loop bounds once, ahead of the nest
// ---------------------------------------------------------------------------

/// Only expressions we generated ourselves are hoisted: affine arithmetic
/// over identifiers and the pure `__pc_*` division/minmax helpers. Anything
/// else (user calls, side effects) stays in place.
fn hoistable_expr(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::IntLit(_) | ExprKind::Ident(_) => true,
        ExprKind::Unary(UnOp::Neg, inner) => hoistable_expr(inner),
        ExprKind::Binary(_, l, r) => hoistable_expr(l) && hoistable_expr(r),
        ExprKind::Call { callee, args } => {
            matches!(&callee.kind, ExprKind::Ident(n) if n.starts_with("__pc_"))
                && args.iter().all(hoistable_expr)
        }
        _ => false,
    }
}

fn expr_idents(e: &Expr, out: &mut HashSet<String>) {
    match &e.kind {
        ExprKind::Ident(n) => {
            out.insert(n.clone());
        }
        ExprKind::Unary(_, inner) => expr_idents(inner, out),
        ExprKind::Binary(_, l, r) => {
            expr_idents(l, out);
            expr_idents(r, out);
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                expr_idents(a, out);
            }
        }
        _ => {}
    }
}

/// Base identifier written through an assignment target.
fn written_base(e: &Expr) -> Option<&str> {
    match &e.kind {
        ExprKind::Ident(n) => Some(n),
        ExprKind::Index(base, _) => written_base(base),
        ExprKind::Member { base, .. } => written_base(base),
        ExprKind::Unary(_, inner) => written_base(inner),
        _ => None,
    }
}

/// Does the subtree write any of `names`? (Assignments and inc/dec.)
fn writes_any(stmt: &Stmt, names: &HashSet<String>) -> bool {
    let mut hit = false;
    stmt.walk_exprs(&mut |e| {
        let target = match &e.kind {
            ExprKind::Assign(_, lhs, _) => written_base(lhs),
            ExprKind::Unary(UnOp::PreInc | UnOp::PreDec | UnOp::PostInc | UnOp::PostDec, t) => {
                written_base(t)
            }
            _ => None,
        };
        if let Some(n) = target {
            if names.contains(n) {
                hit = true;
            }
        }
    });
    hit
}

fn int_decl(name: &str, init: Expr, span: cfront::span::Span) -> Stmt {
    Stmt::new(
        StmtKind::Decl(Declaration {
            storage: vec![],
            declarators: vec![Declarator {
                name: name.to_string(),
                ty: Type::int(),
                array_dims: vec![],
                init: Some(init),
                span,
            }],
            span,
        }),
        span,
    )
}

/// Hoist the non-trivial upper bounds of every transformed nest in this
/// statement list: `for (t <= __pc_min(...))` becomes
/// `int __pc_ubK = __pc_min(...); for (t <= __pc_ubK)`, evaluated once per
/// entry of the enclosing loop level instead of once per iteration — and
/// the resulting `iter <= local` condition is what the VM's affine opcode
/// fast path requires.
fn hoist_bounds(stmts: &mut Vec<Stmt>, report: &mut PolyccReport) {
    let mut i = 0;
    while i < stmts.len() {
        let Some(g) = group_at(stmts, i) else {
            i += 1;
            continue;
        };
        let mut decls = Vec::new();
        hoist_for(&mut stmts[g.for_idx], &mut decls, report);
        let n = decls.len();
        for (off, d) in decls.into_iter().enumerate() {
            stmts.insert(g.start + off, d);
        }
        i = g.for_idx + 1 + n;
    }
}

/// Hoist this For's own bound into `decls` (emitted before the nest /
/// pragma run), then recurse into the body, where inner bounds land just
/// inside the enclosing loop (their outer iterators are in scope there).
fn hoist_for(stmt: &mut Stmt, decls: &mut Vec<Stmt>, report: &mut PolyccReport) {
    let mut replacement: Option<(Expr, String)> = None;
    if let StmtKind::For {
        cond: Some(c),
        body,
        ..
    } = &stmt.kind
    {
        if let ExprKind::Binary(BinOp::Le | BinOp::Lt, _, rhs) = &c.kind {
            if !matches!(rhs.kind, ExprKind::Ident(_) | ExprKind::IntLit(_)) && hoistable_expr(rhs)
            {
                let mut names = HashSet::new();
                expr_idents(rhs, &mut names);
                if !writes_any(body, &names) {
                    report.hoisted += 1;
                    let name = format!("__pc_ub{}", report.hoisted);
                    replacement = Some(((**rhs).clone(), name));
                }
            }
        }
    }
    if let Some((ub, name)) = replacement {
        decls.push(int_decl(&name, ub, stmt.span));
        if let StmtKind::For { cond: Some(c), .. } = &mut stmt.kind {
            if let ExprKind::Binary(_, _, rhs) = &mut c.kind {
                **rhs = Expr::new(ExprKind::Ident(name), rhs.span);
            }
        }
    }
    if let StmtKind::For { body, .. } = &mut stmt.kind {
        let span = body.span;
        hoist_in_body(body, span, report);
    }
}

/// Recurse into a loop body: a nested For (bare or behind pragmas in a
/// block) gets its hoisted decls inserted in that block, before any
/// pragma run, so pragma–loop adjacency is preserved.
fn hoist_in_body(body: &mut Stmt, span: cfront::span::Span, report: &mut PolyccReport) {
    match &mut body.kind {
        StmtKind::Block(b) => {
            let mut i = 0;
            while i < b.stmts.len() {
                // A run of pragmas directly above a For belongs to it.
                let mut j = i;
                while j < b.stmts.len() && matches!(b.stmts[j].kind, StmtKind::Pragma(_)) {
                    j += 1;
                }
                if j < b.stmts.len() && matches!(b.stmts[j].kind, StmtKind::For { .. }) {
                    let mut decls = Vec::new();
                    hoist_for(&mut b.stmts[j], &mut decls, report);
                    let n = decls.len();
                    for (off, d) in decls.into_iter().enumerate() {
                        b.stmts.insert(i + off, d);
                    }
                    i = j + n + 1;
                } else {
                    i = j + 1;
                }
            }
        }
        StmtKind::For { .. } => {
            let mut decls = Vec::new();
            hoist_for(body, &mut decls, report);
            if !decls.is_empty() {
                let inner = std::mem::replace(body, Stmt::new(StmtKind::Expr(None), span));
                let mut stmts = decls;
                stmts.push(inner);
                *body = Stmt::new(StmtKind::Block(Block { stmts, span }), span);
            }
        }
        _ => {}
    }
}

// ---------------------------------------------------------------------------
// Row-pointer strength reduction: hoist invariant row loads out of inner loops
// ---------------------------------------------------------------------------

/// Global `T**` declarations eligible for row-pointer hoisting, mapped to
/// their row type (`T*`). Only plain pointer-to-pointer globals qualify:
/// their row table can change only through a direct one-level store
/// (`X[e] = …`) or a store to `X` itself, both of which
/// [`row_unsafe_bases`] detects — element stores through `X[a][b]` cannot
/// move a row.
fn row_pointer_globals(unit: &TranslationUnit) -> HashMap<String, Type> {
    let mut rows = HashMap::new();
    for item in &unit.items {
        let Item::Decl(d) = item else { continue };
        for decl in &d.declarators {
            if decl.ty.ptr.len() >= 2 && decl.array_dims.is_empty() {
                let mut row = decl.ty.clone();
                row.ptr.pop();
                rows.insert(decl.name.clone(), row);
            }
        }
    }
    rows
}

/// Bases whose rows may move inside this nest: assigned directly, written
/// through a one-level subscript, inc/decremented, or address-taken.
fn row_unsafe_bases(nest: &Stmt) -> HashSet<String> {
    let mut bad = HashSet::new();
    nest.walk_exprs(&mut |e| {
        let target = match &e.kind {
            ExprKind::Assign(_, lhs, _) => match &lhs.kind {
                ExprKind::Ident(n) => Some(n.as_str()),
                ExprKind::Index(b, _) => match &b.kind {
                    ExprKind::Ident(n) => Some(n.as_str()),
                    _ => None,
                },
                _ => None,
            },
            ExprKind::Unary(
                UnOp::PreInc | UnOp::PreDec | UnOp::PostInc | UnOp::PostDec | UnOp::AddrOf,
                t,
            ) => written_base(t),
            _ => None,
        };
        if let Some(n) = target {
            bad.insert(n.to_string());
        }
    });
    bad
}

/// Two-level references `X[sub][…]` appearing anywhere under `stmt` whose
/// base qualifies for hoisting, keyed by the printed form of `X[sub]`.
fn collect_row_refs(
    stmt: &Stmt,
    rows: &HashMap<String, Type>,
    bad: &HashSet<String>,
    out: &mut Vec<(String, Expr)>,
) {
    stmt.walk_exprs(&mut |e| {
        if let ExprKind::Index(row_ref, _) = &e.kind {
            if let ExprKind::Index(xb, sub) = &row_ref.kind {
                if let ExprKind::Ident(x) = &xb.kind {
                    if rows.contains_key(x) && !bad.contains(x) && hoistable_expr(sub) {
                        let key = print_expr(row_ref);
                        if !out.iter().any(|(k, _)| k == &key) {
                            out.push((key, (**row_ref).clone()));
                        }
                    }
                }
            }
        }
    });
}

/// Collect row references only from loops *nested below* this body — a
/// reference in the body's own statements iterates with the current level
/// and gains nothing from a hoist here.
fn collect_nested_row_refs(
    body: &Stmt,
    rows: &HashMap<String, Type>,
    bad: &HashSet<String>,
    out: &mut Vec<(String, Expr)>,
) {
    match &body.kind {
        StmtKind::Block(b) => {
            for s in &b.stmts {
                collect_nested_row_refs(s, rows, bad, out);
            }
        }
        StmtKind::For { .. } => collect_row_refs(body, rows, bad, out),
        _ => {}
    }
}

fn for_iter_names(stmt: &Stmt, out: &mut HashSet<String>) {
    if let StmtKind::For { init, .. } = &stmt.kind {
        if let ForInit::Decl(d) = init.as_ref() {
            for dd in &d.declarators {
                out.insert(dd.name.clone());
            }
        }
    }
}

/// Hoist every row reference whose subscript is fully available at this
/// loop level into a `T* __pc_rowK = X[sub];` declaration at the top of
/// the body, rewrite the uses, then recurse into the nested loops.
fn hoist_rows_for(
    stmt: &mut Stmt,
    scope: &HashSet<String>,
    all_iters: &HashSet<String>,
    rows: &HashMap<String, Type>,
    bad: &HashSet<String>,
    report: &mut PolyccReport,
) {
    let mut scope = scope.clone();
    for_iter_names(stmt, &mut scope);
    let StmtKind::For { body, .. } = &mut stmt.kind else {
        return;
    };
    let mut cands = Vec::new();
    collect_nested_row_refs(body, rows, bad, &mut cands);
    let mut decls: Vec<Stmt> = Vec::new();
    for (key, row_ref) in cands {
        let ExprKind::Index(xb, sub) = &row_ref.kind else {
            continue;
        };
        let ExprKind::Ident(x) = &xb.kind else {
            continue;
        };
        let mut ids = HashSet::new();
        expr_idents(sub, &mut ids);
        // Every nest iterator the subscript mentions must already be in
        // scope here; deeper candidates hoist at their own level.
        if !ids
            .iter()
            .all(|n| !all_iters.contains(n) || scope.contains(n))
        {
            continue;
        }
        let row_ty = rows[x].clone();
        report.rows_hoisted += 1;
        let name = format!("__pc_row{}", report.rows_hoisted);
        visit_exprs_mut(body, &mut |e| {
            if print_expr(e) == key {
                *e = Expr::new(ExprKind::Ident(name.clone()), e.span);
            }
        });
        let span = row_ref.span;
        decls.push(Stmt::new(
            StmtKind::Decl(Declaration {
                storage: vec![],
                declarators: vec![Declarator {
                    name,
                    ty: row_ty,
                    array_dims: vec![],
                    init: Some(row_ref),
                    span,
                }],
                span,
            }),
            span,
        ));
    }
    if !decls.is_empty() {
        let span = body.span;
        match &mut body.kind {
            StmtKind::Block(b) => {
                for (off, d) in decls.into_iter().enumerate() {
                    b.stmts.insert(off, d);
                }
            }
            _ => {
                let inner = std::mem::replace(body.as_mut(), Stmt::new(StmtKind::Expr(None), span));
                let mut stmts = decls;
                stmts.push(inner);
                **body = Stmt::new(StmtKind::Block(Block { stmts, span }), span);
            }
        }
    }
    hoist_rows_in_body(body, &scope, all_iters, rows, bad, report);
}

fn hoist_rows_in_body(
    body: &mut Stmt,
    scope: &HashSet<String>,
    all_iters: &HashSet<String>,
    rows: &HashMap<String, Type>,
    bad: &HashSet<String>,
    report: &mut PolyccReport,
) {
    match &mut body.kind {
        StmtKind::Block(b) => {
            for s in &mut b.stmts {
                hoist_rows_in_body(s, scope, all_iters, rows, bad, report);
            }
        }
        StmtKind::For { .. } => hoist_rows_for(body, scope, all_iters, rows, bad, report),
        _ => {}
    }
}

/// Strength-reduce every transformed (affine-marked) nest in this list:
/// invariant row pointers load once at the level where their subscript
/// settles instead of once per inner iteration.
fn hoist_rows(stmts: &mut [Stmt], rows: &HashMap<String, Type>, report: &mut PolyccReport) {
    if rows.is_empty() {
        return;
    }
    let mut i = 0;
    while i < stmts.len() {
        let Some(g) = group_at(stmts, i) else {
            i += 1;
            continue;
        };
        let nest = &mut stmts[g.for_idx];
        let bad = row_unsafe_bases(nest);
        let mut all_iters = HashSet::new();
        nest.walk(&mut |s| for_iter_names(s, &mut all_iters));
        hoist_rows_for(nest, &HashSet::new(), &all_iters, rows, &bad, report);
        i = g.for_idx + 1;
    }
}

/// All `tmpConst_*` identifiers appearing in a statement list.
fn collect_placeholders(stmts: &[Stmt]) -> Vec<String> {
    let mut out = Vec::new();
    for s in stmts {
        s.walk_exprs(&mut |e| {
            if let ExprKind::Ident(name) = &e.kind {
                if name.starts_with("tmpConst_") && !out.contains(name) {
                    out.push(name.clone());
                }
            }
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfront::parser::parse;
    use cfront::printer::print_unit;

    fn run(src: &str, opts: PolyccOptions) -> (TranslationUnit, PolyccReport) {
        let mut unit = parse(src).unit;
        let report = run_polycc(&mut unit, opts);
        (unit, report)
    }

    const MARKED_MATMUL: &str = "\
float **A, **Bt, **C;
int main() {
#pragma scop
    for (int i = 0; i < 4096; i++)
        for (int j = 0; j < 4096; j++)
            C[i][j] = tmpConst_dot_0;
#pragma endscop
    return 0;
}
";

    #[test]
    fn transforms_marked_matmul() {
        let (unit, report) = run(MARKED_MATMUL, PolyccOptions::default());
        assert_eq!(report.transformed_count(), 1);
        assert_eq!(report.parallelized_count(), 1);
        let out = print_unit(&unit);
        assert!(!out.contains("pragma scop"), "{out}");
        assert!(
            out.contains("#pragma omp parallel for private(t2)"),
            "{out}"
        );
        // The invariant row `C[t1]` is strength-reduced out of the inner
        // loop; the store goes through the hoisted pointer.
        assert!(out.contains("float* __pc_row1 = C[t1];"), "{out}");
        assert!(out.contains("__pc_row1[t2]"), "{out}");
        assert_eq!(report.rows_hoisted, 1);
        // Placeholder recorded with its iterator map.
        let maps = report.placeholder_iter_maps();
        let m = &maps["tmpConst_dot_0"];
        assert_eq!(cfront::printer::print_expr(&m["i"]), "t1");
    }

    #[test]
    fn sica_mode_tiles_and_vectorizes() {
        let (unit, report) = run(
            MARKED_MATMUL,
            PolyccOptions {
                codegen: CodegenOptions::default(),
                sica: Some(SicaParams::default()),
                ..Default::default()
            },
        );
        assert_eq!(report.transformed_count(), 1);
        let out = print_unit(&unit);
        assert!(out.contains("t1t"), "sica must tile: {out}");
        assert!(out.contains("#pragma omp simd"), "{out}");
        assert!(report.needs_helpers);
    }

    #[test]
    fn unmarked_loops_are_untouched() {
        let src = "int main() { float a[8]; for (int i = 0; i < 8; i++) a[i] = i; return 0; }";
        let (unit, report) = run(src, PolyccOptions::default());
        assert_eq!(report.transformed_count(), 0);
        let out = print_unit(&unit);
        assert!(out.contains("for (int i = 0; i < 8; i++)"), "{out}");
    }

    #[test]
    fn imperfect_time_loop_transforms_children() {
        // The heat pattern: marked time loop with two inner nests + copy.
        let src = "\
int main() {
    float a[64][64], b[64][64];
#pragma scop
    for (int t = 0; t < 200; t++) {
        for (int i = 1; i < 63; i++)
            for (int j = 1; j < 63; j++)
                b[i][j] = tmpConst_stencil_0;
        for (int i2 = 1; i2 < 63; i2++)
            for (int j2 = 1; j2 < 63; j2++)
                a[i2][j2] = b[i2][j2];
    }
#pragma endscop
    return 0;
}
";
        let (unit, report) = run(src, PolyccOptions::default());
        // The time loop is skipped, both children transformed.
        assert_eq!(report.transformed_count(), 2);
        assert!(matches!(report.regions[0], RegionOutcome::Skipped { .. }));
        let out = print_unit(&unit);
        assert!(out.contains("for (int t = 0; t < 200; t++)"), "{out}");
        assert_eq!(out.matches("#pragma omp parallel for").count(), 2, "{out}");
    }

    #[test]
    fn sequential_nest_stays_sequential_but_transformed() {
        let src = "\
void f(float* a) {
    float res;
#pragma scop
    for (int i = 0; i < 64; i++)
        res = res + a[i];
#pragma endscop
}
";
        let (unit, report) = run(src, PolyccOptions::default());
        assert_eq!(report.transformed_count(), 1);
        assert_eq!(report.parallelized_count(), 0);
        let out = print_unit(&unit);
        assert!(!out.contains("omp parallel"), "{out}");
    }

    #[test]
    fn fig2_region_is_skewed() {
        let src = "\
void f(float** a) {
#pragma scop
    for (int i = 1; i < 64; i++)
        for (int j = 1; j < 63; j++)
            a[i][j] = a[i - 1][j] + a[i - 1][j + 1];
#pragma endscop
}
";
        let (unit, report) = run(src, PolyccOptions::default());
        assert_eq!(report.transformed_count(), 1);
        let skewed = report
            .regions
            .iter()
            .any(|r| matches!(r, RegionOutcome::Transformed { skewed: true, .. }));
        assert!(skewed);
        let out = print_unit(&unit);
        assert!(out.contains("t2 - t1") || out.contains("-t1 + t2"), "{out}");
    }

    #[test]
    fn multiple_regions_in_one_function() {
        let src = "\
int main() {
    float a[32], b[32];
#pragma scop
    for (int i = 0; i < 32; i++) a[i] = tmpConst_f_0;
#pragma endscop
    b[0] = a[0];
#pragma scop
    for (int j = 0; j < 32; j++) b[j] = tmpConst_g_1;
#pragma endscop
    return 0;
}
";
        let (unit, report) = run(src, PolyccOptions::default());
        assert_eq!(report.transformed_count(), 2);
        let maps = report.placeholder_iter_maps();
        assert!(maps.contains_key("tmpConst_f_0"));
        assert!(maps.contains_key("tmpConst_g_1"));
        let out = print_unit(&unit);
        assert!(out.contains("b[0] = a[0];"), "{out}");
    }

    #[test]
    fn transformed_nests_carry_affine_marker() {
        let (unit, report) = run(MARKED_MATMUL, PolyccOptions::default());
        assert_eq!(report.transformed_count(), 1);
        let out = print_unit(&unit);
        assert!(out.contains("#pragma affine"), "{out}");
        // The marker must sit directly above the nest's pragma run so the
        // lowering can pair it with the loop after a print → reparse trip.
        let reparsed = cfront::parser::parse(&out);
        assert!(!reparsed.diags.has_errors(), "marker must reparse: {out}");
    }

    #[test]
    fn adjacent_producer_consumer_nests_fuse() {
        // Forward (producer → consumer) deps permit fusion: one omp region,
        // one join barrier.
        let src = "\
int main() {
    float a[32], b[32];
#pragma scop
    for (int i = 0; i < 32; i++) a[i] = i;
#pragma endscop
#pragma scop
    for (int j = 0; j < 32; j++) b[j] = a[j];
#pragma endscop
    return 0;
}
";
        let (unit, report) = run(src, PolyccOptions::default());
        assert_eq!(report.transformed_count(), 2);
        assert_eq!(report.fused, 1, "compatible nests must fuse");
        let out = print_unit(&unit);
        assert_eq!(
            out.matches("#pragma omp parallel for").count(),
            1,
            "fusion must collapse the two parallel regions into one: {out}"
        );
    }

    #[test]
    fn stencil_copy_pair_refuses_fusion() {
        // The heat pattern: the copy nest writes `a`, which the stencil nest
        // reads at i±1. Fusing would feed updated values into later stencil
        // iterations — a backward dep, so fusion must be refused.
        let src = "\
int main() {
    float a[64], b[64];
#pragma scop
    for (int i = 1; i < 63; i++) b[i] = a[i - 1] + a[i + 1];
#pragma endscop
#pragma scop
    for (int i2 = 1; i2 < 63; i2++) a[i2] = b[i2];
#pragma endscop
    return 0;
}
";
        let (unit, report) = run(src, PolyccOptions::default());
        assert_eq!(report.transformed_count(), 2);
        assert_eq!(report.fused, 0, "illegal fusion must be refused");
        let out = print_unit(&unit);
        assert_eq!(out.matches("#pragma omp parallel for").count(), 2, "{out}");
    }

    #[test]
    fn user_omp_pragma_is_consumed_and_schedule_carried() {
        // A user `omp parallel for` header above the markers belongs to the
        // nest: the replacement must not keep it as a duplicate, and its
        // schedule clause must carry over to the generated pragma.
        let src = "\
int main() {
    float a[64];
#pragma omp parallel for schedule(dynamic, 4)
#pragma scop
    for (int i = 0; i < 64; i++) a[i] = i;
#pragma endscop
    return 0;
}
";
        let (unit, report) = run(src, PolyccOptions::default());
        assert_eq!(report.transformed_count(), 1);
        assert_eq!(report.parallelized_count(), 1);
        let out = print_unit(&unit);
        assert_eq!(
            out.matches("#pragma omp parallel for").count(),
            1,
            "user pragma must be consumed, not duplicated: {out}"
        );
        assert!(out.contains("schedule(dynamic, 4)"), "{out}");
    }

    #[test]
    fn bare_omp_pair_routes_as_implicit_scop() {
        // The paper's input form — `omp parallel for` with no scop markers —
        // is routed through the transformer directly.
        let src = "\
int main() {
    float a[128];
#pragma omp parallel for
    for (int i = 0; i < 128; i++) a[i] = i;
    return 0;
}
";
        let (unit, report) = run(src, PolyccOptions::default());
        assert_eq!(report.transformed_count(), 1);
        assert_eq!(report.parallelized_count(), 1);
        let out = print_unit(&unit);
        assert!(out.contains("#pragma affine"), "{out}");
        assert!(out.contains("t1"), "nest must be rewritten: {out}");
    }

    #[test]
    fn poly_unmarked_routes_bare_body_pure_nest() {
        // `--poly-unmarked`: a loop hanging directly off an `if` (no block,
        // so scop markers can never surround it) is still transformed when
        // every call in it is verified pure.
        let src = "\
int main(int argc) {
    float a[64];
    if (argc > 1)
        for (int i = 0; i < 64; i++)
            a[i] = i;
    return 0;
}
";
        let opts = PolyccOptions {
            unmarked: Some(HashSet::new()),
            ..Default::default()
        };
        let (unit, report) = run(src, opts);
        assert_eq!(report.transformed_count(), 1);
        let out = print_unit(&unit);
        assert!(out.contains("#pragma affine"), "{out}");
        // Without the flag the same nest stays literal.
        let (_, off) = run(src, PolyccOptions::default());
        assert_eq!(off.transformed_count(), 0);
    }

    #[test]
    fn poly_unmarked_skips_nests_with_unverified_calls() {
        let src = "\
int main(int argc) {
    float a[64];
    if (argc > 1)
        for (int i = 0; i < 64; i++)
            a[i] = mystery(i);
    return 0;
}
";
        let opts = PolyccOptions {
            unmarked: Some(HashSet::new()),
            ..Default::default()
        };
        let (_, report) = run(src, opts);
        assert_eq!(
            report.transformed_count(),
            0,
            "unverified call must block implicit-SCoP routing"
        );
    }

    #[test]
    fn non_trivial_bounds_are_hoisted() {
        // Tiled codegen produces `__pc_min(...)` upper bounds; the hoist
        // pass must evaluate them once ahead of the nest, leaving the
        // `iter <= local` shape the VM's affine fast path requires.
        let src = "\
float **A, **Bt, **C;
int main() {
#pragma scop
    for (int i = 0; i < 4096; i++)
        for (int j = 0; j < 4096; j++)
            C[i][j] = tmpConst_dot_0;
#pragma endscop
    return 0;
}
";
        let opts = PolyccOptions {
            codegen: CodegenOptions {
                tile: Some(32),
                ..Default::default()
            },
            ..Default::default()
        };
        let (unit, report) = run(src, opts);
        assert_eq!(report.transformed_count(), 1);
        assert!(report.hoisted > 0, "tiled bounds must hoist");
        let out = print_unit(&unit);
        assert!(out.contains("int __pc_ub"), "{out}");
        assert!(
            !out.contains("<= __pc_min") || out.contains("__pc_ub"),
            "point-loop bounds must read the hoisted temporary: {out}"
        );
    }

    #[test]
    fn invariant_rows_are_hoisted_per_level() {
        // Both `B[i]` and `A[i]` settle at the outer level; each becomes
        // one `__pc_row` pointer loaded once per outer iteration, and no
        // two-level subscript survives in the inner body.
        let src = "\
float **A, **B;
int main() {
#pragma scop
    for (int i = 0; i < 64; i++)
        for (int j = 0; j < 64; j++)
            B[i][j] = A[i][j] + 1.0f;
#pragma endscop
    return 0;
}
";
        let (unit, report) = run(src, PolyccOptions::default());
        assert_eq!(report.transformed_count(), 1);
        assert_eq!(report.rows_hoisted, 2);
        let out = print_unit(&unit);
        assert!(out.contains("float* __pc_row1 = B[t1];"), "{out}");
        assert!(out.contains("float* __pc_row2 = A[t1];"), "{out}");
        assert!(
            out.contains("__pc_row1[t2] = __pc_row2[t2] + 1.0f;"),
            "{out}"
        );
    }

    #[test]
    fn row_store_blocks_row_hoisting() {
        // `A[j] = spare` can retarget any row of `A` mid-nest, so the
        // two-level stream `A[i][j]` must keep reloading its row — the
        // base is disqualified for the whole nest even though the nest
        // still transforms (sequentially, marker and all).
        let src = "\
float **A;
float *spare;
int main() {
#pragma scop
    for (int i = 0; i < 64; i++)
        for (int j = 0; j < 64; j++)
        {
            A[i][j] = 1.0f;
            A[j] = spare;
        }
#pragma endscop
    return 0;
}
";
        let (unit, report) = run(src, PolyccOptions::default());
        assert_eq!(report.transformed_count(), 1);
        assert_eq!(report.rows_hoisted, 0);
        let out = print_unit(&unit);
        assert!(!out.contains("__pc_row"), "{out}");
        assert!(out.contains("A[t1][t2]"), "{out}");
    }
}
