//! `polycc` — the driver entry of the polyhedral stage (what the PluTo
//! distribution's `polycc` script does): find `#pragma scop` regions,
//! model, analyze, schedule, and replace them with transformed, annotated
//! loop nests.
//!
//! Imperfect nests degrade gracefully: if the marked loop itself cannot be
//! modelled (e.g. the heat application's time loop whose body holds two
//! spatial nests and a pointer swap), the driver keeps the loop sequential
//! and recurses into its children, transforming every inner nest it *can*
//! model — which is exactly the behaviour the paper's evaluation relies on.

use crate::codegen::{generate, CodegenOptions, Generated};
use crate::deps::analyze;
use crate::extract::extract_scop;
use crate::schedule::{compute_schedule, Transform};
use crate::sica::{select_tile_size, SicaParams};
use cfront::ast::*;
use cfront::diag::Diagnostics;
use std::collections::HashMap;

/// Options for the whole polyhedral stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct PolyccOptions {
    /// Base codegen options (omp / explicit tile).
    pub codegen: CodegenOptions,
    /// SICA mode: auto-select tile sizes from the cache model and add SIMD
    /// pragmas (overrides `codegen.tile`/`codegen.sica`).
    pub sica: Option<SicaParams>,
}

/// What happened to one marked region.
#[derive(Debug)]
pub enum RegionOutcome {
    Transformed {
        depth: usize,
        parallelized: bool,
        tiled: bool,
        skewed: bool,
        /// Original iterator → new-iterator expression, for reinsertion of
        /// the substituted pure calls in this region.
        iter_map: HashMap<String, Expr>,
        /// `tmpConst_*` placeholders appearing in the region.
        placeholders: Vec<String>,
        transform: Transform,
    },
    /// Left sequential (model extraction failed); children may still have
    /// been transformed (they appear as separate outcomes).
    Skipped { reason: String },
}

/// Report of a `polycc` run.
#[derive(Debug, Default)]
pub struct PolyccReport {
    pub regions: Vec<RegionOutcome>,
    /// True when any generated code uses the `__pc_*` helpers; the caller
    /// must prepend [`crate::codegen::HELPER_DEFS`].
    pub needs_helpers: bool,
    pub diags: Diagnostics,
}

impl PolyccReport {
    pub fn transformed_count(&self) -> usize {
        self.regions
            .iter()
            .filter(|r| matches!(r, RegionOutcome::Transformed { .. }))
            .count()
    }

    pub fn parallelized_count(&self) -> usize {
        self.regions
            .iter()
            .filter(|r| {
                matches!(
                    r,
                    RegionOutcome::Transformed {
                        parallelized: true,
                        ..
                    }
                )
            })
            .count()
    }

    /// Merge all per-region iterator maps keyed by placeholder name.
    pub fn placeholder_iter_maps(&self) -> HashMap<String, HashMap<String, Expr>> {
        let mut out = HashMap::new();
        for r in &self.regions {
            if let RegionOutcome::Transformed {
                iter_map,
                placeholders,
                ..
            } = r
            {
                for p in placeholders {
                    out.insert(p.clone(), iter_map.clone());
                }
            }
        }
        out
    }
}

/// Run the polyhedral stage over a marked translation unit.
pub fn run_polycc(unit: &mut TranslationUnit, opts: PolyccOptions) -> PolyccReport {
    let mut report = PolyccReport::default();
    for item in &mut unit.items {
        let Item::Function(f) = item else { continue };
        let Some(body) = &mut f.body else { continue };
        process_block(body, &opts, &mut report);
    }
    report
}

/// Find `[scop-pragma, for, endscop-pragma]` triples in a block and replace
/// them with transformed code.
fn process_block(block: &mut Block, opts: &PolyccOptions, report: &mut PolyccReport) {
    let mut i = 0;
    while i < block.stmts.len() {
        let is_scop_open = matches!(
            &block.stmts[i].kind,
            StmtKind::Pragma(p) if p.trim() == "pragma scop"
        );
        if !is_scop_open {
            // Recurse into nested structures.
            descend(&mut block.stmts[i], opts, report);
            i += 1;
            continue;
        }
        // Expect For at i+1 and endscop at i+2.
        let ok_shape = i + 2 < block.stmts.len()
            && matches!(block.stmts[i + 1].kind, StmtKind::For { .. })
            && matches!(
                &block.stmts[i + 2].kind,
                StmtKind::Pragma(p) if p.trim() == "pragma endscop"
            );
        if !ok_shape {
            report.regions.push(RegionOutcome::Skipped {
                reason: "malformed scop region (pragma without loop)".into(),
            });
            i += 1;
            continue;
        }

        let mut loop_stmt = block.stmts[i + 1].clone();
        let replacement = transform_nest(&mut loop_stmt, opts, report);
        // Remove [scop, for, endscop] and splice the result.
        block.stmts.drain(i..i + 3);
        let new_stmts = replacement.unwrap_or_else(|| vec![loop_stmt]);
        let count = new_stmts.len();
        for (off, s) in new_stmts.into_iter().enumerate() {
            block.stmts.insert(i + off, s);
        }
        i += count;
    }
}

fn descend(stmt: &mut Stmt, opts: &PolyccOptions, report: &mut PolyccReport) {
    match &mut stmt.kind {
        StmtKind::Block(b) => process_block(b, opts, report),
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => {
            descend(then_branch, opts, report);
            if let Some(e) = else_branch {
                descend(e, opts, report);
            }
        }
        StmtKind::While { body, .. }
        | StmtKind::DoWhile { body, .. }
        | StmtKind::For { body, .. } => descend(body, opts, report),
        _ => {}
    }
}

/// Transform one marked nest. Returns the replacement statements, or `None`
/// to keep the original loop (possibly with transformed children, already
/// rewritten in-place through `loop_stmt`).
fn transform_nest(
    loop_stmt: &mut Stmt,
    opts: &PolyccOptions,
    report: &mut PolyccReport,
) -> Option<Vec<Stmt>> {
    match extract_scop(loop_stmt) {
        Ok(scop) => {
            let deps = analyze(&scop);
            let transform = compute_schedule(&scop, &deps);

            // Resolve codegen options (SICA overrides).
            let mut cg = opts.codegen;
            if let Some(p) = opts.sica {
                cg.sica = true;
                if cg.tile.is_none() {
                    cg.tile = select_tile_size(&scop, transform.band, p);
                }
            }

            match generate(&scop, &transform, cg) {
                Ok(Generated {
                    stmts,
                    iter_map,
                    parallelized,
                    tiled,
                    needs_helpers,
                }) => {
                    report.needs_helpers |= needs_helpers;
                    let placeholders = collect_placeholders(&stmts);
                    report.regions.push(RegionOutcome::Transformed {
                        depth: scop.depth(),
                        parallelized,
                        tiled,
                        skewed: transform.skewed,
                        iter_map,
                        placeholders,
                        transform,
                    });
                    Some(stmts)
                }
                Err(diags) => {
                    report.diags.extend(diags);
                    report.regions.push(RegionOutcome::Skipped {
                        reason: "code generation failed".into(),
                    });
                    None
                }
            }
        }
        Err(diags) => {
            // Imperfect / non-affine: keep the loop sequential but try the
            // children (the heat time loop pattern).
            let reason = diags
                .items()
                .first()
                .map(|d| d.message.clone())
                .unwrap_or_else(|| "not a static control part".into());
            report.regions.push(RegionOutcome::Skipped { reason });
            let StmtKind::For { body, .. } = &mut loop_stmt.kind else {
                return None;
            };
            transform_children(body, opts, report);
            None
        }
    }
}

/// Recursively attempt every child for-nest of a body.
fn transform_children(body: &mut Stmt, opts: &PolyccOptions, report: &mut PolyccReport) {
    match &mut body.kind {
        StmtKind::Block(b) => {
            let mut i = 0;
            while i < b.stmts.len() {
                if matches!(b.stmts[i].kind, StmtKind::For { .. }) {
                    let mut child = b.stmts[i].clone();
                    if let Some(new_stmts) = transform_nest(&mut child, opts, report) {
                        b.stmts.remove(i);
                        let count = new_stmts.len();
                        for (off, s) in new_stmts.into_iter().enumerate() {
                            b.stmts.insert(i + off, s);
                        }
                        i += count;
                        continue;
                    } else {
                        b.stmts[i] = child; // children may have changed
                    }
                } else {
                    descend(&mut b.stmts[i], opts, report);
                }
                i += 1;
            }
        }
        StmtKind::For { .. } => {
            let mut child = body.clone();
            if let Some(new_stmts) = transform_nest(&mut child, opts, report) {
                // Single-statement body replaced by a block.
                *body = Stmt::new(
                    StmtKind::Block(Block {
                        stmts: new_stmts,
                        span: body.span,
                    }),
                    body.span,
                );
            } else {
                *body = child;
            }
        }
        _ => {}
    }
}

/// All `tmpConst_*` identifiers appearing in a statement list.
fn collect_placeholders(stmts: &[Stmt]) -> Vec<String> {
    let mut out = Vec::new();
    for s in stmts {
        s.walk_exprs(&mut |e| {
            if let ExprKind::Ident(name) = &e.kind {
                if name.starts_with("tmpConst_") && !out.contains(name) {
                    out.push(name.clone());
                }
            }
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfront::parser::parse;
    use cfront::printer::print_unit;

    fn run(src: &str, opts: PolyccOptions) -> (TranslationUnit, PolyccReport) {
        let mut unit = parse(src).unit;
        let report = run_polycc(&mut unit, opts);
        (unit, report)
    }

    const MARKED_MATMUL: &str = "\
float **A, **Bt, **C;
int main() {
#pragma scop
    for (int i = 0; i < 4096; i++)
        for (int j = 0; j < 4096; j++)
            C[i][j] = tmpConst_dot_0;
#pragma endscop
    return 0;
}
";

    #[test]
    fn transforms_marked_matmul() {
        let (unit, report) = run(MARKED_MATMUL, PolyccOptions::default());
        assert_eq!(report.transformed_count(), 1);
        assert_eq!(report.parallelized_count(), 1);
        let out = print_unit(&unit);
        assert!(!out.contains("pragma scop"), "{out}");
        assert!(
            out.contains("#pragma omp parallel for private(t2)"),
            "{out}"
        );
        assert!(out.contains("C[t1][t2]"), "{out}");
        // Placeholder recorded with its iterator map.
        let maps = report.placeholder_iter_maps();
        let m = &maps["tmpConst_dot_0"];
        assert_eq!(cfront::printer::print_expr(&m["i"]), "t1");
    }

    #[test]
    fn sica_mode_tiles_and_vectorizes() {
        let (unit, report) = run(
            MARKED_MATMUL,
            PolyccOptions {
                codegen: CodegenOptions::default(),
                sica: Some(SicaParams::default()),
            },
        );
        assert_eq!(report.transformed_count(), 1);
        let out = print_unit(&unit);
        assert!(out.contains("t1t"), "sica must tile: {out}");
        assert!(out.contains("#pragma omp simd"), "{out}");
        assert!(report.needs_helpers);
    }

    #[test]
    fn unmarked_loops_are_untouched() {
        let src = "int main() { float a[8]; for (int i = 0; i < 8; i++) a[i] = i; return 0; }";
        let (unit, report) = run(src, PolyccOptions::default());
        assert_eq!(report.transformed_count(), 0);
        let out = print_unit(&unit);
        assert!(out.contains("for (int i = 0; i < 8; i++)"), "{out}");
    }

    #[test]
    fn imperfect_time_loop_transforms_children() {
        // The heat pattern: marked time loop with two inner nests + copy.
        let src = "\
int main() {
    float a[64][64], b[64][64];
#pragma scop
    for (int t = 0; t < 200; t++) {
        for (int i = 1; i < 63; i++)
            for (int j = 1; j < 63; j++)
                b[i][j] = tmpConst_stencil_0;
        for (int i2 = 1; i2 < 63; i2++)
            for (int j2 = 1; j2 < 63; j2++)
                a[i2][j2] = b[i2][j2];
    }
#pragma endscop
    return 0;
}
";
        let (unit, report) = run(src, PolyccOptions::default());
        // The time loop is skipped, both children transformed.
        assert_eq!(report.transformed_count(), 2);
        assert!(matches!(report.regions[0], RegionOutcome::Skipped { .. }));
        let out = print_unit(&unit);
        assert!(out.contains("for (int t = 0; t < 200; t++)"), "{out}");
        assert_eq!(out.matches("#pragma omp parallel for").count(), 2, "{out}");
    }

    #[test]
    fn sequential_nest_stays_sequential_but_transformed() {
        let src = "\
void f(float* a) {
    float res;
#pragma scop
    for (int i = 0; i < 64; i++)
        res = res + a[i];
#pragma endscop
}
";
        let (unit, report) = run(src, PolyccOptions::default());
        assert_eq!(report.transformed_count(), 1);
        assert_eq!(report.parallelized_count(), 0);
        let out = print_unit(&unit);
        assert!(!out.contains("omp parallel"), "{out}");
    }

    #[test]
    fn fig2_region_is_skewed() {
        let src = "\
void f(float** a) {
#pragma scop
    for (int i = 1; i < 64; i++)
        for (int j = 1; j < 63; j++)
            a[i][j] = a[i - 1][j] + a[i - 1][j + 1];
#pragma endscop
}
";
        let (unit, report) = run(src, PolyccOptions::default());
        assert_eq!(report.transformed_count(), 1);
        let skewed = report
            .regions
            .iter()
            .any(|r| matches!(r, RegionOutcome::Transformed { skewed: true, .. }));
        assert!(skewed);
        let out = print_unit(&unit);
        assert!(out.contains("t2 - t1") || out.contains("-t1 + t2"), "{out}");
    }

    #[test]
    fn multiple_regions_in_one_function() {
        let src = "\
int main() {
    float a[32], b[32];
#pragma scop
    for (int i = 0; i < 32; i++) a[i] = tmpConst_f_0;
#pragma endscop
    b[0] = a[0];
#pragma scop
    for (int j = 0; j < 32; j++) b[j] = tmpConst_g_1;
#pragma endscop
    return 0;
}
";
        let (unit, report) = run(src, PolyccOptions::default());
        assert_eq!(report.transformed_count(), 2);
        let maps = report.placeholder_iter_maps();
        assert!(maps.contains_key("tmpConst_f_0"));
        assert!(maps.contains_key("tmpConst_g_1"));
        let out = print_unit(&unit);
        assert!(out.contains("b[0] = a[0];"), "{out}");
    }
}
