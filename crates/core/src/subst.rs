//! Temporary call substitution (Sect. 3.3, Fig. 1).
//!
//! PluTo is unaware of pure functions, so before the polyhedral stage every
//! pure call inside a `#pragma scop` region is replaced by a "special,
//! unique word" that makes it look like a constant — `fnAB()` becomes
//! `tmpConst_fnAB` in the paper's figure. After the transformation the
//! placeholders are swapped back, *adapting* the arguments to the renamed
//! loop iterators (PluTo renames `i`/`j` to `t1`/`t2`…).

use crate::stdfns::PureSet;
use cfront::ast::*;
use cfront::visit::{visit_expr_mut, visit_exprs_mut};
use std::collections::HashMap;

/// Map from placeholder identifier to the original call expression.
#[derive(Debug, Clone, Default)]
pub struct SubstMap {
    entries: HashMap<String, Expr>,
    counter: usize,
}

impl SubstMap {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn get(&self, placeholder: &str) -> Option<&Expr> {
        self.entries.get(placeholder)
    }

    pub fn placeholders(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    fn fresh_name(&mut self, callee: &str) -> String {
        let name = format!("tmpConst_{callee}_{}", self.counter);
        self.counter += 1;
        name
    }
}

/// Replace every pure call inside scop regions with a placeholder
/// identifier. Returns the substitution map for later reinsertion.
pub fn substitute_calls(unit: &mut TranslationUnit, pure_set: &PureSet) -> SubstMap {
    let mut map = SubstMap::new();
    for item in &mut unit.items {
        let Item::Function(f) = item else { continue };
        let Some(body) = &mut f.body else { continue };
        substitute_in_block(body, pure_set, &mut map);
    }
    map
}

fn substitute_in_block(block: &mut Block, pure_set: &PureSet, map: &mut SubstMap) {
    let mut in_scop = false;
    for stmt in &mut block.stmts {
        match &stmt.kind {
            StmtKind::Pragma(p) if p.trim() == "pragma scop" => {
                in_scop = true;
                continue;
            }
            StmtKind::Pragma(p) if p.trim() == "pragma endscop" => {
                in_scop = false;
                continue;
            }
            _ => {}
        }
        if in_scop {
            substitute_in_stmt(stmt, pure_set, map);
        } else {
            // Scops may sit in nested blocks too.
            recurse_blocks(stmt, pure_set, map);
        }
    }
}

fn recurse_blocks(stmt: &mut Stmt, pure_set: &PureSet, map: &mut SubstMap) {
    match &mut stmt.kind {
        StmtKind::Block(b) => substitute_in_block(b, pure_set, map),
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => {
            recurse_blocks(then_branch, pure_set, map);
            if let Some(e) = else_branch {
                recurse_blocks(e, pure_set, map);
            }
        }
        StmtKind::While { body, .. }
        | StmtKind::DoWhile { body, .. }
        | StmtKind::For { body, .. } => recurse_blocks(body, pure_set, map),
        _ => {}
    }
}

fn substitute_in_stmt(stmt: &mut Stmt, pure_set: &PureSet, map: &mut SubstMap) {
    visit_exprs_mut(stmt, &mut |e| {
        let Some((name, _)) = e.as_direct_call() else {
            return;
        };
        if name == "__initlist" || !pure_set.contains(name) {
            return;
        }
        let placeholder = map.fresh_name(name);
        let original = std::mem::replace(e, Expr::ident(placeholder.clone()));
        e.span = original.span;
        map.entries.insert(placeholder, original);
    });
}

/// Reinsert the stored calls, applying an iterator renaming to every stored
/// argument. `iter_map` maps an original iterator name (e.g. `i`) to its
/// replacement expression in the transformed code (e.g. `t1`, or a tile
/// expression like `32 * t1 + t3`).
pub fn reinsert_calls(
    unit: &mut TranslationUnit,
    map: &SubstMap,
    iter_map: &HashMap<String, Expr>,
) -> usize {
    let mut replaced = 0;
    for item in &mut unit.items {
        let Item::Function(f) = item else { continue };
        let Some(body) = &mut f.body else { continue };
        for stmt in &mut body.stmts {
            visit_exprs_mut(stmt, &mut |e| {
                let Some(name) = e.as_ident() else { return };
                let Some(original) = map.get(name) else {
                    return;
                };
                let mut call = original.clone();
                rename_iterators(&mut call, iter_map);
                *e = call;
                replaced += 1;
            });
        }
    }
    replaced
}

/// Substitute iterator identifiers inside an expression.
pub fn rename_iterators(e: &mut Expr, iter_map: &HashMap<String, Expr>) {
    visit_expr_mut(e, &mut |node| {
        if let ExprKind::Ident(name) = &node.kind {
            if let Some(replacement) = iter_map.get(name) {
                let span = node.span;
                *node = replacement.clone();
                node.span = span;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::purity::verify_unit;
    use crate::scop::mark_scops;
    use cfront::parser::{parse, parse_expr_str};
    use cfront::printer::print_unit;

    fn pipeline(src: &str) -> (TranslationUnit, SubstMap) {
        let mut unit = parse(src).unit;
        let purity = verify_unit(&unit, PureSet::seeded());
        assert!(purity.ok(), "{:?}", purity.diags.items());
        let scop = mark_scops(&mut unit, &purity.pure_set);
        assert!(!scop.diags.has_errors());
        let map = substitute_calls(&mut unit, &purity.pure_set);
        (unit, map)
    }

    const MATMUL: &str = "float **A, **Bt, **C;\n\
        pure float dot(pure float* a, pure float* b, int size) { return a[0] * b[0]; }\n\
        int main() {\n\
            for (int i = 0; i < 64; ++i)\n\
                for (int j = 0; j < 64; ++j)\n\
                    C[i][j] = dot((pure float*)A[i], (pure float*)Bt[j], 64);\n\
            return 0;\n\
        }";

    #[test]
    fn calls_become_placeholders_inside_scop() {
        let (unit, map) = pipeline(MATMUL);
        assert_eq!(map.len(), 1);
        let out = print_unit(&unit);
        assert!(out.contains("tmpConst_dot_0"), "{out}");
        assert!(!out.contains("dot((pure float*)A[i]"), "{out}");
        // The pure function definition itself is untouched.
        assert!(out.contains("pure float dot(pure float* a, pure float* b, int size)"));
    }

    #[test]
    fn calls_outside_scop_are_untouched() {
        let (unit, map) = pipeline(
            "pure int f(int x) { return x; }\n\
             int main() {\n\
                 int a[8];\n\
                 int warmup = f(3);\n\
                 for (int i = 0; i < 8; i++) a[i] = f(i);\n\
                 return warmup;\n\
             }",
        );
        // Only the in-loop call is substituted.
        assert_eq!(map.len(), 1);
        let out = print_unit(&unit);
        assert!(out.contains("int warmup = f(3);"), "{out}");
    }

    #[test]
    fn reinsert_restores_calls_with_renamed_iterators() {
        let (mut unit, map) = pipeline(MATMUL);
        let mut iter_map = HashMap::new();
        iter_map.insert("i".to_string(), parse_expr_str("t1").unwrap());
        iter_map.insert("j".to_string(), parse_expr_str("t2").unwrap());
        let n = reinsert_calls(&mut unit, &map, &iter_map);
        assert_eq!(n, 1);
        let out = print_unit(&unit);
        assert!(
            out.contains("dot((pure float*)A[t1], (pure float*)Bt[t2], 64)"),
            "{out}"
        );
        assert!(!out.contains("tmpConst_"), "{out}");
    }

    #[test]
    fn reinsert_with_tiled_iterator_expressions() {
        let (mut unit, map) = pipeline(MATMUL);
        let mut iter_map = HashMap::new();
        iter_map.insert("i".to_string(), parse_expr_str("32 * t1 + t3").unwrap());
        iter_map.insert("j".to_string(), parse_expr_str("32 * t2 + t4").unwrap());
        reinsert_calls(&mut unit, &map, &iter_map);
        let out = print_unit(&unit);
        assert!(out.contains("A[32 * t1 + t3]"), "{out}");
    }

    #[test]
    fn nested_pure_calls_survive_round_trip() {
        let (mut unit, map) = pipeline(
            "pure float g(float x) { return x; }\n\
             pure float f(float x) { return g(x); }\n\
             int main() {\n\
                 float a[8];\n\
                 for (int i = 0; i < 8; i++) a[i] = f(g(i));\n\
                 return 0;\n\
             }",
        );
        // Outer call replaced; the nested g(i) lives inside the stored expr.
        assert_eq!(map.len(), 1);
        let mut iter_map = HashMap::new();
        iter_map.insert("i".to_string(), parse_expr_str("t1").unwrap());
        reinsert_calls(&mut unit, &map, &iter_map);
        let out = print_unit(&unit);
        assert!(
            out.contains("a[i] = f(g(t1));") || out.contains("= f(g(t1))"),
            "{out}"
        );
    }

    #[test]
    fn placeholder_names_are_unique() {
        let (_, map) = pipeline(
            "pure int f(int x) { return x; }\n\
             int main() {\n\
                 int a[8], b[8];\n\
                 for (int i = 0; i < 8; i++) { a[i] = f(i); b[i] = f(i + 1); }\n\
                 return 0;\n\
             }",
        );
        assert_eq!(map.len(), 2);
        let names: Vec<&str> = map.placeholders().collect();
        assert_ne!(names[0], names[1]);
    }
}
