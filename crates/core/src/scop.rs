//! SCoP marking — the second half of PC-CC (Sect. 3.2/3.4).
//!
//! Every `for`-loop nest whose calls are all verified pure is surrounded by
//! `#pragma scop` / `#pragma endscop`, the markers the polyhedral
//! transformer consumes. Before marking, the pass runs the caller-side
//! safety check of Listing 5: if a pointer argument of a pure call is also
//! the target of an assignment in the same loop nest, the program is
//! rejected (`PureParamWrittenInLoop`) — the call's result feeding back
//! into its own input would make the iteration order observable.
//!
//! The check compares variable *names* only; the alias deception of
//! Listing 6 is accepted, which the paper documents as a limitation.

use crate::stdfns::PureSet;
use cfront::ast::*;
use cfront::diag::{Code, Diagnostics};

/// Outcome of SCoP marking over a translation unit.
#[derive(Debug, Default)]
pub struct ScopReport {
    /// Number of loop nests that were wrapped in scop pragmas.
    pub marked: usize,
    /// Number of loop nests skipped because they call impure functions.
    pub skipped_impure: usize,
    pub diags: Diagnostics,
}

/// Mark parallelization candidates in-place. Returns the report; on error
/// (`PureParamWrittenInLoop`) the unit is left partially marked and callers
/// must abort, mirroring the paper's compile error.
pub fn mark_scops(unit: &mut TranslationUnit, pure_set: &PureSet) -> ScopReport {
    let mut report = ScopReport::default();
    for item in &mut unit.items {
        let Item::Function(f) = item else { continue };
        let Some(body) = &mut f.body else { continue };
        mark_block(body, pure_set, &mut report);
    }
    report
}

fn mark_block(block: &mut Block, pure_set: &PureSet, report: &mut ScopReport) {
    let mut i = 0;
    while i < block.stmts.len() {
        if matches!(block.stmts[i].kind, StmtKind::For { .. }) {
            if loop_nest_is_candidate(&block.stmts[i], pure_set, report) {
                let span = block.stmts[i].span;
                block
                    .stmts
                    .insert(i, Stmt::new(StmtKind::Pragma("pragma scop".into()), span));
                block.stmts.insert(
                    i + 2,
                    Stmt::new(StmtKind::Pragma("pragma endscop".into()), span),
                );
                report.marked += 1;
                i += 3;
                continue;
            }
            // Not a candidate as a whole — descend looking for inner
            // candidates (e.g. a parallelizable loop inside an outer
            // `while`-style driver loop).
            descend(&mut block.stmts[i], pure_set, report);
        } else if matches!(
            block.stmts[i].kind,
            StmtKind::Block(_)
                | StmtKind::If { .. }
                | StmtKind::While { .. }
                | StmtKind::DoWhile { .. }
        ) {
            descend(&mut block.stmts[i], pure_set, report);
        }
        i += 1;
    }
}

fn descend(stmt: &mut Stmt, pure_set: &PureSet, report: &mut ScopReport) {
    match &mut stmt.kind {
        StmtKind::Block(b) => mark_block(b, pure_set, report),
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => {
            descend_body(then_branch, pure_set, report);
            if let Some(e) = else_branch {
                descend_body(e, pure_set, report);
            }
        }
        StmtKind::While { body, .. }
        | StmtKind::DoWhile { body, .. }
        | StmtKind::For { body, .. } => descend_body(body, pure_set, report),
        _ => {}
    }
}

/// Descend into a loop/branch body; bare statements cannot receive pragma
/// siblings, so only blocks are explored further.
fn descend_body(stmt: &mut Stmt, pure_set: &PureSet, report: &mut ScopReport) {
    match &mut stmt.kind {
        StmtKind::Block(b) => mark_block(b, pure_set, report),
        StmtKind::For { .. } => descend(stmt, pure_set, report),
        _ => descend(stmt, pure_set, report),
    }
}

/// A loop nest qualifies when every function called anywhere inside is in
/// the pure registry, and the Listing-5 check passes.
fn loop_nest_is_candidate(stmt: &Stmt, pure_set: &PureSet, report: &mut ScopReport) -> bool {
    let mut all_pure = true;
    let mut any_call = false;
    stmt.walk_exprs(&mut |e| {
        if let Some((name, _)) = e.as_direct_call() {
            if name == "__initlist" {
                return;
            }
            any_call = true;
            if !pure_set.contains(name) {
                all_pure = false;
            }
        }
    });
    let _ = any_call;
    if !all_pure {
        report.skipped_impure += 1;
        return false;
    }
    let errors_before = report.diags.error_count();
    check_listing5(stmt, pure_set, &mut report.diags);
    // The paper *errors out* on the Listing-5 violation rather than merely
    // skipping the loop; on error the caller aborts the pipeline anyway.
    report.diags.error_count() == errors_before
}

/// Listing 5: an assignment must not feed a pure call's pointer argument
/// back into its own target — `array[i] = func(array, i)` makes the call's
/// input depend on the iteration order. The check is per assignment
/// statement (the paper's "appears on the left-hand side of an assignment
/// operator"); writes to the same array in *other* statements of the nest
/// are the legal double-buffer/copy patterns the evaluation programs use.
fn check_listing5(stmt: &Stmt, pure_set: &PureSet, diags: &mut Diagnostics) {
    stmt.walk_exprs(&mut |e| {
        let ExprKind::Assign(_, lhs, rhs) = &e.kind else {
            return;
        };
        let Some(lhs_root) = lhs.lvalue_root() else {
            return;
        };
        if is_iterator_like(stmt, lhs_root) {
            return;
        }
        // Find pure calls inside the RHS whose pointer arguments root at
        // the assignment target.
        rhs.walk(&mut |sub| {
            let Some((name, args)) = sub.as_direct_call() else {
                return;
            };
            if !pure_set.contains(name) || name == "__initlist" {
                return;
            }
            for arg in args {
                let mut inner = arg;
                while let ExprKind::Cast(_, x) = &inner.kind {
                    inner = x;
                }
                let is_pointerish = matches!(
                    inner.kind,
                    ExprKind::Ident(_) | ExprKind::Index(..) | ExprKind::Member { .. }
                );
                let Some(root) = inner.lvalue_root() else {
                    continue;
                };
                if is_pointerish && root == lhs_root && !is_iterator_like(stmt, root) {
                    diags.error(
                        Code::PureParamWrittenInLoop,
                        e.span,
                        format!(
                            "argument '{root}' of pure function '{name}' is also assigned in \
                             this loop nest — the call's input depends on the iteration order \
                             (see paper Listing 5)"
                        ),
                    );
                }
            }
        });
    });
}

/// Is `name` one of the loop iterators of the nest rooted at `stmt`?
/// Iterator variables are incremented by the loop itself; passing them as
/// scalar arguments is the normal pattern (`func(array, i)`).
fn is_iterator_like(stmt: &Stmt, name: &str) -> bool {
    let mut found = false;
    stmt.walk(&mut |s| {
        if let StmtKind::For { init, step, .. } = &s.kind {
            match init.as_ref() {
                ForInit::Decl(d) => {
                    if d.declarators.iter().any(|dec| dec.name == name) {
                        found = true;
                    }
                }
                ForInit::Expr(Some(e)) => {
                    if let ExprKind::Assign(_, lhs, _) = &e.kind {
                        if lhs.as_ident() == Some(name) {
                            found = true;
                        }
                    }
                }
                ForInit::Expr(None) => {}
            }
            if let Some(se) = step {
                let mut root = None;
                match &se.kind {
                    ExprKind::Unary(op, inner) if op.writes_operand() => {
                        root = inner.as_ident();
                    }
                    ExprKind::Assign(_, lhs, _) => root = lhs.as_ident(),
                    _ => {}
                }
                if root == Some(name) {
                    found = true;
                }
            }
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::purity::verify_unit;
    use cfront::parser::parse;
    use cfront::printer::print_unit;

    fn run(src: &str) -> (TranslationUnit, ScopReport) {
        let r = parse(src);
        assert!(!r.diags.has_errors(), "{}", r.diags.render_all(src));
        let mut unit = r.unit;
        let purity = verify_unit(&unit, PureSet::seeded());
        assert!(purity.ok(), "{:?}", purity.diags.items());
        let report = mark_scops(&mut unit, &purity.pure_set);
        (unit, report)
    }

    #[test]
    fn matmul_loop_is_marked() {
        let (unit, report) = run("float **A, **Bt, **C;\n\
             pure float dot(pure float* a, pure float* b, int size) { return a[0] * b[0]; }\n\
             int main() {\n\
                 for (int i = 0; i < 4096; ++i)\n\
                     for (int j = 0; j < 4096; ++j)\n\
                         C[i][j] = dot((pure float*)A[i], (pure float*)Bt[j], 4096);\n\
                 return 0;\n\
             }");
        assert_eq!(report.marked, 1);
        assert!(!report.diags.has_errors());
        let out = print_unit(&unit);
        let scop_pos = out.find("#pragma scop").expect("scop pragma");
        let for_pos = out.find("for (").expect("loop");
        let end_pos = out.find("#pragma endscop").expect("endscop pragma");
        assert!(scop_pos < for_pos && for_pos < end_pos, "{out}");
    }

    #[test]
    fn loop_calling_impure_function_is_not_marked() {
        let (_, report) = run("void log_step(int i);\n\
             int main() {\n\
                 for (int i = 0; i < 10; i++) log_step(i);\n\
                 return 0;\n\
             }");
        assert_eq!(report.marked, 0);
        assert_eq!(report.skipped_impure, 1);
    }

    #[test]
    fn listing5_feedback_through_pure_call_is_error() {
        let r = parse(
            "pure int func(pure int* a, int idx) { return a[idx - 1] + a[idx]; }\n\
             int main() {\n\
                 int array[100];\n\
                 for (int i = 1; i < 100; i++)\n\
                     array[i] = func((pure int*)array, i);\n\
                 return 0;\n\
             }",
        );
        assert!(!r.diags.has_errors());
        let mut unit = r.unit;
        let purity = verify_unit(&unit, PureSet::seeded());
        assert!(purity.ok());
        let report = mark_scops(&mut unit, &purity.pure_set);
        assert!(report.diags.has_code(Code::PureParamWrittenInLoop));
    }

    #[test]
    fn listing6_alias_deceives_the_check() {
        // Documented limitation: the alias hides the hazard.
        let r = parse(
            "pure int func(pure int* a, int idx) { return a[idx - 1] + a[idx]; }\n\
             int main() {\n\
                 int array[100];\n\
                 int* alias = array;\n\
                 for (int i = 1; i < 100; i++)\n\
                     alias[i] = func((pure int*)array, i);\n\
                 return 0;\n\
             }",
        );
        let mut unit = r.unit;
        let purity = verify_unit(&unit, PureSet::seeded());
        let report = mark_scops(&mut unit, &purity.pure_set);
        // No error, loop marked — exactly the deception of Listing 6.
        assert!(!report.diags.has_errors());
        assert_eq!(report.marked, 1);
    }

    #[test]
    fn iterator_argument_is_not_a_hazard() {
        let (_, report) = run("pure int f(int i) { return i * 2; }\n\
             int main() {\n\
                 int out[10];\n\
                 for (int i = 0; i < 10; i++) out[i] = f(i);\n\
                 return 0;\n\
             }");
        assert!(!report.diags.has_errors());
        assert_eq!(report.marked, 1);
    }

    #[test]
    fn plain_affine_loop_without_calls_is_marked() {
        let (_, report) = run("int main() {\n\
                 float a[64][64];\n\
                 for (int i = 0; i < 64; i++)\n\
                     for (int j = 0; j < 64; j++)\n\
                         a[i][j] = i + j;\n\
                 return 0;\n\
             }");
        assert_eq!(report.marked, 1);
    }

    #[test]
    fn malloc_init_loop_is_marked_as_pure() {
        // The Fig. 3 artifact: the allocation loop qualifies because malloc
        // is in the seeded registry.
        let (_, report) = run("float** A;\n\
             int main() {\n\
                 for (int i = 0; i < 4096; i++)\n\
                     A[i] = (float*) malloc(4096 * sizeof(float));\n\
                 return 0;\n\
             }");
        assert_eq!(report.marked, 1);
    }

    #[test]
    fn malloc_loop_not_marked_without_alloc_rule() {
        // Ablation A1: withdrawing malloc from the registry demotes the loop.
        let r = parse(
            "float** A;\n\
             int main() {\n\
                 for (int i = 0; i < 8; i++) A[i] = (float*) malloc(8);\n\
                 return 0;\n\
             }",
        );
        let mut unit = r.unit;
        let set = PureSet::seeded_without_alloc();
        let report = mark_scops(&mut unit, &set);
        assert_eq!(report.marked, 0);
        assert_eq!(report.skipped_impure, 1);
    }

    #[test]
    fn only_outermost_loop_of_nest_is_wrapped() {
        let (unit, report) = run("int main() {\n\
                 int a[8][8];\n\
                 for (int i = 0; i < 8; i++)\n\
                     for (int j = 0; j < 8; j++)\n\
                         a[i][j] = 0;\n\
                 return 0;\n\
             }");
        assert_eq!(report.marked, 1);
        let out = print_unit(&unit);
        assert_eq!(out.matches("#pragma scop").count(), 1);
        assert_eq!(out.matches("#pragma endscop").count(), 1);
    }

    #[test]
    fn two_sibling_loops_both_marked() {
        let (unit, report) = run("int main() {\n\
                 int a[8];\n\
                 for (int i = 0; i < 8; i++) a[i] = i;\n\
                 for (int j = 0; j < 8; j++) a[j] = a[j] * 2;\n\
                 return 0;\n\
             }");
        assert_eq!(report.marked, 2);
        let out = print_unit(&unit);
        assert_eq!(out.matches("#pragma scop").count(), 2);
    }
}
