//! The pure-function registry ("hashset" in the paper, Sect. 3.2).
//!
//! The set is initialised with the C standard functions that have no
//! side-effects (`sin`, `cos`, `log`, …). `malloc` and `free` are added as
//! well: the paper argues their side-effects do not affect other threads,
//! and allowing `malloc` lets pure functions return heap arrays. The
//! verifier separately checks that `free` only releases memory allocated in
//! the same pure function.

use std::collections::HashSet;

/// Registry of function names considered pure. Grows as `pure`-declared
/// functions are verified.
#[derive(Debug, Clone)]
pub struct PureSet {
    names: HashSet<String>,
    /// Names that entered via the seeded stdlib list (useful for reporting).
    builtin: HashSet<String>,
}

/// C standard library functions seeded as side-effect-free.
pub const PURE_STDLIB: &[&str] = &[
    // <math.h> double forms
    "sin", "cos", "tan", "asin", "acos", "atan", "atan2", "sinh", "cosh", "tanh", "exp", "log",
    "log2", "log10", "sqrt", "pow", "fabs", "floor", "ceil", "round", "trunc", "fmod", "fmin",
    "fmax", "hypot", "cbrt", "expm1", "log1p", "copysign", // <math.h> float forms
    "sinf", "cosf", "tanf", "asinf", "acosf", "atanf", "atan2f", "expf", "logf", "log2f", "log10f",
    "sqrtf", "powf", "fabsf", "floorf", "ceilf", "roundf", "fmodf", "fminf", "fmaxf",
    // <stdlib.h> pure-ish
    "abs", "labs", "llabs", "atoi", "atof", "atol", // <string.h> read-only
    "strlen", "strcmp", "strncmp", "memcmp",
];

/// Allocation functions treated as pure by the paper's argument (their
/// side-effects are thread-local).
pub const ALLOC_FNS: &[&str] = &["malloc", "free", "calloc"];

impl PureSet {
    /// The seeded registry (stdlib + malloc/free).
    pub fn seeded() -> Self {
        let mut names = HashSet::with_capacity(PURE_STDLIB.len() + ALLOC_FNS.len());
        for n in PURE_STDLIB.iter().chain(ALLOC_FNS) {
            names.insert((*n).to_string());
        }
        let builtin = names.clone();
        PureSet { names, builtin }
    }

    /// An empty registry (used by ablation A1 to withdraw the malloc rule:
    /// `PureSet::seeded_without_alloc()` keeps math but drops malloc/free).
    pub fn seeded_without_alloc() -> Self {
        let mut s = Self::seeded();
        for n in ALLOC_FNS {
            s.names.remove(*n);
            s.builtin.remove(*n);
        }
        s
    }

    pub fn contains(&self, name: &str) -> bool {
        self.names.contains(name)
    }

    pub fn is_builtin(&self, name: &str) -> bool {
        self.builtin.contains(name)
    }

    /// Register a user function that was *declared* pure. Registration
    /// happens before body verification so that self-recursion and forward
    /// references between pure functions resolve (the paper's hashset works
    /// the same way: declaration adds the name).
    pub fn insert(&mut self, name: impl Into<String>) {
        self.names.insert(name.into());
    }

    pub fn remove(&mut self, name: &str) {
        self.names.remove(name);
    }

    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate user-registered (non-builtin) pure functions.
    pub fn user_functions(&self) -> impl Iterator<Item = &str> {
        self.names
            .iter()
            .filter(|n| !self.builtin.contains(*n))
            .map(String::as_str)
    }
}

impl Default for PureSet {
    fn default() -> Self {
        Self::seeded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_set_contains_math_and_alloc() {
        let s = PureSet::seeded();
        assert!(s.contains("sin"));
        assert!(s.contains("cos"));
        assert!(s.contains("log"));
        assert!(s.contains("sqrtf"));
        assert!(s.contains("malloc"));
        assert!(s.contains("free"));
        assert!(!s.contains("printf"));
        assert!(!s.contains("memcpy"));
        assert!(!s.contains("rand")); // stateful!
    }

    #[test]
    fn without_alloc_drops_malloc_only() {
        let s = PureSet::seeded_without_alloc();
        assert!(s.contains("sin"));
        assert!(!s.contains("malloc"));
        assert!(!s.contains("free"));
    }

    #[test]
    fn user_registration_and_enumeration() {
        let mut s = PureSet::seeded();
        s.insert("dot");
        s.insert("mult");
        assert!(s.contains("dot"));
        assert!(!s.is_builtin("dot"));
        assert!(s.is_builtin("sin"));
        let mut users: Vec<&str> = s.user_functions().collect();
        users.sort_unstable();
        assert_eq!(users, vec!["dot", "mult"]);
    }

    #[test]
    fn no_duplicates_in_seed_lists() {
        let mut all: Vec<&str> = PURE_STDLIB.iter().chain(ALLOC_FNS).copied().collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "duplicate entries in seed lists");
    }
}
