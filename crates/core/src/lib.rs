//! # purec-core — the paper's contribution: verified `pure` functions for C
//!
//! This crate implements the compiler pass of *Pure Functions in C: A Small
//! Keyword for Automatic Parallelization* (Süß et al.): a semantic analysis
//! that **verifies** `pure`-marked functions are side-effect-free (unlike
//! GCC's advisory `__attribute__((pure))`), marks parallelizable loop nests
//! with `#pragma scop`, substitutes pure calls by constants so a polyhedral
//! transformer can handle the loops, and finally lowers the extension back
//! to standard C.
//!
//! Pipeline stages (Fig. 1 of the paper):
//!
//! | Stage | Module | Paper name |
//! |-------|--------|------------|
//! | strip system includes | [`cprep`] | PC-PrePro |
//! | resolve includes/macros | [`cprep`] | GCC -E |
//! | purity verification | [`purity`] | PC-CC |
//! | SCoP marking + Listing-5 check | [`scop`] | PC-CC |
//! | call substitution | [`subst`] | PC-CC |
//! | *(polyhedral transform — crate `polyhedral`)* | — | polycc |
//! | call reinsertion + lowering | [`subst`], [`lower`] | PC-CC |
//! | reinsert system includes | [`cprep`] | PC-PosPro |
//!
//! ```
//! use purec_core::pipeline::{run_pc_cc, PcCcOptions};
//!
//! let src = "
//! pure float mult(float a, float b) { return a * b; }
//! int main() {
//!     float acc[16];
//!     for (int i = 0; i < 16; i++) acc[i] = mult(i, 2.0f);
//!     return 0;
//! }";
//! let out = run_pc_cc(src, PcCcOptions::default()).unwrap();
//! assert!(out.pure_set.contains("mult"));
//! assert_eq!(out.scops_marked, 1);
//! ```

pub mod lower;
pub mod pipeline;
pub mod purity;
pub mod scop;
pub mod stdfns;
pub mod subst;

pub use lower::{lower_pure, LowerStats};
pub use pipeline::{
    finish, run_pc_cc, verified_pure_set, FinishedProgram, PcCcOptions, PcCcOutput,
};
pub use purity::{infer_pure, verify_unit, InferenceReport, PurityReport};
pub use scop::{mark_scops, ScopReport};
pub use stdfns::{PureSet, ALLOC_FNS, PURE_STDLIB};
pub use subst::{reinsert_calls, rename_iterators, substitute_calls, SubstMap};
