//! PC-CC orchestration: the syntactical + semantical analysis stage of the
//! extended compiler chain (Fig. 1), from raw source text to a marked,
//! substituted translation unit ready for the polyhedral transformer.
//!
//! ```text
//! C file ─PC-PrePro/GCC-E─► preprocess ─► parse ─► purity verify
//!        ─► SCoP marking ─► pure-call substitution ─► (polycc …)
//! ```
//!
//! The inverse stages ([`finish`]) run after the polyhedral transformer:
//! placeholder reinsertion with iterator adaptation, `pure` lowering, and
//! PC-PosPro (system include reinsertion).

use crate::lower::{lower_pure, LowerStats};
use crate::purity::{verify_unit, PurityReport};
use crate::scop::{mark_scops, ScopReport};
use crate::stdfns::PureSet;
use crate::subst::{reinsert_calls, substitute_calls, SubstMap};
use cfront::ast::TranslationUnit;
use cfront::diag::{Code, Diagnostics};
use cfront::parser::parse;
use cfront::printer::print_unit;
use cprep::{postprocess, preprocess, IncludeMap};
use std::collections::HashMap;

/// Everything PC-CC produces for the downstream stages.
#[derive(Debug)]
pub struct PcCcOutput {
    /// Unit with scop markers and `tmpConst_*` placeholders.
    pub unit: TranslationUnit,
    /// Verified pure registry (builtins + user functions).
    pub pure_set: PureSet,
    /// Placeholder → original call map.
    pub subst: SubstMap,
    /// System includes stripped by PC-PrePro, for PC-PosPro.
    pub system_includes: Vec<String>,
    /// Number of scop regions marked / loops skipped as impure.
    pub scops_marked: usize,
    pub loops_skipped_impure: usize,
    /// Functions declared pure in source order.
    pub declared_pure: Vec<String>,
    /// All diagnostics (warnings/notes) from successful runs.
    pub diags: Diagnostics,
}

/// Purity verdicts as the set of user-function names the interpreter
/// consumes (`cinterp::Program::with_pure_set`). A successful PC-CC run
/// means every declared-pure function *verified*, so downstream stages
/// may apply pure-call optimizations (e.g. the interpreter's memo cache)
/// to exactly these names. Single source of truth for that contract —
/// `PcCcOutput::verified_pure_set` and `purec`'s `ChainOutput` both
/// delegate here.
pub fn verified_pure_set(declared_pure: &[String]) -> std::collections::HashSet<String> {
    declared_pure.iter().cloned().collect()
}

impl PcCcOutput {
    /// See [`verified_pure_set`].
    pub fn verified_pure_set(&self) -> std::collections::HashSet<String> {
        verified_pure_set(&self.declared_pure)
    }
}

/// Options for the PC-CC stage.
#[derive(Debug, Clone)]
pub struct PcCcOptions {
    /// The seeded registry; swap in [`PureSet::seeded_without_alloc`] for
    /// ablation A1.
    pub seed: PureSet,
    /// Local headers visible to `#include "..."`.
    pub includes: IncludeMap,
    /// Treat *inferred*-pure functions as verified: after declared-pure
    /// verification, run [`crate::purity::infer_pure`] and add the
    /// survivors to the pure set / `declared_pure`, widening memoization,
    /// spawn and SCoP eligibility to unannotated functions that happen to
    /// satisfy the PC-CC rules. Off by default (the paper's contract is
    /// opt-in `pure`); differential-tested against the default.
    pub infer_pure: bool,
}

impl Default for PcCcOptions {
    fn default() -> Self {
        PcCcOptions {
            seed: PureSet::seeded(),
            includes: IncludeMap::new(),
            infer_pure: false,
        }
    }
}

/// Run PC-PrePro + GCC-E + PC-CC. Errors abort with the collected
/// diagnostics, mirroring a compiler error exit.
pub fn run_pc_cc(source: &str, opts: PcCcOptions) -> Result<PcCcOutput, Diagnostics> {
    // Preprocess.
    let pp = preprocess(source, &opts.includes);
    if pp.diags.has_errors() {
        return Err(pp.diags);
    }
    let mut diags = pp.diags;

    // Parse.
    let parsed = parse(&pp.text);
    if parsed.diags.has_errors() {
        diags.extend(parsed.diags);
        return Err(diags);
    }
    diags.extend(parsed.diags);
    let mut unit = parsed.unit;

    // Purity verification.
    let PurityReport {
        mut pure_set,
        diags: purity_diags,
        mut declared_pure,
    } = verify_unit(&unit, opts.seed);
    if purity_diags.has_errors() {
        diags.extend(purity_diags);
        return Err(diags);
    }
    diags.extend(purity_diags);

    // Optional speculative inference: unannotated functions that pass the
    // PC-CC rules join the verified set (and therefore the memo/spawn
    // contract via `verified_pure_set`).
    if opts.infer_pure {
        let inferred = crate::purity::infer_pure(&unit, &pure_set).inferred;
        for name in inferred {
            let span = unit
                .find_function(&name)
                .map(|f| f.span)
                .unwrap_or_default();
            diags.note(
                Code::PureInferrable,
                span,
                format!("function '{name}' verified as pure by inference"),
            );
            pure_set.insert(name.clone());
            declared_pure.push(name);
        }
    }

    // SCoP marking (includes the Listing-5 caller-side check).
    let ScopReport {
        marked,
        skipped_impure,
        diags: scop_diags,
    } = mark_scops(&mut unit, &pure_set);
    if scop_diags.has_errors() {
        diags.extend(scop_diags);
        return Err(diags);
    }
    diags.extend(scop_diags);

    // Pure-call substitution for the polyhedral stage.
    let subst = substitute_calls(&mut unit, &pure_set);

    Ok(PcCcOutput {
        unit,
        pure_set,
        subst,
        system_includes: pp.system_includes,
        scops_marked: marked,
        loops_skipped_impure: skipped_impure,
        declared_pure,
        diags,
    })
}

/// Result of [`finish`].
#[derive(Debug)]
pub struct FinishedProgram {
    /// Final C text (standard C: `pure` lowered, includes restored).
    pub text: String,
    /// The lowered unit (for interpretation / inspection).
    pub unit: TranslationUnit,
    pub lower_stats: LowerStats,
    pub calls_reinserted: usize,
}

/// Post-polyhedral stages: reinsert substituted calls (adapting iterator
/// names via `iter_map`), lower `pure` to standard C, pretty-print, and
/// reattach system includes (PC-PosPro).
pub fn finish(
    mut unit: TranslationUnit,
    subst: &SubstMap,
    iter_map: &HashMap<String, cfront::ast::Expr>,
    system_includes: &[String],
) -> FinishedProgram {
    let calls_reinserted = reinsert_calls(&mut unit, subst, iter_map);
    let lower_stats = lower_pure(&mut unit);
    let body = print_unit(&unit);
    let text = postprocess(&body, system_includes);
    FinishedProgram {
        text,
        unit,
        lower_stats,
        calls_reinserted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MATMUL_SRC: &str = "\
#include <stdio.h>
#include <stdlib.h>
#define N 64

float **A, **Bt, **C;

pure float mult(float a, float b) {
    return a * b;
}

pure float dot(pure float* a, pure float* b, int size) {
    float res = 0.0f;
    for (int i = 0; i < size; ++i)
        res += mult(a[i], b[i]);
    return res;
}

int main(int argc, char** argv) {
    for (int i = 0; i < N; ++i)
        for (int j = 0; j < N; ++j)
            C[i][j] = dot((pure float*)A[i], (pure float*)Bt[j], N);
    return 0;
}
";

    #[test]
    fn full_pc_cc_on_matmul() {
        let out = run_pc_cc(MATMUL_SRC, PcCcOptions::default()).expect("pipeline ok");
        assert_eq!(out.system_includes, vec!["stdio.h", "stdlib.h"]);
        assert_eq!(out.declared_pure, vec!["mult", "dot"]);
        // Two scops: the dot-loop in main and the accumulate loop in `dot`
        // itself (it calls only pure `mult`).
        assert!(out.scops_marked >= 1);
        assert!(!out.subst.is_empty());
        assert!(out.pure_set.contains("dot"));
    }

    #[test]
    fn finish_produces_standard_c() {
        let out = run_pc_cc(MATMUL_SRC, PcCcOptions::default()).unwrap();
        let finished = finish(out.unit, &out.subst, &HashMap::new(), &out.system_includes);
        assert!(finished.text.starts_with("#include <stdio.h>"));
        assert!(!finished.text.contains("pure "), "{}", finished.text);
        assert!(!finished.text.contains("tmpConst_"), "{}", finished.text);
        assert!(finished.calls_reinserted >= 1);
        // The result must be reparseable standard C.
        let reparsed = cfront::parser::parse(&finished.text);
        assert!(
            !reparsed.diags.has_errors(),
            "{}",
            reparsed.diags.render_all(&finished.text)
        );
    }

    #[test]
    fn pipeline_rejects_impure_violation() {
        let src = "\
int counter;
pure int bad(int x) { counter = x; return x; }
int main() { return 0; }
";
        let err = run_pc_cc(src, PcCcOptions::default()).unwrap_err();
        assert!(err.has_errors());
    }

    #[test]
    fn pipeline_rejects_listing5() {
        let src = "\
pure int func(pure int* a, int idx) { return a[idx - 1] + a[idx]; }
int main() {
    int array[100];
    for (int i = 1; i < 100; i++)
        array[i] = func((pure int*)array, i);
    return 0;
}
";
        let err = run_pc_cc(src, PcCcOptions::default()).unwrap_err();
        assert!(err.has_code(cfront::diag::Code::PureParamWrittenInLoop));
    }

    #[test]
    fn ablation_seed_changes_marking() {
        let src = "\
float** A;
int main() {
    for (int i = 0; i < 8; i++) A[i] = (float*) malloc(8);
    return 0;
}
";
        let with = run_pc_cc(src, PcCcOptions::default()).unwrap();
        assert_eq!(with.scops_marked, 1);
        let without = run_pc_cc(
            src,
            PcCcOptions {
                seed: PureSet::seeded_without_alloc(),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(without.scops_marked, 0);
    }

    #[test]
    fn macros_resolve_before_analysis() {
        let out = run_pc_cc(MATMUL_SRC, PcCcOptions::default()).unwrap();
        let text = print_unit(&out.unit);
        assert!(text.contains("64"), "{text}");
        assert!(!text.contains("N)"), "macro N must be expanded: {text}");
    }
}
