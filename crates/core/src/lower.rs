//! Final lowering of the `pure` extension back to standard C (Sect. 3.2,
//! last paragraph): the keyword would be a syntax error for GCC, so
//!
//! * `pure` pointer qualifiers (parameters, locals, casts) are replaced by
//!   `const` — similar but weaker semantics;
//! * the `pure` prefix on functions is removed entirely — C has no
//!   equivalent keyword (`const` would bind to the return type).
//!
//! Lowering never changes program behaviour; it only removes the extension.

use cfront::ast::*;
use cfront::visit::visit_types_mut;

/// Statistics from one lowering run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LowerStats {
    pub functions_unmarked: usize,
    pub pointers_consted: usize,
}

/// Lower `pure` constructs in-place.
pub fn lower_pure(unit: &mut TranslationUnit) -> LowerStats {
    let mut stats = LowerStats::default();
    for item in &mut unit.items {
        match item {
            Item::Function(f) => {
                if f.is_pure {
                    f.is_pure = false;
                    stats.functions_unmarked += 1;
                }
                for p in &mut f.params {
                    lower_type(&mut p.ty, &mut stats);
                }
                lower_type(&mut f.ret, &mut stats);
                if let Some(body) = &mut f.body {
                    for stmt in &mut body.stmts {
                        visit_types_mut(stmt, &mut |ty| lower_type_cb(ty, &mut stats));
                    }
                }
            }
            Item::Decl(d) => {
                for dec in &mut d.declarators {
                    lower_type(&mut dec.ty, &mut stats);
                }
            }
            Item::Typedef(t) => lower_type(&mut t.ty, &mut stats),
            Item::Struct(s) => {
                for f in &mut s.fields {
                    lower_type(&mut f.ty, &mut stats);
                }
            }
            Item::Pragma(_) => {}
        }
    }
    stats
}

fn lower_type(ty: &mut Type, stats: &mut LowerStats) {
    if ty.pure_qual {
        ty.pure_qual = false;
        // `pure T*` → `const T*`: write protection of the pointee.
        ty.base_const = true;
        stats.pointers_consted += 1;
    }
}

fn lower_type_cb(ty: &mut Type, stats: &mut LowerStats) {
    lower_type(ty, stats);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfront::parser::parse;
    use cfront::printer::print_unit;

    fn lower(src: &str) -> (String, LowerStats) {
        let mut unit = parse(src).unit;
        let stats = lower_pure(&mut unit);
        (print_unit(&unit), stats)
    }

    #[test]
    fn listing7_lowers_to_listing8_signature() {
        // Paper Listing 8: `pure float dot(pure float* a, ...)` becomes
        // `float dot(const float* a, ...)`.
        let (out, stats) =
            lower("pure float dot(pure float* a, pure float* b, int size) { return a[0] * b[0]; }");
        assert!(
            out.contains("float dot(const float* a, const float* b, int size)"),
            "{out}"
        );
        assert!(!out.contains("pure"), "{out}");
        assert_eq!(stats.functions_unmarked, 1);
        assert_eq!(stats.pointers_consted, 2);
    }

    #[test]
    fn pure_casts_become_const_casts() {
        let (out, _) = lower(
            "float** A;\n\
             float dot(const float* a);\n\
             int main() { float x = dot((pure float*)A[0]); return 0; }",
        );
        assert!(out.contains("(const float*)A[0]"), "{out}");
        assert!(!out.contains("pure"));
    }

    #[test]
    fn pure_locals_become_const_locals() {
        let (out, _) = lower(
            "int* g;\n\
             pure int f(void) { pure int* p = (pure int*)g; return p[0]; }",
        );
        assert!(out.contains("const int* p = (const int*)g;"), "{out}");
    }

    #[test]
    fn lowered_output_reparses_without_pure() {
        let (out, _) = lower(
            "pure float mult(float a, float b) { return a * b; }\n\
             int main() { return 0; }",
        );
        let r = parse(&out);
        assert!(!r.diags.has_errors());
        for f in r.unit.functions() {
            assert!(!f.is_pure);
        }
    }

    #[test]
    fn lowering_is_idempotent() {
        let src = "pure int f(pure int* p) { return p[0]; }";
        let mut unit = parse(src).unit;
        lower_pure(&mut unit);
        let once = print_unit(&unit);
        let stats = lower_pure(&mut unit);
        assert_eq!(stats, LowerStats::default());
        assert_eq!(print_unit(&unit), once);
    }

    #[test]
    fn plain_code_is_untouched() {
        let src = "int add(int a, int b) {\n    return a + b;\n}\n";
        let (out, stats) = lower(src);
        assert_eq!(out, src);
        assert_eq!(stats, LowerStats::default());
    }
}
