//! The purity verifier — the additional compiler pass of the paper
//! (Sect. 3.2), which *proves* that functions marked `pure` have no
//! side-effects, unlike GCC's advisory `__attribute__((pure))`.
//!
//! Enforced rules (with the listing that motivates each):
//!
//! * a pure function may only call functions in the pure registry,
//!   including itself (Listing 2, line 14 rejects `func1()`);
//! * writes must stay inside the function's scope: assignments whose target
//!   roots at a global or at pointer parameters are side-effects
//!   (Listing 2 / Listing 4);
//! * external pointer data may be *read* after being cast to a `pure`
//!   pointer and bound to a `pure`-declared local (Listing 3); binding an
//!   external pointer to a plain local pointer is rejected (Listing 2,
//!   line 11; Listing 4, line 4);
//! * `pure` pointers are assign-once and their pointees are immutable;
//! * `free` may only release memory `malloc`ed in the same function;
//! * `malloc`/`free`/math builtins are allowed per the seeded registry.

use crate::stdfns::PureSet;
use cfront::ast::*;
use cfront::diag::{Code, Diagnostic, Diagnostics};
use cfront::span::Span;
use std::collections::{HashMap, HashSet};

/// Result of verifying a translation unit.
#[derive(Debug)]
pub struct PurityReport {
    /// Final registry: builtins + every *verified* pure function.
    pub pure_set: PureSet,
    pub diags: Diagnostics,
    /// Functions declared pure, in source order (verified or not).
    pub declared_pure: Vec<String>,
}

impl PurityReport {
    pub fn ok(&self) -> bool {
        !self.diags.has_errors()
    }
}

/// Verify all `pure`-declared functions in `unit` against the given seeded
/// registry (normally [`PureSet::seeded`]).
pub fn verify_unit(unit: &TranslationUnit, seed: PureSet) -> PurityReport {
    let mut pure_set = seed;
    let mut declared_pure = Vec::new();

    // Phase 1 — registration. Every function *declared* pure enters the
    // hashset first, so pure functions may call each other and themselves
    // regardless of source order.
    for f in unit.functions() {
        if f.is_pure {
            if !pure_set.contains(&f.name) {
                declared_pure.push(f.name.clone());
            }
            pure_set.insert(f.name.clone());
        }
    }

    let globals: HashSet<String> = unit
        .global_variables()
        .into_iter()
        .map(str::to_string)
        .collect();

    // Phase 2 — verification of each pure definition.
    let mut diags = Diagnostics::new();
    for f in unit.functions() {
        if f.is_pure && f.is_definition() {
            let mut checker = FnChecker::new(f, &pure_set, &globals);
            checker.check();
            diags.extend(checker.diags);
        }
    }

    PurityReport {
        pure_set,
        diags,
        declared_pure,
    }
}

/// Result of speculative purity inference ([`infer_pure`]).
#[derive(Debug, Default)]
pub struct InferenceReport {
    /// Unannotated function definitions that pass the PC-CC rules as
    /// written (in source order) — each "could be declared `pure`".
    pub inferred: Vec<String>,
    /// Candidates that failed, with the first blocking diagnostic
    /// (the reason the function cannot be declared pure today).
    pub blocked: Vec<(String, Diagnostic)>,
}

/// Run the PC-CC rules *speculatively* over every unannotated function
/// definition in `unit` (`main` excluded): which of them could be
/// declared `pure` as written? `base` is the registry the declared
/// functions already verified against (builtins + verified user
/// functions).
///
/// Inference computes the greatest fixpoint: all candidates enter the
/// trial registry optimistically (so mutually recursive pairs can admit
/// each other, mirroring the two-phase registration of [`verify_unit`]),
/// then failing candidates are evicted and the survivors re-checked
/// until the set is stable. The checker only *consults* the registry for
/// calls, so eviction can never turn a failing body into a passing one —
/// the loop terminates and the survivors are sound.
pub fn infer_pure(unit: &TranslationUnit, base: &PureSet) -> InferenceReport {
    let globals: HashSet<String> = unit
        .global_variables()
        .into_iter()
        .map(str::to_string)
        .collect();

    let candidates: Vec<&Function> = unit
        .functions()
        .filter(|f| f.is_definition() && !f.is_pure && f.name != "main" && !base.contains(&f.name))
        .collect();

    let mut trial = base.clone();
    for f in &candidates {
        trial.insert(f.name.clone());
    }

    let mut alive: HashSet<String> = candidates.iter().map(|f| f.name.clone()).collect();
    let mut blocked: HashMap<String, Diagnostic> = HashMap::new();
    loop {
        let mut evicted = false;
        for f in &candidates {
            if !alive.contains(&f.name) {
                continue;
            }
            let failed = {
                let mut checker = FnChecker::new(f, &trial, &globals);
                checker.check();
                if checker.diags.has_errors() {
                    Some(checker.diags.items().first().cloned())
                } else {
                    None
                }
            };
            if let Some(first) = failed {
                alive.remove(&f.name);
                trial.remove(&f.name);
                if let Some(first) = first {
                    blocked.insert(f.name.clone(), first);
                }
                evicted = true;
            }
        }
        if !evicted {
            break;
        }
    }

    InferenceReport {
        inferred: candidates
            .iter()
            .filter(|f| alive.contains(&f.name))
            .map(|f| f.name.clone())
            .collect(),
        blocked: candidates
            .iter()
            .filter_map(|f| blocked.remove(&f.name).map(|d| (f.name.clone(), d)))
            .collect(),
    }
}

/// What a name refers to inside the function being checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Binding {
    /// By-value scalar parameter (writes are local copies — harmless).
    ScalarParam,
    /// Pointer parameter without `pure` (reads ok, any write rejected).
    PtrParam,
    /// Pointer parameter with `pure` (assign-once, pointee immutable).
    PurePtrParam,
    /// Local non-pointer variable.
    LocalScalar,
    /// Local pointer (may hold locally allocated memory).
    LocalPtr,
    /// Local pointer declared `pure` (assign-once, pointee immutable).
    PureLocalPtr,
    /// Local aggregate (struct value or fixed array) — fully local storage.
    LocalAggregate,
    Global,
}

struct FnChecker<'a> {
    func: &'a Function,
    pure_set: &'a PureSet,
    globals: &'a HashSet<String>,
    /// Name → binding, shadowing-aware only to the degree the subset needs
    /// (innermost declaration wins; the evaluation codes do not shadow).
    scope: HashMap<String, Binding>,
    /// Pure pointers that have received their single assignment.
    pure_assigned: HashSet<String>,
    /// Local pointers whose value came from `malloc` in this function.
    malloced: HashSet<String>,
    diags: Diagnostics,
}

impl<'a> FnChecker<'a> {
    fn new(func: &'a Function, pure_set: &'a PureSet, globals: &'a HashSet<String>) -> Self {
        let mut scope = HashMap::new();
        let mut pure_assigned = HashSet::new();
        for p in &func.params {
            let Some(name) = &p.name else { continue };
            let binding = if p.ty.is_pointer() {
                if p.ty.pure_qual {
                    // A pure pointer param arrives already bound.
                    pure_assigned.insert(name.clone());
                    Binding::PurePtrParam
                } else {
                    Binding::PtrParam
                }
            } else {
                Binding::ScalarParam
            };
            scope.insert(name.clone(), binding);
        }
        FnChecker {
            func,
            pure_set,
            globals,
            scope,
            pure_assigned,
            malloced: HashSet::new(),
            diags: Diagnostics::new(),
        }
    }

    fn check(&mut self) {
        let body = self.func.body.as_ref().expect("definition has body");
        for stmt in &body.stmts {
            self.check_stmt(stmt);
        }
    }

    fn binding_of(&self, name: &str) -> Binding {
        if let Some(b) = self.scope.get(name) {
            *b
        } else if self.globals.contains(name) {
            Binding::Global
        } else {
            // Unknown identifier — assume external to stay safe.
            Binding::Global
        }
    }

    // -- statements ---------------------------------------------------------

    fn check_stmt(&mut self, stmt: &Stmt) {
        match &stmt.kind {
            StmtKind::Decl(d) => self.check_declaration(d),
            StmtKind::Expr(Some(e)) => self.check_expr(e),
            StmtKind::Expr(None) => {}
            StmtKind::Block(b) => {
                for s in &b.stmts {
                    self.check_stmt(s);
                }
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.check_read(cond);
                self.check_stmt(then_branch);
                if let Some(e) = else_branch {
                    self.check_stmt(e);
                }
            }
            StmtKind::While { cond, body } => {
                self.check_read(cond);
                self.check_stmt(body);
            }
            StmtKind::DoWhile { body, cond } => {
                self.check_stmt(body);
                self.check_read(cond);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                match init.as_ref() {
                    ForInit::Decl(d) => self.check_declaration(d),
                    ForInit::Expr(Some(e)) => self.check_expr(e),
                    ForInit::Expr(None) => {}
                }
                if let Some(c) = cond {
                    self.check_read(c);
                }
                if let Some(s) = step {
                    self.check_expr(s);
                }
                self.check_stmt(body);
            }
            StmtKind::Return(Some(e)) => self.check_read(e),
            StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
            StmtKind::Pragma(_) => {}
        }
    }

    fn check_declaration(&mut self, d: &Declaration) {
        for dec in &d.declarators {
            let binding = if dec.is_array() {
                Binding::LocalAggregate
            } else if dec.ty.is_pointer() {
                if dec.ty.pure_qual {
                    Binding::PureLocalPtr
                } else {
                    Binding::LocalPtr
                }
            } else if matches!(dec.ty.base, BaseType::Struct(_)) {
                Binding::LocalAggregate
            } else {
                Binding::LocalScalar
            };
            self.scope.insert(dec.name.clone(), binding);

            if let Some(init) = &dec.init {
                self.check_read(init);
                if dec.ty.is_pointer() && !dec.is_array() {
                    if dec.ty.pure_qual {
                        self.pure_assigned.insert(dec.name.clone());
                    }
                    self.check_pointer_binding(
                        &dec.name,
                        binding,
                        init,
                        dec.span,
                        dec.ty.pure_qual,
                    );
                }
            }
        }
    }

    // -- expressions ---------------------------------------------------------

    /// Check an expression in *read* position: no writes may occur inside,
    /// but calls still need vetting (and assignments hidden in reads are
    /// checked as writes).
    fn check_read(&mut self, e: &Expr) {
        self.check_expr(e);
    }

    /// Full expression check: calls, assignments, increments.
    fn check_expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Assign(_, lhs, rhs) => {
                self.check_read(rhs);
                self.check_write(lhs, rhs, e.span);
            }
            ExprKind::Unary(op, inner) if op.writes_operand() => {
                self.check_write(inner, &Expr::int(1), e.span);
            }
            ExprKind::Call { callee, args } => {
                self.check_call(callee, args, e.span);
                for a in args {
                    self.check_read(a);
                }
            }
            ExprKind::Unary(_, inner) | ExprKind::Cast(_, inner) | ExprKind::SizeofExpr(inner) => {
                self.check_expr(inner)
            }
            ExprKind::Binary(_, l, r) | ExprKind::Comma(l, r) => {
                self.check_expr(l);
                self.check_expr(r);
            }
            ExprKind::Ternary(c, t, f) => {
                self.check_expr(c);
                self.check_expr(t);
                self.check_expr(f);
            }
            ExprKind::Index(b, i) => {
                self.check_expr(b);
                self.check_expr(i);
            }
            ExprKind::Member { base, .. } => self.check_expr(base),
            _ => {}
        }
    }

    fn check_call(&mut self, callee: &Expr, args: &[Expr], span: Span) {
        let Some(name) = callee.as_ident() else {
            self.diags.error(
                Code::PureUnknownCallee,
                span,
                "indirect calls are not allowed in pure functions",
            );
            return;
        };
        if name == "__initlist" {
            return; // synthetic initializer marker
        }
        if !self.pure_set.contains(name) {
            self.diags.error(
                Code::PureCallsImpure,
                span,
                format!(
                    "pure function '{}' calls '{}', which is not verified pure",
                    self.func.name, name
                ),
            );
            return;
        }
        if name == "free" {
            self.check_free(args, span);
        }
    }

    /// `free(p)` is only allowed when `p` was `malloc`ed in this function.
    fn check_free(&mut self, args: &[Expr], span: Span) {
        let rooted = args.first().and_then(|a| a.lvalue_root());
        match rooted {
            Some(name) if self.malloced.contains(name) => {}
            Some(name) => {
                self.diags.error(
                    Code::PureFreesForeign,
                    span,
                    format!(
                        "pure function '{}' frees '{}', which was not allocated in its scope",
                        self.func.name, name
                    ),
                );
            }
            None => {
                self.diags.error(
                    Code::PureFreesForeign,
                    span,
                    "free() of a non-variable expression in a pure function",
                );
            }
        }
    }

    /// Vet a write to `lhs` (assignment target or ++/-- operand).
    fn check_write(&mut self, lhs: &Expr, rhs: &Expr, span: Span) {
        let Some(root) = lhs.lvalue_root() else {
            self.diags.error(
                Code::PureWritesExternal,
                span,
                "assignment target is not a recognisable lvalue in a pure function",
            );
            return;
        };
        let root = root.to_string();
        let through = lhs.writes_through_pointer();
        let binding = self.binding_of(&root);

        match binding {
            Binding::Global => {
                self.diags.error(
                    Code::PureGlobalWrite,
                    span,
                    format!(
                        "pure function '{}' writes global '{}' — a side-effect",
                        self.func.name, root
                    ),
                );
            }
            Binding::PtrParam if through => {
                self.diags.error(
                    Code::PureWritesExternal,
                    span,
                    format!(
                        "pure function '{}' writes through pointer parameter '{}'",
                        self.func.name, root
                    ),
                );
            }
            Binding::PtrParam => {
                // Rebinding the (by-value) pointer itself is a local effect,
                // but it must not capture external data without the pure
                // cast discipline.
                self.check_pointer_binding(&root, binding, rhs, span, false);
            }
            Binding::PurePtrParam | Binding::PureLocalPtr => {
                if through {
                    self.diags.error(
                        Code::PureWritesExternal,
                        span,
                        format!("pure pointer '{root}' is write-protected (its content cannot be modified)"),
                    );
                } else if self.pure_assigned.contains(&root) {
                    self.diags.error(
                        Code::PurePointerReassigned,
                        span,
                        format!("pure pointer '{root}' may only be assigned once"),
                    );
                } else {
                    self.pure_assigned.insert(root.clone());
                    self.check_pointer_binding(&root, binding, rhs, span, true);
                }
            }
            Binding::LocalPtr if !through => {
                self.check_pointer_binding(&root, binding, rhs, span, false);
            }
            Binding::ScalarParam
            | Binding::LocalScalar
            | Binding::LocalAggregate
            | Binding::LocalPtr => {
                // Local storage — writes allowed. (LocalPtr write-through is
                // legal only for locally allocated memory; foreign data can
                // only have entered it through a rejected binding, so by
                // induction the pointee is local.)
            }
        }
    }

    /// Enforce the pointer-binding discipline of Listings 2–4 when a pointer
    /// variable receives a value. `lhs_is_pure` says whether the receiving
    /// variable is pure-qualified.
    fn check_pointer_binding(
        &mut self,
        lhs_name: &str,
        lhs_binding: Binding,
        rhs: &Expr,
        span: Span,
        lhs_is_pure: bool,
    ) {
        let lhs_is_pure =
            lhs_is_pure || matches!(lhs_binding, Binding::PureLocalPtr | Binding::PurePtrParam);

        // A top-level `(pure T*)` cast blesses the binding — but only when
        // the receiving pointer is itself pure (Listing 3).
        let (stripped, has_pure_cast) = strip_casts(rhs);

        // `malloc`/`calloc` results and calls to pure functions produce
        // fresh or pure data — always fine.
        if let Some((callee, _)) = stripped.as_direct_call() {
            if callee == "malloc" || callee == "calloc" {
                self.malloced.insert(lhs_name.to_string());
                return;
            }
            if self.pure_set.contains(callee) {
                return;
            }
            // Impure call already reported by check_expr.
            return;
        }

        // Address-of a local is local data.
        if let ExprKind::Unary(UnOp::AddrOf, inner) = &stripped.kind {
            if let Some(r) = inner.lvalue_root() {
                if !matches!(self.binding_of(r), Binding::Global) {
                    return;
                }
            }
        }

        let Some(src_root) = stripped.lvalue_root() else {
            // Arithmetic on pointers etc. — fall back to the identifier
            // roots of the whole expression: any external pointer source
            // requires the pure-cast discipline.
            let mut bad: Option<String> = None;
            stripped.walk(&mut |e| {
                if bad.is_some() {
                    return;
                }
                if let Some(name) = e.as_ident() {
                    if matches!(
                        self.binding_of(name),
                        Binding::Global | Binding::PtrParam | Binding::PurePtrParam
                    ) {
                        bad = Some(name.to_string());
                    }
                }
            });
            if let Some(name) = bad {
                if !(lhs_is_pure && has_pure_cast) {
                    self.report_bad_binding(lhs_name, &name, span, lhs_is_pure, has_pure_cast);
                }
            }
            return;
        };

        match self.binding_of(src_root) {
            Binding::Global => {
                if !(lhs_is_pure && has_pure_cast) {
                    self.report_bad_binding(lhs_name, src_root, span, lhs_is_pure, has_pure_cast);
                }
            }
            Binding::PtrParam => {
                // Non-pure pointer parameters hold external data too: they
                // require the same discipline as globals.
                if !(lhs_is_pure && has_pure_cast) {
                    self.report_bad_binding(lhs_name, src_root, span, lhs_is_pure, has_pure_cast);
                }
            }
            Binding::PurePtrParam | Binding::PureLocalPtr => {
                // Pure sources may flow to pure targets freely (Listing 2,
                // line 10: `pure int* ptr = p1;`). To a *plain* pointer they
                // would lose the write protection.
                if !lhs_is_pure {
                    self.diags.error(
                        Code::PureAssignsExternalPtrWithoutCast,
                        span,
                        format!(
                            "pure pointer '{src_root}' may not be assigned to non-pure pointer '{lhs_name}'"
                        ),
                    );
                }
            }
            _ => {
                // Local source: propagate malloc provenance.
                if self.malloced.contains(src_root) {
                    self.malloced.insert(lhs_name.to_string());
                }
            }
        }
    }

    fn report_bad_binding(
        &mut self,
        lhs: &str,
        src: &str,
        span: Span,
        lhs_is_pure: bool,
        has_cast: bool,
    ) {
        let why = match (lhs_is_pure, has_cast) {
            (false, _) => format!("'{lhs}' must be declared pure to receive external data"),
            (true, false) => format!("assignment to '{lhs}' requires a (pure T*) cast"),
            _ => unreachable!("valid bindings are not reported"),
        };
        self.diags.error(
            Code::PureAssignsExternalPtrWithoutCast,
            span,
            format!(
                "pure function '{}' binds external pointer '{src}': {why}",
                self.func.name
            ),
        );
    }
}

/// Strip casts off an expression; reports whether any stripped cast was a
/// `pure` pointer cast.
fn strip_casts(e: &Expr) -> (&Expr, bool) {
    let mut cur = e;
    let mut pure_cast = false;
    while let ExprKind::Cast(ty, inner) = &cur.kind {
        if ty.pure_qual {
            pure_cast = true;
        }
        cur = inner;
    }
    (cur, pure_cast)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfront::parser::parse;

    fn verify(src: &str) -> PurityReport {
        let r = parse(src);
        assert!(
            !r.diags.has_errors(),
            "parse failed: {}",
            r.diags.render_all(src)
        );
        verify_unit(&r.unit, PureSet::seeded())
    }

    // ---- Listing 2: the canonical valid/invalid operations -----------------

    #[test]
    fn listing2_valid_body_verifies() {
        let report = verify(
            "int* globalPtr;\n\
             pure int* func2(pure int* p1, int p2) {\n\
                 int a = p2;\n\
                 int b = a + 42;\n\
                 int* c = (int*) malloc(3 * sizeof(int));\n\
                 pure int* ptr = p1;\n\
                 pure int* extPtr2;\n\
                 extPtr2 = (pure int*) globalPtr;\n\
                 pure int* extPtr3;\n\
                 extPtr3 = (pure int*) func2(p1, p2);\n\
                 return c;\n\
             }",
        );
        assert!(report.ok(), "{:?}", report.diags.items());
        assert!(report.pure_set.contains("func2"));
    }

    #[test]
    fn listing2_global_ptr_to_plain_local_rejected() {
        // int* extPtr1 = globalPtr;   // invalid
        let report = verify(
            "int* globalPtr;\n\
             pure int* f(pure int* p1, int p2) {\n\
                 int* extPtr1 = globalPtr;\n\
                 return 0;\n\
             }",
        );
        assert!(!report.ok());
        assert!(report
            .diags
            .has_code(Code::PureAssignsExternalPtrWithoutCast));
    }

    #[test]
    fn listing2_impure_call_rejected() {
        let report = verify(
            "void func1();\n\
             pure int f(int x) { func1(); return x; }",
        );
        assert!(!report.ok());
        assert!(report.diags.has_code(Code::PureCallsImpure));
    }

    #[test]
    fn self_recursion_is_allowed() {
        let report =
            verify("pure int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }");
        assert!(report.ok(), "{:?}", report.diags.items());
    }

    #[test]
    fn mutual_recursion_between_pure_functions_allowed() {
        let report = verify(
            "pure int is_odd(int n);\n\
             pure int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }\n\
             pure int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }",
        );
        assert!(report.ok(), "{:?}", report.diags.items());
    }

    // ---- Listing 4: assignment discipline ----------------------------------

    #[test]
    fn listing4_plain_rebinding_of_external_rejected() {
        let report = verify(
            "int* extPtr;\n\
             pure void f() {\n\
                 pure int* intPtr = (pure int*) extPtr;\n\
                 intPtr = extPtr;\n\
             }",
        );
        assert!(!report.ok());
        // Reassignment of a pure pointer (assign-once) fires.
        assert!(report.diags.has_code(Code::PurePointerReassigned));
    }

    #[test]
    fn local_struct_member_write_is_valid() {
        let report = verify(
            "struct datatype { int storage; };\n\
             pure int f(int data) {\n\
                 struct datatype intStruct;\n\
                 intStruct.storage = data;\n\
                 return intStruct.storage;\n\
             }",
        );
        assert!(report.ok(), "{:?}", report.diags.items());
    }

    /// The three canonical rejection classes, each on a function that
    /// would otherwise look spawnable (recursive, scalar in/out): a
    /// global write, an I/O builtin, and a call to an unverified
    /// function must each fail verification — keeping the function out
    /// of the verified set, hence out of the interpreter's memo *and*
    /// spawn-site analyses (which only consider verified-pure
    /// functions; see `cinterp::spawn`'s companion test).
    #[test]
    fn rejected_bodies_stay_out_of_the_pure_set() {
        // (1) Global write.
        let w = verify(
            "int g;\n\
             pure int f(int n) { g = n; if (n < 2) return n; return f(n - 1); }",
        );
        assert!(!w.ok());
        assert!(w.diags.has_code(Code::PureGlobalWrite));
        assert!(!w.declared_pure.is_empty() && !w.diags.items().is_empty());

        // (2) I/O builtin: printf is not in the seeded pure registry.
        let io = verify("pure int f(int n) { printf(\"%d\\n\", n); return n; }");
        assert!(!io.ok());
        assert!(io.diags.has_code(Code::PureCallsImpure));

        // (3) Call to a function that is not verified pure.
        let call = verify(
            "int ticker(int n);\n\
             pure int f(int n) { if (n < 2) return n; return f(n - 1) + ticker(n); }",
        );
        assert!(!call.ok());
        assert!(call.diags.has_code(Code::PureCallsImpure));
    }

    #[test]
    fn global_scalar_write_rejected() {
        let report = verify("int counter;\npure int f(int x) { counter = x; return x; }");
        assert!(!report.ok());
        assert!(report.diags.has_code(Code::PureGlobalWrite));
    }

    #[test]
    fn global_increment_rejected() {
        let report = verify("int counter;\npure int f(int x) { counter++; return x; }");
        assert!(!report.ok());
        assert!(report.diags.has_code(Code::PureGlobalWrite));
    }

    #[test]
    fn write_through_pointer_param_rejected() {
        let report = verify("pure void f(int* out, int v) { out[0] = v; }");
        assert!(!report.ok());
        assert!(report.diags.has_code(Code::PureWritesExternal));
        let report2 = verify("pure void f(int* out, int v) { *out = v; }");
        assert!(report2.diags.has_code(Code::PureWritesExternal));
    }

    #[test]
    fn write_through_pure_pointer_rejected() {
        let report = verify("pure void f(pure int* a) { a[0] = 1; }");
        assert!(!report.ok());
        assert!(report.diags.has_code(Code::PureWritesExternal));
    }

    #[test]
    fn scalar_param_writes_are_local_copies() {
        let report = verify("pure int f(int x) { x = x + 1; return x; }");
        assert!(report.ok(), "{:?}", report.diags.items());
    }

    #[test]
    fn local_malloc_write_and_free_are_valid() {
        let report = verify(
            "pure int f(int n) {\n\
                 int* buf = (int*) malloc(n * sizeof(int));\n\
                 buf[0] = 42;\n\
                 int v = buf[0];\n\
                 free(buf);\n\
                 return v;\n\
             }",
        );
        assert!(report.ok(), "{:?}", report.diags.items());
    }

    #[test]
    fn freeing_parameter_rejected() {
        let report = verify("pure void f(int* p) { free(p); }");
        assert!(!report.ok());
        assert!(report.diags.has_code(Code::PureFreesForeign));
    }

    #[test]
    fn freeing_global_rejected() {
        let report = verify("int* g;\npure void f() { free(g); }");
        assert!(!report.ok());
        assert!(report.diags.has_code(Code::PureFreesForeign));
    }

    #[test]
    fn malloc_provenance_flows_through_local_copies() {
        let report = verify(
            "pure void f(int n) {\n\
                 int* a = (int*) malloc(n);\n\
                 int* b = a;\n\
                 free(b);\n\
             }",
        );
        assert!(report.ok(), "{:?}", report.diags.items());
    }

    #[test]
    fn pure_param_to_pure_local_without_cast_ok() {
        // Listing 2, line 10: pure int* ptr = p1;
        let report = verify("pure int f(pure int* p1) { pure int* ptr = p1; return ptr[0]; }");
        assert!(report.ok(), "{:?}", report.diags.items());
    }

    #[test]
    fn pure_param_to_plain_local_rejected() {
        let report = verify("pure int f(pure int* p1) { int* q = p1; return q[0]; }");
        assert!(!report.ok());
        assert!(report
            .diags
            .has_code(Code::PureAssignsExternalPtrWithoutCast));
    }

    #[test]
    fn reading_globals_is_allowed() {
        // GCC's pure attribute semantics: reads of globals are fine.
        let report = verify("int N;\npure int f(int x) { return x + N; }");
        assert!(report.ok(), "{:?}", report.diags.items());
    }

    #[test]
    fn math_builtins_are_callable() {
        let report = verify("pure float f(float x) { return sqrtf(x) + sinf(x); }");
        assert!(report.ok(), "{:?}", report.diags.items());
    }

    #[test]
    fn matmul_listing7_functions_verify() {
        let report = verify(
            "pure float mult(float a, float b) { return a * b; }\n\
             pure float dot(pure float* a, pure float* b, int size) {\n\
                 float res = 0.0f;\n\
                 for (int i = 0; i < size; ++i) res += mult(a[i], b[i]);\n\
                 return res;\n\
             }",
        );
        assert!(report.ok(), "{:?}", report.diags.items());
        assert!(report.pure_set.contains("mult"));
        assert!(report.pure_set.contains("dot"));
        assert_eq!(report.declared_pure, vec!["mult", "dot"]);
    }

    #[test]
    fn impure_functions_are_not_checked() {
        // Writing globals in a non-pure function is normal C.
        let report = verify("int g;\nvoid setter(int v) { g = v; }");
        assert!(report.ok());
        assert!(!report.pure_set.contains("setter"));
    }

    #[test]
    fn indirect_call_rejected() {
        // Calls through anything but a plain identifier are not verifiable.
        let report = verify("pure int f(pure int* p, int x) { return p[0](x); }");
        assert!(!report.ok());
        assert!(report.diags.has_code(Code::PureUnknownCallee));
    }

    #[test]
    fn pure_local_ptr_assign_once_enforced() {
        let report = verify(
            "int* g;\n\
             pure void f() {\n\
                 pure int* p;\n\
                 p = (pure int*) g;\n\
                 p = (pure int*) g;\n\
             }",
        );
        assert!(!report.ok());
        assert!(report.diags.has_code(Code::PurePointerReassigned));
    }
}
