//! Criterion benches of the omprt runtime: schedule overheads on real
//! threads (static vs dynamic vs guided), matching the cost model's
//! assumptions, plus the parallel reference applications at reduced size.

use criterion::{criterion_group, criterion_main, Criterion};
use machine::{parallel_for, OmpSchedule};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

fn bench_schedules(c: &mut Criterion) {
    let mut g = c.benchmark_group("omprt-schedules");
    g.sample_size(20);
    let n = 64 * 1024u64;
    for sched in [
        OmpSchedule::Static,
        OmpSchedule::StaticChunk(64),
        OmpSchedule::Dynamic(1),
        OmpSchedule::Dynamic(64),
        OmpSchedule::Guided(16),
    ] {
        g.bench_function(format!("sum_{sched}"), |b| {
            b.iter(|| {
                let acc = AtomicU64::new(0);
                parallel_for(n, 4, sched, |i| {
                    acc.fetch_add(black_box(i), Ordering::Relaxed);
                });
                acc.into_inner()
            })
        });
    }
    g.finish();
}

fn bench_apps_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("apps-parallel");
    g.sample_size(10);

    let a = apps::matmul::Matrix::random(128, 1);
    let bt = apps::matmul::Matrix::random(128, 2);
    g.bench_function("matmul_128_seq", |b| {
        b.iter(|| apps::matmul::matmul_seq(black_box(&a), black_box(&bt)))
    });
    g.bench_function("matmul_128_par4", |b| {
        b.iter(|| apps::matmul::matmul_par(black_box(&a), black_box(&bt), 4, OmpSchedule::Static))
    });
    g.bench_function("matmul_128_blocked", |b| {
        b.iter(|| apps::matmul::matmul_blocked(black_box(&a), black_box(&bt), 32))
    });

    g.bench_function("heat_96_step_seq", |b| {
        let mut p = apps::heat::Plate::new(96);
        b.iter(|| {
            p.step_seq();
            black_box(p.total_heat())
        })
    });
    g.bench_function("heat_96_step_par4", |b| {
        let mut p = apps::heat::Plate::new(96);
        b.iter(|| {
            p.step_par(4, OmpSchedule::Static);
            black_box(p.total_heat())
        })
    });

    let tile = apps::satellite::Tile::synthetic(64, 64, 3);
    g.bench_function("satellite_64x64_static4", |b| {
        b.iter(|| apps::satellite::filter_par(black_box(&tile), 4, OmpSchedule::Static))
    });
    g.bench_function("satellite_64x64_dynamic1_4", |b| {
        b.iter(|| apps::satellite::filter_par(black_box(&tile), 4, OmpSchedule::Dynamic(1)))
    });

    let m = apps::lama::EllMatrix::pwtk_like(4096, 24, 7);
    let x: Vec<f32> = (0..4096).map(|i| (i % 17) as f32 * 0.25).collect();
    g.bench_function("lama_spmv_4096_seq", |b| {
        b.iter(|| m.spmv_seq(black_box(&x)))
    });
    g.bench_function("lama_spmv_4096_par4", |b| {
        b.iter(|| m.spmv_par(black_box(&x), 4, OmpSchedule::Static))
    });
    g.finish();
}

criterion_group!(benches, bench_schedules, bench_apps_parallel);
criterion_main!(benches);
