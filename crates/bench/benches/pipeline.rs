//! Criterion benches of the compiler chain itself: lexing, parsing,
//! purity verification + SCoP marking (PC-CC), and the full
//! source-to-source transform on each evaluation application.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use purec::chain::{compile, ChainOptions};
use purec_core::{run_pc_cc, PcCcOptions};
use std::hint::black_box;

fn bench_front_end(c: &mut Criterion) {
    let src = apps::matmul::c_source(64);
    let mut g = c.benchmark_group("front-end");
    g.bench_function("lex_matmul", |b| {
        b.iter(|| cfront::lexer::lex(black_box(&src)))
    });
    g.bench_function("parse_matmul", |b| {
        b.iter(|| cfront::parser::parse(black_box(&src)))
    });
    let unit = cfront::parser::parse(&src).unit;
    g.bench_function("print_matmul", |b| {
        b.iter(|| cfront::print_unit(black_box(&unit)))
    });
    g.finish();
}

fn bench_pc_cc(c: &mut Criterion) {
    let mut g = c.benchmark_group("pc-cc");
    for (name, src) in [
        ("matmul", apps::matmul::c_source(64)),
        ("heat", apps::heat::c_source(32, 8)),
        ("satellite", apps::satellite::c_source(16, 16)),
        ("lama", apps::lama::c_source(128, 9)),
    ] {
        g.bench_function(name, |b| {
            b.iter_batched(
                PcCcOptions::default,
                |opts| run_pc_cc(black_box(&src), opts).expect("pipeline ok"),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_full_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("full-chain");
    g.sample_size(20);
    for (name, src) in [
        ("matmul", apps::matmul::c_source(64)),
        ("heat", apps::heat::c_source(32, 8)),
        ("satellite", apps::satellite::c_source(16, 16)),
        ("lama", apps::lama::c_source(128, 9)),
    ] {
        g.bench_function(name, |b| {
            b.iter_batched(
                ChainOptions::default,
                |opts| compile(black_box(&src), opts).expect("chain ok"),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_front_end, bench_pc_cc, bench_full_chain);
criterion_main!(benches);
