//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * **A1** — treating `malloc` as pure (the accidental init-loop
//!   parallelization behind Fig. 3);
//! * **A2** — function-call overhead vs inlining (the heat result);
//! * **A3** — schedule choice on the imbalanced satellite workload;
//! * **A4** — SICA tile-size selection vs fixed tiles;
//! * **A5** — NUMA first-touch page placement on/off.
//!
//! Each bench measures the affected component and prints the ablated
//! figure deltas through the cost model (deterministic, so criterion's
//! noise floor is ~0 — the value is the recorded numbers).

use criterion::{criterion_group, criterion_main, Criterion};
use machine::{region_time, Compiler, Machine, OmpSchedule, Variant};
use purec_core::{run_pc_cc, PcCcOptions, PureSet};
use std::hint::black_box;

/// A1: malloc-as-pure on/off changes which loops get marked.
fn ablation_malloc_pure(c: &mut Criterion) {
    let src = apps::matmul::c_source(64);
    let mut g = c.benchmark_group("ablation_malloc_pure");
    g.bench_function("with_alloc_rule", |b| {
        b.iter(|| {
            let out = run_pc_cc(black_box(&src), PcCcOptions::default()).expect("ok");
            assert!(out.scops_marked >= 2);
            out.scops_marked
        })
    });
    g.bench_function("without_alloc_rule", |b| {
        b.iter(|| {
            let out = run_pc_cc(
                black_box(&src),
                PcCcOptions {
                    seed: PureSet::seeded_without_alloc(),
                    ..Default::default()
                },
            )
            .expect("ok");
            out.scops_marked
        })
    });
    g.finish();
}

/// A2: call overhead vs inlining on the real heat stencil (reduced size).
fn ablation_call_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_call_overhead");
    g.sample_size(10);
    // Extracted-call shape (the pure chain's output).
    g.bench_function("heat_extracted_call", |b| {
        let mut p = apps::heat::Plate::new(128);
        b.iter(|| {
            p.step_seq(); // stencil() is #[inline] but models the call shape
            black_box(p.total_heat())
        })
    });
    // Model-level delta at paper scale.
    g.bench_function("model_delta", |b| {
        b.iter(|| {
            let m = Machine::default();
            let gcc = Compiler::gcc_o2();
            let w = machine::Workload {
                iters: 4094 * 4094 * 200,
                flops_per_iter: 43.0,
                bytes_per_iter: 40.0,
                calls_per_iter: 0.5,
                cost: machine::CostProfile::Uniform,
                simd_friendly: false,
            };
            let with_calls = region_time(&m, &gcc, &w, &Variant::pure_chain(false), 1, false);
            let inlined = region_time(&m, &gcc, &w, &Variant::pluto(1.0), 1, false);
            black_box((with_calls, inlined))
        })
    });
    g.finish();
}

/// A3: schedule choice on the tail-heavy satellite workload (real threads).
fn ablation_schedules(c: &mut Criterion) {
    let tile = apps::satellite::Tile::synthetic(96, 96, 11);
    let mut g = c.benchmark_group("ablation_schedules");
    g.sample_size(10);
    for sched in [
        OmpSchedule::Static,
        OmpSchedule::StaticChunk(16),
        OmpSchedule::Dynamic(1),
        OmpSchedule::Dynamic(16),
        OmpSchedule::Guided(8),
    ] {
        g.bench_function(format!("satellite_{sched}"), |b| {
            b.iter(|| apps::satellite::filter_par(black_box(&tile), 4, sched))
        });
    }
    g.finish();
}

/// A4: SICA cache-derived tile size vs fixed sizes on real blocked matmul.
fn ablation_sica_tiles(c: &mut Criterion) {
    let a = apps::matmul::Matrix::random(256, 5);
    let bt = apps::matmul::Matrix::random(256, 6);
    let mut g = c.benchmark_group("ablation_sica_tiles");
    g.sample_size(10);
    for block in [8usize, 16, 32, 64, 128] {
        g.bench_function(format!("blocked_{block}"), |b| {
            b.iter(|| apps::matmul::matmul_blocked(black_box(&a), black_box(&bt), block))
        });
    }
    g.finish();
}

/// A5: first-touch page placement in the bandwidth model.
fn ablation_numa(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_numa");
    g.bench_function("bandwidth_model_sweep", |b| {
        b.iter(|| {
            let m = Machine::default();
            let mut acc = 0.0;
            for threads in [1usize, 8, 16, 32, 64] {
                acc += m.bandwidth(threads, true) - m.bandwidth(threads, false);
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    ablation_malloc_pure,
    ablation_call_overhead,
    ablation_schedules,
    ablation_sica_tiles,
    ablation_numa
);
criterion_main!(benches);
