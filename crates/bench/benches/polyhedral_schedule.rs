//! Criterion benches of the polyhedral engine: Fourier–Motzkin
//! feasibility, dependence analysis, schedule search and code generation —
//! including the Fig. 2 skewing kernel.

use cfront::ast::{Stmt, StmtKind};
use cfront::parser::parse;
use criterion::{criterion_group, criterion_main, Criterion};
use polyhedral::{
    analyze, compute_schedule, extract_scop, generate, AffineExpr, CodegenOptions, Constraint,
    ConstraintSystem, Scop,
};
use std::hint::black_box;

fn scop_of(src: &str) -> Scop {
    let unit = parse(src).unit;
    let mut found: Option<Stmt> = None;
    for f in unit.functions() {
        if let Some(body) = &f.body {
            for s in &body.stmts {
                s.walk(&mut |st| {
                    if found.is_none() && matches!(st.kind, StmtKind::For { .. }) {
                        found = Some(st.clone());
                    }
                });
            }
        }
    }
    extract_scop(&found.expect("loop")).expect("scop")
}

const FIG2: &str = "\
void kernel(float** a) {
    for (int i = 1; i < 64; i++)
        for (int j = 1; j < 63; j++)
            a[i][j] = a[i - 1][j] + a[i - 1][j + 1];
}
";

const MATMUL: &str = "\
float** C;
void f() {
    for (int i = 0; i < 4096; i++)
        for (int j = 0; j < 4096; j++)
            C[i][j] = tmpConst_dot_0;
}
";

fn bench_fm(c: &mut Criterion) {
    let v = |n: &str| AffineExpr::var(n);
    let k = AffineExpr::constant;
    // A representative dependence polyhedron (4 vars, 11 constraints).
    let mut sys = ConstraintSystem::new();
    for dim in ["i", "j", "ip", "jp"] {
        sys.push(Constraint::ge(&v(dim), &k(1)));
        sys.push(Constraint::le(&v(dim), &k(4095)));
    }
    sys.push(Constraint::eq(&v("ip"), &v("i").sub(&k(1))));
    sys.push(Constraint::eq(&v("jp"), &v("j").add(&k(1))));
    sys.push(Constraint::ge(&v("ip").sub(&v("i")), &k(0)));

    c.bench_function("fm_satisfiable_dep_polyhedron", |b| {
        b.iter(|| black_box(&sys).is_satisfiable())
    });
}

fn bench_deps_and_schedule(c: &mut Criterion) {
    let fig2 = scop_of(FIG2);
    let matmul = scop_of(MATMUL);
    let mut g = c.benchmark_group("polyhedral");
    g.bench_function("analyze_fig2_stencil", |b| {
        b.iter(|| analyze(black_box(&fig2)))
    });
    g.bench_function("analyze_matmul", |b| b.iter(|| analyze(black_box(&matmul))));
    let deps_fig2 = analyze(&fig2);
    g.bench_function("schedule_fig2_skew_search", |b| {
        b.iter(|| compute_schedule(black_box(&fig2), black_box(&deps_fig2)))
    });
    let t = compute_schedule(&fig2, &deps_fig2);
    g.bench_function("codegen_fig2_tiled", |b| {
        b.iter(|| {
            generate(
                black_box(&fig2),
                black_box(&t),
                CodegenOptions {
                    tile: Some(32),
                    sica: true,
                    omp: true,
                },
            )
            .expect("codegen")
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fm, bench_deps_and_schedule);
criterion_main!(benches);
