//! Criterion benches over the figure model itself: generating every series
//! of every figure is cheap and deterministic; this guards against
//! regressions in the cost model's complexity (and doubles as a smoke test
//! that all figures stay computable inside `cargo bench`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.bench_function("fig3_matmul_gcc", |b| {
        b.iter(|| black_box(apps::figures::fig3_matmul_gcc()))
    });
    g.bench_function("fig6_heat_time", |b| {
        b.iter(|| black_box(apps::figures::fig6_heat_time()))
    });
    g.bench_function("fig8_satellite_time", |b| {
        b.iter(|| black_box(apps::figures::fig8_satellite_time()))
    });
    g.bench_function("fig10_lama_time", |b| {
        b.iter(|| black_box(apps::figures::fig10_lama_time()))
    });
    g.bench_function("all_figures", |b| b.iter(|| black_box(apps::all_figures())));
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
