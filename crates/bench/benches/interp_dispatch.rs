//! Interpreter-dispatch benches: resolved-IR engine vs the legacy
//! tree-walking oracle on the workloads where dispatch dominates — a
//! variable-access-heavy scalar loop, matmul 64³, and a small heat
//! stencil — plus the pure-call memo cache on a recursive kernel.

use cfront::parser::parse;
use cinterp::{InterpOptions, Program};
use criterion::{criterion_group, criterion_main, Criterion};
use purec::chain::{compile, ChainOptions};
use std::hint::black_box;

/// Tight scalar loop: every operation is a named-variable read/write, so
/// the engines differ almost purely in dispatch cost.
pub fn varaccess_source(iters: u64) -> String {
    format!(
        "int main() {{\n\
             int a = 0; int b = 1; int c = 2; int d = 3; int e = 4;\n\
             for (int i = 0; i < {iters}; i++) {{\n\
                 a = a + b; b = b ^ c; c = c + d;\n\
                 d = d + e; e = e + a; a = a - d;\n\
             }}\n\
             return a & 255;\n\
         }}"
    )
}

fn plain_program(src: &str) -> Program {
    let r = parse(src);
    assert!(!r.diags.has_errors(), "{}", r.diags.render_all(src));
    Program::new(&r.unit)
}

fn chain_program(src: &str) -> Program {
    compile(src, ChainOptions::default())
        .expect("chain ok")
        .program()
}

fn bench_interp_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("interp_dispatch");
    g.sample_size(10);

    let var = plain_program(&varaccess_source(100_000));
    g.bench_function("varaccess_legacy", |b| {
        b.iter(|| {
            var.run_legacy(black_box(InterpOptions::default()))
                .expect("runs")
        })
    });
    g.bench_function("varaccess_resolved", |b| {
        b.iter(|| var.run(black_box(InterpOptions::default())).expect("runs"))
    });

    let matmul = chain_program(&apps::matmul::c_source(64));
    g.bench_function("matmul64_legacy", |b| {
        b.iter(|| {
            matmul
                .run_legacy(black_box(InterpOptions::default()))
                .expect("runs")
        })
    });
    g.bench_function("matmul64_resolved", |b| {
        b.iter(|| {
            matmul
                .run(black_box(InterpOptions::default()))
                .expect("runs")
        })
    });

    let heat = chain_program(&apps::heat::c_source(24, 4));
    g.bench_function("heat24x4_legacy", |b| {
        b.iter(|| {
            heat.run_legacy(black_box(InterpOptions::default()))
                .expect("runs")
        })
    });
    g.bench_function("heat24x4_resolved", |b| {
        b.iter(|| heat.run(black_box(InterpOptions::default())).expect("runs"))
    });

    let fib = chain_program(
        "pure int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }\n\
         int main() { return fib(24) % 251; }\n",
    );
    g.bench_function("fib24_memo_off", |b| {
        b.iter(|| {
            fib.run(black_box(InterpOptions {
                memo: false,
                ..Default::default()
            }))
            .expect("runs")
        })
    });
    g.bench_function("fib24_memo_on", |b| {
        b.iter(|| fib.run(black_box(InterpOptions::default())).expect("runs"))
    });

    g.finish();
}

criterion_group!(benches, bench_interp_dispatch);
criterion_main!(benches);
