//! Interpreter-dispatch benches across the execution tiers: the bytecode
//! VM vs the resolved-IR engine (vs the legacy tree-walking oracle when
//! built with `--features legacy-oracle`) on the workloads where dispatch
//! dominates — a variable-access-heavy scalar loop, matmul 64³, and a
//! small heat stencil — plus the pure-call memo cache on a recursive
//! kernel, sequentially and under a parallel memoized loop.

use cfront::parser::parse;
use cinterp::{Engine, InterpOptions, Program};
use criterion::{criterion_group, criterion_main, Criterion};
use purec::chain::{compile, ChainOptions};
use std::hint::black_box;

/// Tight scalar loop: every operation is a named-variable read/write, so
/// the engines differ almost purely in dispatch cost.
pub fn varaccess_source(iters: u64) -> String {
    format!(
        "int main() {{\n\
             int a = 0; int b = 1; int c = 2; int d = 3; int e = 4;\n\
             for (int i = 0; i < {iters}; i++) {{\n\
                 a = a + b; b = b ^ c; c = c + d;\n\
                 d = d + e; e = e + a; a = a - d;\n\
             }}\n\
             return a & 255;\n\
         }}"
    )
}

fn plain_program(src: &str) -> Program {
    let r = parse(src);
    assert!(!r.diags.has_errors(), "{}", r.diags.render_all(src));
    Program::new(&r.unit)
}

fn chain_program(src: &str) -> Program {
    compile(src, ChainOptions::default())
        .expect("chain ok")
        .program()
}

fn resolved_opts() -> InterpOptions {
    InterpOptions {
        engine: Engine::Resolved,
        ..Default::default()
    }
}

/// Bench one program on every tier under `group`-prefixed names.
fn bench_tiers(g: &mut criterion::BenchmarkGroup, name: &str, program: &Program) {
    #[cfg(feature = "legacy-oracle")]
    g.bench_function(format!("{name}_legacy"), |b| {
        b.iter(|| {
            program
                .run_legacy(black_box(InterpOptions::default()))
                .expect("runs")
        })
    });
    g.bench_function(format!("{name}_resolved"), |b| {
        b.iter(|| program.run(black_box(resolved_opts())).expect("runs"))
    });
    g.bench_function(format!("{name}_bytecode"), |b| {
        b.iter(|| {
            program
                .run(black_box(InterpOptions::default()))
                .expect("runs")
        })
    });
}

fn bench_interp_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("interp_dispatch");
    g.sample_size(10);

    let var = plain_program(&varaccess_source(100_000));
    bench_tiers(&mut g, "varaccess", &var);

    let matmul = chain_program(&apps::matmul::c_source(64));
    bench_tiers(&mut g, "matmul64", &matmul);

    let heat = chain_program(&apps::heat::c_source(24, 4));
    bench_tiers(&mut g, "heat24x4", &heat);

    let fib = chain_program(
        "pure int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }\n\
         int main() { return fib(24) % 251; }\n",
    );
    g.bench_function("fib24_memo_off_resolved", |b| {
        b.iter(|| {
            fib.run(black_box(InterpOptions {
                memo: false,
                ..resolved_opts()
            }))
            .expect("runs")
        })
    });
    g.bench_function("fib24_memo_off_bytecode", |b| {
        b.iter(|| {
            fib.run(black_box(InterpOptions {
                memo: false,
                ..Default::default()
            }))
            .expect("runs")
        })
    });
    g.bench_function("fib24_memo_on_bytecode", |b| {
        b.iter(|| fib.run(black_box(InterpOptions::default())).expect("runs"))
    });

    // Parallel loop over a memoized pure call: the resolved engine
    // serializes workers on one locked cache, the VM uses per-worker
    // shards merged at the join.
    let par = chain_program(
        "pure int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }\n\
         int main() {\n\
             int* out = (int*) malloc(256 * sizeof(int));\n\
         #pragma omp parallel for schedule(dynamic,4)\n\
             for (int i = 0; i < 256; i++) out[i] = fib(16 + i % 5);\n\
             int acc = 0;\n\
             for (int i = 0; i < 256; i++) acc += out[i];\n\
             return acc % 251;\n\
         }",
    );
    let par_opts = InterpOptions {
        threads: 4,
        ..Default::default()
    };
    g.bench_function("fib_parallel_memo_resolved", |b| {
        b.iter(|| {
            par.run(black_box(InterpOptions {
                engine: Engine::Resolved,
                ..par_opts
            }))
            .expect("runs")
        })
    });
    g.bench_function("fib_parallel_memo_bytecode", |b| {
        b.iter(|| par.run(black_box(par_opts)).expect("runs"))
    });

    g.finish();
}

criterion_group!(benches, bench_interp_dispatch);
criterion_main!(benches);
