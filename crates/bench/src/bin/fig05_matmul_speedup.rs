//! Regenerate the paper's fig05 series (see apps::figures).
fn main() {
    bench_harness::emit(
        &apps::figures::fig5_matmul_speedup(),
        bench_harness::json_flag(),
    );
}
