//! Regenerate the paper's fig04 series (see apps::figures).
fn main() {
    bench_harness::emit(
        &apps::figures::fig4_matmul_icc(),
        bench_harness::json_flag(),
    );
}
