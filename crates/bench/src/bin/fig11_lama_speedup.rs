//! Regenerate the paper's fig11 series (see apps::figures).
fn main() {
    bench_harness::emit(
        &apps::figures::fig11_lama_speedup(),
        bench_harness::json_flag(),
    );
}
