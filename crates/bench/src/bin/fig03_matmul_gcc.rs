//! Regenerate the paper's fig03 series (see apps::figures).
fn main() {
    bench_harness::emit(
        &apps::figures::fig3_matmul_gcc(),
        bench_harness::json_flag(),
    );
}
