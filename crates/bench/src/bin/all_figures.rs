//! Emit every regenerated figure of the paper in order (use --json for
//! machine-readable output).
fn main() {
    let json = bench_harness::json_flag();
    if !json {
        print!("{}", bench_harness::fig2_report());
        println!();
    }
    for fig in apps::all_figures() {
        bench_harness::emit(&fig, json);
    }
}
