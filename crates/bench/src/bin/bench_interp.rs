//! `bench_interp` — records the interpreter-dispatch perf trajectory.
//!
//! Runs the variable-access microbench, chain-compiled matmul 64³, a
//! small heat stencil and the fib memo kernel on both the legacy
//! tree-walker ("before") and the resolved-IR engine ("after"),
//! then writes `BENCH_interp.json` with wall times and speedups.
//!
//! ```text
//! cargo run --release -p bench-harness --bin bench_interp [out.json]
//! ```

use cfront::parser::parse;
use cinterp::{InterpOptions, Program, RunResult};
use purec::chain::{compile, ChainOptions};
use std::time::Instant;

struct BenchCase {
    name: &'static str,
    program: Program,
    /// (label, options, uses_legacy_engine)
    variants: Vec<(&'static str, InterpOptions, bool)>,
}

fn time_run(program: &Program, opts: InterpOptions, legacy: bool, reps: u32) -> (f64, RunResult) {
    // One warm-up, then best-of-`reps` wall time.
    let warm = if legacy {
        program.run_legacy(opts)
    } else {
        program.run(opts)
    }
    .expect("benchmark program runs");
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = if legacy {
            program.run_legacy(opts)
        } else {
            program.run(opts)
        };
        let dt = t0.elapsed().as_secs_f64();
        r.expect("benchmark program runs");
        best = best.min(dt);
    }
    (best, warm)
}

fn plain(src: &str) -> Program {
    let r = parse(src);
    assert!(!r.diags.has_errors(), "{}", r.diags.render_all(src));
    Program::new(&r.unit)
}

fn chain(src: &str) -> Program {
    compile(src, ChainOptions::default())
        .expect("chain ok")
        .program()
}

fn varaccess_source(iters: u64) -> String {
    format!(
        "int main() {{\n\
             int a = 0; int b = 1; int c = 2; int d = 3; int e = 4;\n\
             for (int i = 0; i < {iters}; i++) {{\n\
                 a = a + b; b = b ^ c; c = c + d;\n\
                 d = d + e; e = e + a; a = a - d;\n\
             }}\n\
             return a & 255;\n\
         }}"
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_interp.json".to_string());
    let quick = std::env::var_os("BENCH_QUICK").is_some();
    let reps = if quick { 1 } else { 3 };
    let var_iters = if quick { 20_000 } else { 500_000 };
    let fib_n = if quick { 18 } else { 24 };

    let default_opts = InterpOptions::default();
    let cases = vec![
        BenchCase {
            name: "varaccess",
            program: plain(&varaccess_source(var_iters)),
            variants: vec![
                ("legacy", default_opts, true),
                ("resolved", default_opts, false),
            ],
        },
        BenchCase {
            name: "matmul64",
            program: chain(&apps::matmul::c_source(64)),
            variants: vec![
                ("legacy", default_opts, true),
                ("resolved", default_opts, false),
            ],
        },
        BenchCase {
            name: "heat24x4",
            program: chain(&apps::heat::c_source(24, 4)),
            variants: vec![
                ("legacy", default_opts, true),
                ("resolved", default_opts, false),
            ],
        },
        BenchCase {
            name: "fib_memo",
            program: chain(&format!(
                "pure int fib(int n) {{ if (n < 2) return n; return fib(n - 1) + fib(n - 2); }}\n\
                 int main() {{ return fib({fib_n}) % 251; }}\n"
            )),
            variants: vec![
                ("legacy", default_opts, true),
                (
                    "resolved_memo_off",
                    InterpOptions {
                        memo: false,
                        ..default_opts
                    },
                    false,
                ),
                ("resolved", default_opts, false),
            ],
        },
    ];

    let mut json = String::from("{\n  \"benchmarks\": [\n");
    let mut first = true;
    for case in &cases {
        let mut times: Vec<(&str, f64)> = Vec::new();
        let mut exit = 0i64;
        for (label, opts, legacy) in &case.variants {
            let (secs, run) = time_run(&case.program, *opts, *legacy, reps);
            exit = run.exit_code;
            times.push((label, secs));
            eprintln!(
                "{:<10} {:<18} {:>10.3} ms  (exit {})",
                case.name,
                label,
                secs * 1e3,
                run.exit_code
            );
        }
        let legacy_secs = times
            .iter()
            .find(|(l, _)| *l == "legacy")
            .map(|(_, t)| *t)
            .unwrap_or(f64::NAN);
        if !first {
            json.push_str(",\n");
        }
        first = false;
        json.push_str(&format!(
            "    {{\n      \"name\": \"{}\",\n      \"exit_code\": {},\n",
            case.name, exit
        ));
        for (label, secs) in &times {
            json.push_str(&format!("      \"{label}_ms\": {:.3},\n", secs * 1e3));
        }
        let resolved_secs = times
            .iter()
            .find(|(l, _)| *l == "resolved")
            .map(|(_, t)| *t)
            .unwrap_or(f64::NAN);
        json.push_str(&format!(
            "      \"speedup_resolved_vs_legacy\": {:.2}\n    }}",
            legacy_secs / resolved_secs
        ));
    }
    json.push_str("\n  ],\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(
        "  \"note\": \"before = legacy tree-walker, after = resolved-IR engine; \
         best-of-N wall times from `cargo run --release -p bench-harness --bin bench_interp`\"\n}\n",
    );
    std::fs::write(&out_path, &json).expect("write BENCH_interp.json");
    println!("wrote {out_path}");
}
