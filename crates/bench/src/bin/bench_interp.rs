//! `bench_interp` — records the interpreter-dispatch perf **trajectory**.
//!
//! Runs the variable-access microbench, chain-compiled matmul 64³, a
//! small heat stencil, the fib memo kernel, and a parallel memoized fib
//! loop on the execution tiers — resolved-IR engine and bytecode VM by
//! default, plus the legacy tree-walker when built with
//! `--features legacy-oracle` — then **appends** a timestamped entry to
//! `BENCH_interp.json` so the file accumulates the history across PRs
//! instead of overwriting it.
//!
//! ```text
//! cargo run --release -p bench-harness --bin bench_interp [out.json]
//! BENCH_QUICK=1 ...         # smaller sizes, 1 rep (CI smoke)
//! ```
//!
//! The run exits non-zero when the bytecode VM fails to beat the
//! resolved engine on the dispatch-bound `varaccess` case, or when the
//! pool-routed runtime fails to beat spawn-per-region threads on the
//! `region_heavy` case (many small parallel regions) — the CI bench
//! smoke turns a dispatch or region-launch regression into a red build.
//! The `fib_futures` (statement-level spawn batches) and `treesum_expr`
//! (expression-level spawns over the work-stealing deques) cases gate
//! the pure-call futures subsystem: on a host with ≥ 4 CPUs each
//! memo-off divide-and-conquer benchmark must run ≥ 2× faster with
//! futures on 4 threads than sequentially (≥ 1× on 2–3 CPUs;
//! unenforceable and skipped on 1). `treesum_expr` also records the
//! deque-vs-single-channel A/B (`speedup_steal_vs_channel`) and the
//! futures run's `local_pushes`/`tasks_stolen` counters. Entries are
//! appended with the git commit, the parallel thread count and the host
//! CPU count so the trajectory stays attributable.

use cfront::parser::parse;
use cinterp::{Engine, InterpOptions, Program, RunResult};
use purec::chain::{compile, ChainOptions};
use serde_json::Value;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Newest mtime of any `.rs` / `Cargo.toml` under `dir` (skipping
/// `target/` and dot-dirs) — the freshness reference for the guard below.
fn newest_source_mtime(dir: &std::path::Path, newest: &mut SystemTime) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let path = e.path();
        let name = e.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            newest_source_mtime(&path, newest);
        } else if name.ends_with(".rs") || name == "Cargo.toml" {
            if let Ok(m) = e.metadata().and_then(|m| m.modified()) {
                *newest = (*newest).max(m);
            }
        }
    }
}

/// A trajectory entry timed from a binary older than the workspace
/// sources attributes the *old* code's numbers to the current commit.
/// Refuse to run stale; `BENCH_ALLOW_STALE=1` overrides (e.g. when only
/// comments changed).
fn refuse_stale_binary() {
    if std::env::var_os("BENCH_ALLOW_STALE").is_some() {
        return;
    }
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut newest = SystemTime::UNIX_EPOCH;
    newest_source_mtime(&root.join("crates"), &mut newest);
    newest_source_mtime(&root.join("src"), &mut newest);
    if let Ok(m) = std::fs::metadata(root.join("Cargo.toml")).and_then(|m| m.modified()) {
        newest = newest.max(m);
    }
    let exe = std::env::current_exe()
        .and_then(std::fs::metadata)
        .and_then(|m| m.modified());
    match exe {
        Ok(exe) if exe >= newest => {}
        _ => {
            eprintln!(
                "bench_interp: this binary is older than the workspace sources — the \
                 trajectory entry would attribute stale numbers to the current commit.\n\
                 Rebuild first (`cargo build --release --workspace`) or set \
                 BENCH_ALLOW_STALE=1 to run anyway."
            );
            std::process::exit(3);
        }
    }
}

struct BenchCase {
    name: &'static str,
    program: Program,
    /// (label, options, uses_legacy_engine)
    variants: Vec<(&'static str, InterpOptions, bool)>,
}

fn time_run(program: &Program, opts: InterpOptions, legacy: bool, reps: u32) -> (f64, RunResult) {
    let run_once = |program: &Program| -> RunResult {
        if legacy {
            #[cfg(feature = "legacy-oracle")]
            {
                return program.run_legacy(opts).expect("benchmark program runs");
            }
            #[cfg(not(feature = "legacy-oracle"))]
            unreachable!("legacy variants are only constructed with the feature on");
        }
        program.run(opts).expect("benchmark program runs")
    };
    // One warm-up, then best-of-`reps` wall time.
    let warm = run_once(program);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = run_once(program);
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(r.exit_code, warm.exit_code, "nondeterministic benchmark");
        best = best.min(dt);
    }
    (best, warm)
}

fn plain(src: &str) -> Program {
    let r = parse(src);
    assert!(!r.diags.has_errors(), "{}", r.diags.render_all(src));
    Program::new(&r.unit)
}

fn chain(src: &str) -> Program {
    compile(src, ChainOptions::default())
        .expect("chain ok")
        .program()
}

/// Wall time the always-on dataflow-lint pass adds to a chain compile,
/// isolated by differencing `analyze_unit` with and without lints over
/// the lowered unit (best-of-N to shed scheduler noise).
fn lint_overhead_secs(out: &purec::chain::ChainOutput) -> f64 {
    let parsed = parse(&out.text);
    let mut verified = purec_core::PureSet::seeded();
    for name in &out.declared_pure {
        verified.insert(name.clone());
    }
    let time = |opts: &analysis::AnalysisOptions| {
        let mut best = f64::INFINITY;
        for _ in 0..20 {
            let t0 = Instant::now();
            let _ = analysis::analyze_unit(&parsed.unit, &verified, opts);
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    };
    let full = time(&analysis::AnalysisOptions::default());
    let race_only = time(&analysis::AnalysisOptions {
        no_lints: true,
        ..Default::default()
    });
    (full - race_only).max(0.0)
}

fn varaccess_source(iters: u64) -> String {
    format!(
        "int main() {{\n\
             int a = 0; int b = 1; int c = 2; int d = 3; int e = 4;\n\
             for (int i = 0; i < {iters}; i++) {{\n\
                 a = a + b; b = b ^ c; c = c + d;\n\
                 d = d + e; e = e + a; a = a - d;\n\
             }}\n\
             return a & 255;\n\
         }}"
    )
}

/// Region-heavy workload: many *small* parallel regions inside a
/// sequential loop — the region-launch overhead microbench. Under the
/// scoped substrate every region spawns `threads` fresh OS threads;
/// routed through the persistent pool it submits `threads` tasks to
/// already-running workers, which is the whole point of the pinned-worker
/// runtime: the launch cost, not the loop body, dominates here.
fn region_heavy_source(regions: usize, width: usize) -> String {
    format!(
        "int main() {{\n\
             double* a = (double*) malloc({width} * sizeof(double));\n\
             for (int i = 0; i < {width}; i++) a[i] = i;\n\
             for (int r = 0; r < {regions}; r++) {{\n\
         #pragma omp parallel for schedule(static)\n\
                 for (int i = 0; i < {width}; i++) a[i] = a[i] + 1.0;\n\
             }}\n\
             double acc = 0;\n\
             for (int i = 0; i < {width}; i++) acc = acc + a[i];\n\
             return ((int) acc) % 251;\n\
         }}"
    )
}

/// Array-heavy loops: the fused load-index/store-index/compound-index
/// superinstruction workload (`a[i]`, `a[i] = x`, `a[i] += x` with base
/// and index in frame slots).
fn arraysum_source(n: usize, iters: usize) -> String {
    format!(
        "int main() {{\n\
             int* a = (int*) malloc({n} * sizeof(int));\n\
             for (int i = 0; i < {n}; i++) a[i] = i * 3 + 1;\n\
             int acc = 0;\n\
             for (int r = 0; r < {iters}; r++) {{\n\
                 for (int i = 0; i < {n}; i++) {{\n\
                     int v = a[i];\n\
                     a[i] = v + r;\n\
                     a[i] += r & 7;\n\
                     acc = acc + v;\n\
                 }}\n\
             }}\n\
             return acc & 255;\n\
         }}"
    )
}

/// The tree-recursive, memo-off divide-and-conquer benchmark of the
/// pure-call futures subsystem: fib with explicit locals, so the two
/// recursive calls form a spawn batch (spawn left, inline right, await).
fn fib_futures_source(n: usize) -> String {
    format!(
        "pure int fib(int n) {{\n\
             if (n < 2) return n;\n\
             int a = fib(n - 1);\n\
             int b = fib(n - 2);\n\
             return a + b;\n\
         }}\n\
         int main() {{ return fib({n}) % 251; }}\n"
    )
}

/// The expression-level divide-and-conquer benchmark: a balanced binary
/// tree sum whose recursive calls sit *inside* the `return` expression —
/// no locals, no statement-level sites. Spawns exist only because the
/// hoisting pass introduces temps; scaling exists only because the
/// work-stealing deques migrate the subtrees (the single shared channel
/// serialized exactly this shape).
fn treesum_source(depth: usize) -> String {
    format!(
        "pure int tsum(int n, int v) {{\n\
             if (n == 0) return (v % 13) + 1;\n\
             return tsum(n - 1, v * 2 + 1) + tsum(n - 1, v * 2 + 2);\n\
         }}\n\
         int main() {{ return tsum({depth}, 1) % 251; }}\n"
    )
}

/// Parallel loop over a memoized pure function: the workload where the
/// resolved engine's single locked memo cache serializes workers and the
/// VM's per-worker shards do not.
fn fib_parallel_source(n: usize, fib: u64) -> String {
    format!(
        "pure int fib(int n) {{ if (n < 2) return n; return fib(n - 1) + fib(n - 2); }}\n\
         int main() {{\n\
             int* out = (int*) malloc({n} * sizeof(int));\n\
         #pragma omp parallel for schedule(dynamic,4)\n\
             for (int i = 0; i < {n}; i++) out[i] = fib({fib} + i % 5);\n\
             int acc = 0;\n\
             for (int i = 0; i < {n}; i++) acc += out[i];\n\
             return acc % 251;\n\
         }}"
    )
}

/// Engine-tier variants for one case: legacy (feature-gated), resolved,
/// bytecode — all sharing `base` options.
#[cfg_attr(not(feature = "legacy-oracle"), allow(unused_mut))]
fn tier_variants(base: InterpOptions) -> Vec<(&'static str, InterpOptions, bool)> {
    let mut v = vec![
        (
            "resolved",
            InterpOptions {
                engine: Engine::Resolved,
                ..base
            },
            false,
        ),
        (
            "bytecode",
            InterpOptions {
                engine: Engine::Bytecode,
                ..base
            },
            false,
        ),
    ];
    #[cfg(feature = "legacy-oracle")]
    v.insert(0, ("legacy", base, true));
    v
}

fn num(v: f64) -> Value {
    Value::Num(v)
}

/// Thread count of every parallel variant — also recorded in each
/// trajectory entry, so the two can never drift apart.
const BENCH_THREADS: usize = 4;

fn main() {
    refuse_stale_binary();
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_interp.json".to_string());
    let quick = std::env::var_os("BENCH_QUICK").is_some();
    // Best-of-3 even in quick mode: the CI gate compares wall times, and
    // a single preempted rep on a shared runner must not flip it.
    let reps = 3;
    let var_iters = if quick { 20_000 } else { 500_000 };
    let fib_n = if quick { 18 } else { 24 };
    let par_iters = if quick { 64 } else { 512 };
    let par_fib = if quick { 14 } else { 18 };
    let region_count = if quick { 100 } else { 600 };
    let arr_n = if quick { 256 } else { 1024 };
    let arr_iters = if quick { 40 } else { 400 };
    let fut_fib = if quick { 21 } else { 27 };
    let tree_depth = if quick { 15 } else { 19 };
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let seq = InterpOptions::default();
    let par4 = InterpOptions {
        threads: BENCH_THREADS,
        ..seq
    };
    let mut fib_variants = tier_variants(seq);
    fib_variants.insert(
        fib_variants.len() - 1,
        (
            "resolved_memo_off",
            InterpOptions {
                memo: false,
                engine: Engine::Resolved,
                ..seq
            },
            false,
        ),
    );
    fib_variants.push((
        "bytecode_memo_off",
        InterpOptions {
            memo: false,
            engine: Engine::Bytecode,
            ..seq
        },
        false,
    ));

    // Tier variants plus the tier-3.5 optimizer A/B: `bytecode` runs the
    // default optimized bytecode, `bytecode_noopt` the raw lowering
    // (`purec --no-opt`). Their ratio is the optimizer's win, recorded
    // per entry and gated below.
    let with_noopt = |base: InterpOptions| {
        let mut v = tier_variants(base);
        v.push((
            "bytecode_noopt",
            InterpOptions {
                engine: Engine::Bytecode,
                opt_level: 0,
                ..base
            },
            false,
        ));
        v
    };

    // The static analyzer rides along with every chain compile (race
    // verdicts + always-on lints). Time the matmul64 lowering end to end
    // (best-of-3), record the analyzer's share in the trajectory entry,
    // and gate the lint pass below at <5% of the compile.
    let matmul_src = apps::matmul::c_source(64);
    let mut matmul_compile_secs = f64::INFINITY;
    let mut matmul_out = None;
    for _ in 0..3 {
        let t0 = Instant::now();
        let out = compile(&matmul_src, ChainOptions::default()).expect("chain ok");
        let dt = t0.elapsed().as_secs_f64();
        if dt < matmul_compile_secs {
            matmul_compile_secs = dt;
            matmul_out = Some(out);
        }
    }
    let matmul_out = matmul_out.expect("at least one compile");
    let matmul_analysis_secs = matmul_out.analysis_micros as f64 / 1e6;
    let matmul_lint_secs = lint_overhead_secs(&matmul_out);

    let cases = vec![
        BenchCase {
            name: "varaccess",
            program: plain(&varaccess_source(var_iters)),
            variants: with_noopt(seq),
        },
        BenchCase {
            name: "matmul64",
            program: matmul_out.program(),
            variants: with_noopt(seq),
        },
        BenchCase {
            name: "heat24x4",
            program: chain(&apps::heat::c_source(24, 4)),
            variants: tier_variants(seq),
        },
        BenchCase {
            name: "fib_memo",
            program: chain(&format!(
                "pure int fib(int n) {{ if (n < 2) return n; return fib(n - 1) + fib(n - 2); }}\n\
                 int main() {{ return fib({fib_n}) % 251; }}\n"
            )),
            variants: fib_variants,
        },
        BenchCase {
            name: "fib_parallel_memo",
            program: chain(&fib_parallel_source(par_iters, par_fib)),
            variants: tier_variants(par4)
                .into_iter()
                .filter(|(_, _, legacy)| !legacy)
                .collect(),
        },
        // Array-heavy loops: exercises the fused load-index/store-index
        // superinstructions (delta shows as the bytecode-vs-resolved
        // ratio in the trajectory).
        BenchCase {
            name: "arraysum",
            program: plain(&arraysum_source(arr_n, arr_iters)),
            variants: with_noopt(seq),
        },
        // The pure-call futures A/B: memo-off divide-and-conquer fib.
        // `bytecode_seq` is the sequential baseline, `*_nofutures` the
        // same thread count with spawn sites forced inline, `*_futures`
        // the full subsystem. Gated below on multi-core hosts.
        BenchCase {
            name: "fib_futures",
            program: chain(&fib_futures_source(fut_fib)),
            variants: vec![
                (
                    "bytecode_seq",
                    InterpOptions {
                        memo: false,
                        futures: false,
                        ..seq
                    },
                    false,
                ),
                (
                    "bytecode_nofutures",
                    InterpOptions {
                        memo: false,
                        futures: false,
                        ..par4
                    },
                    false,
                ),
                (
                    "bytecode_futures",
                    InterpOptions {
                        memo: false,
                        ..par4
                    },
                    false,
                ),
                (
                    "resolved_futures",
                    InterpOptions {
                        memo: false,
                        engine: Engine::Resolved,
                        ..par4
                    },
                    false,
                ),
            ],
        },
        // The expression-spawn + work-stealing A/B: memo-off balanced
        // tree sum whose spawn sites exist only through temp hoisting.
        // `bytecode_channel` forces every spawn through the shared
        // injector (the pre-deque substrate); `bytecode_futures` uses
        // per-worker deques with stealing. Gated below like fib_futures;
        // the futures run's steal counters are recorded per entry.
        BenchCase {
            name: "treesum_expr",
            program: chain(&treesum_source(tree_depth)),
            variants: vec![
                (
                    "bytecode_seq",
                    InterpOptions {
                        memo: false,
                        futures: false,
                        ..seq
                    },
                    false,
                ),
                (
                    "bytecode_nofutures",
                    InterpOptions {
                        memo: false,
                        futures: false,
                        ..par4
                    },
                    false,
                ),
                (
                    "bytecode_channel",
                    InterpOptions {
                        memo: false,
                        steal: false,
                        ..par4
                    },
                    false,
                ),
                (
                    "bytecode_futures",
                    InterpOptions {
                        memo: false,
                        ..par4
                    },
                    false,
                ),
            ],
        },
        // The launch-overhead A/B: same bytecode, same 4 threads, only
        // the parallel substrate differs (spawn-per-region vs persistent
        // pool). Gated below: the pooled runtime must win.
        BenchCase {
            name: "region_heavy",
            program: plain(&region_heavy_source(region_count, 64)),
            variants: vec![
                (
                    "bytecode_spawn",
                    InterpOptions {
                        pool: false,
                        ..par4
                    },
                    false,
                ),
                ("bytecode_pool", par4, false),
            ],
        },
    ];

    let mut bench_values: Vec<Value> = Vec::new();
    let mut tier_speedups: Vec<(String, f64)> = Vec::new();
    let mut opt_speedups: Vec<(String, f64)> = Vec::new();
    let mut pool_speedup = f64::NAN;
    let mut futures_speedup = f64::NAN;
    let mut treesum_speedup = f64::NAN;
    for case in &cases {
        let mut fields: Vec<(String, Value)> =
            vec![("name".to_string(), Value::Str(case.name.to_string()))];
        let mut times: Vec<(&str, f64)> = Vec::new();
        let mut exit: Option<i64> = None;
        for (label, opts, legacy) in &case.variants {
            let (secs, run) = time_run(&case.program, *opts, *legacy, reps);
            // Every tier must agree on the program's result — a
            // divergence is a red bench, not a quietly wrong entry.
            if let Some(prev) = exit {
                assert_eq!(
                    prev, run.exit_code,
                    "{}: tier '{label}' disagrees on exit code",
                    case.name
                );
            }
            exit = Some(run.exit_code);
            times.push((label, secs));
            // The deque A/B case records where its futures ran: how
            // many went onto a worker's own deque, and how many of
            // those a sibling stole (warm-up run's counters).
            if case.name == "treesum_expr" && *label == "bytecode_futures" {
                fields.push((
                    "local_pushes".to_string(),
                    num(run.counters.local_pushes as f64),
                ));
                fields.push((
                    "tasks_stolen".to_string(),
                    num(run.counters.tasks_stolen as f64),
                ));
            }
            eprintln!(
                "{:<18} {:<18} {:>10.3} ms  (exit {})",
                case.name,
                label,
                secs * 1e3,
                run.exit_code
            );
        }
        fields.push((
            "exit_code".to_string(),
            num(exit.expect("at least one variant ran") as f64),
        ));
        for (label, secs) in &times {
            fields.push((format!("{label}_ms"), num((secs * 1e6).round() / 1e3)));
        }
        let get = |l: &str| times.iter().find(|(x, _)| *x == l).map(|(_, t)| *t);
        if let (Some(legacy), Some(resolved)) = (get("legacy"), get("resolved")) {
            fields.push((
                "speedup_resolved_vs_legacy".to_string(),
                num(legacy / resolved),
            ));
        }
        if let (Some(resolved), Some(bytecode)) = (get("resolved"), get("bytecode")) {
            let s = resolved / bytecode;
            fields.push(("speedup_bytecode_vs_resolved".to_string(), num(s)));
            tier_speedups.push((case.name.to_string(), s));
        }
        if let (Some(noopt), Some(bytecode)) = (get("bytecode_noopt"), get("bytecode")) {
            // The tier-3.5 optimizer A/B column.
            let s = noopt / bytecode;
            fields.push(("speedup_opt_vs_noopt".to_string(), num(s)));
            opt_speedups.push((case.name.to_string(), s));
        }
        if let (Some(spawn), Some(pooled)) = (get("bytecode_spawn"), get("bytecode_pool")) {
            let s = spawn / pooled;
            fields.push(("speedup_pool_vs_spawn".to_string(), num(s)));
            if case.name == "region_heavy" {
                pool_speedup = s;
            }
        }
        if let (Some(sequential), Some(fut)) = (get("bytecode_seq"), get("bytecode_futures")) {
            let s = sequential / fut;
            fields.push(("speedup_futures_vs_seq".to_string(), num(s)));
            if case.name == "fib_futures" {
                futures_speedup = s;
            }
            if case.name == "treesum_expr" {
                treesum_speedup = s;
            }
        }
        if let (Some(channel), Some(fut)) = (get("bytecode_channel"), get("bytecode_futures")) {
            // The single-channel-vs-deque A/B, recorded every entry.
            fields.push(("speedup_steal_vs_channel".to_string(), num(channel / fut)));
        }
        bench_values.push(Value::Object(fields));
    }

    // Polyhedral A/B: the same source lowered twice — the default chain
    // (polycc schedules + schedule-aware AffineFor bytecode with hoisted
    // bounds) versus `--no-poly` (literal loop skeletons). Both the
    // compile and the run are timed: the run ratio is the tier's perf
    // claim (`speedup_poly_vs_literal`, gated below), the compile delta
    // is the transform's budget (the bounded Fourier–Motzkin
    // elimination keeps it small, and the gate below keeps it bounded).
    // matmul uses the inline triple-loop variant: with no pure-call
    // boundary in the product nest, the schedule-aware skeleton *and*
    // the hoisted row pointers both land in the hot loop, which is
    // where the wall-clock win lives (the pure-call variant is
    // call-dominated and measures the runtime, not the schedules).
    let poly_cases: Vec<(&str, String)> = vec![
        (
            "matmul128_poly",
            apps::matmul::c_source_inline(if quick { 48 } else { 128 }),
        ),
        (
            "heat_poly",
            apps::heat::c_source(if quick { 32 } else { 48 }, if quick { 2 } else { 4 }),
        ),
    ];
    let mut poly_fields: Vec<(String, Value)> = Vec::new();
    let mut poly_seq_speedups: Vec<(&str, f64)> = Vec::new();
    let mut poly_par_speedups: Vec<(&str, f64)> = Vec::new();
    let mut poly_compile_deltas: Vec<(&str, f64)> = Vec::new();
    for (name, src) in &poly_cases {
        let compile_best = |opts: ChainOptions| {
            let mut best = f64::INFINITY;
            let mut out = None;
            for _ in 0..3 {
                let t0 = Instant::now();
                let o = compile(src, opts.clone()).expect("chain ok");
                let dt = t0.elapsed().as_secs_f64();
                if dt < best {
                    best = dt;
                    out = Some(o);
                }
            }
            (best, out.expect("at least one compile"))
        };
        let (poly_compile, poly_out) = compile_best(ChainOptions::default());
        let (lit_compile, lit_out) = compile_best(ChainOptions {
            no_poly: true,
            ..Default::default()
        });
        assert!(
            poly_out.regions_transformed >= 1,
            "{name}: polyhedral tier transformed nothing"
        );
        assert_eq!(lit_out.regions_transformed, 0, "{name}: --no-poly leaked");
        let poly_prog = poly_out.program();
        let lit_prog = lit_out.program();
        for (leg, opts) in [("", seq), ("_par4", par4)] {
            let (poly_t, pr) = time_run(&poly_prog, opts, false, reps);
            let (lit_t, lr) = time_run(&lit_prog, opts, false, reps);
            assert_eq!(
                pr.exit_code, lr.exit_code,
                "{name}{leg}: poly and literal builds disagree"
            );
            let s = lit_t / poly_t;
            poly_fields.push((format!("{name}{leg}_ms"), num((poly_t * 1e6).round() / 1e3)));
            poly_fields.push((
                format!("{name}{leg}_literal_ms"),
                num((lit_t * 1e6).round() / 1e3),
            ));
            poly_fields.push((format!("{name}{leg}_speedup_poly_vs_literal"), num(s)));
            if leg.is_empty() {
                poly_seq_speedups.push((name, s));
            } else {
                poly_par_speedups.push((name, s));
            }
            eprintln!(
                "{:<18} {:<18} {:>10.3} ms  (literal {:.3} ms, speedup {:.2}x)",
                name,
                if leg.is_empty() {
                    "poly_vs_literal"
                } else {
                    "poly_vs_lit_par4"
                },
                poly_t * 1e3,
                lit_t * 1e3,
                s
            );
        }
        let delta = (poly_compile - lit_compile).max(0.0);
        poly_fields.push((
            format!("{name}_compile_ms"),
            num((poly_compile * 1e6).round() / 1e3),
        ));
        poly_fields.push((
            format!("{name}_poly_compile_delta_ms"),
            num((delta * 1e6).round() / 1e3),
        ));
        poly_compile_deltas.push((name, delta));
        eprintln!(
            "{:<18} {:<18} {:>10.3} ms  (compile; transform share {:.3} ms)",
            name,
            "chain_compile",
            poly_compile * 1e3,
            delta * 1e3
        );
    }

    // Traced-vs-untraced A/B: the observability layer's overhead budget.
    // The probes are compiled in unconditionally, so their *disabled*
    // cost (one relaxed load + branch per site) is already pinned by the
    // tier floors above — a disabled-probe regression would sink
    // varaccess below its 1.5× floor. What is measured here is the
    // *enabled* cost: the same program and options under a live
    // [`cinterp::TraceSession`], gated below at < 15% overhead.
    let mut traced_ratios: Vec<(&str, f64)> = Vec::new();
    let mut traced_fields: Vec<(String, Value)> = Vec::new();
    let traced_cases = [
        ("varaccess", plain(&varaccess_source(var_iters))),
        ("matmul64", matmul_out.program()),
    ];
    for (name, program) in &traced_cases {
        let (untraced, _) = time_run(program, seq, false, reps);
        let session = cinterp::TraceSession::start();
        let (traced, _) = time_run(program, seq, false, reps);
        let data = session.finish();
        // The captured trace must stay structurally sound under bench
        // loads (and must not have overflowed the per-thread buffers).
        cinterp::validate_chrome_trace(&cinterp::chrome_trace_json(&data))
            .unwrap_or_else(|e| panic!("{name}: traced bench produced invalid trace: {e}"));
        assert_eq!(data.dropped, 0, "{name}: trace buffers overflowed");
        let ratio = traced / untraced;
        traced_ratios.push((name, ratio));
        traced_fields.push((
            format!("{name}_untraced_ms"),
            num((untraced * 1e6).round() / 1e3),
        ));
        traced_fields.push((
            format!("{name}_traced_ms"),
            num((traced * 1e6).round() / 1e3),
        ));
        traced_fields.push((format!("{name}_ratio"), num(ratio)));
        eprintln!(
            "{:<18} {:<18} {:>10.3} ms  (untraced {:.3} ms, ratio {:.3}x)",
            name,
            "bytecode_traced",
            traced * 1e3,
            untraced * 1e3,
            ratio
        );
    }

    let unix_time = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    // Attribution: the commit of the tree the bench ran on, the thread
    // count the parallel cases used, and the host's CPU budget.
    let git_commit = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string());
    let entry = Value::Object(vec![
        ("unix_time".to_string(), num(unix_time as f64)),
        ("git_commit".to_string(), Value::Str(git_commit)),
        ("threads".to_string(), num(BENCH_THREADS as f64)),
        ("host_cpus".to_string(), num(host_cpus as f64)),
        ("quick".to_string(), Value::Bool(quick)),
        // Static-analysis share of the matmul64 chain compile (the race
        // verdict + lint pass runs on every compile, so its wall time is
        // part of the trajectory).
        (
            "matmul64_compile_ms".to_string(),
            num((matmul_compile_secs * 1e6).round() / 1e3),
        ),
        (
            "matmul64_analysis_ms".to_string(),
            num((matmul_analysis_secs * 1e6).round() / 1e3),
        ),
        (
            "matmul64_lint_ms".to_string(),
            num((matmul_lint_secs * 1e6).round() / 1e3),
        ),
        // Tracing overhead A/B (live TraceSession vs probes-off) on the
        // dispatch-bound and memo-bound cases.
        // Polyhedral A/B (default chain vs --no-poly) on the two figure
        // workloads: run-time speedups per leg plus the transform's
        // compile-time share.
        ("poly_ab".to_string(), Value::Object(poly_fields)),
        ("traced_ab".to_string(), Value::Object(traced_fields)),
        ("benchmarks".to_string(), Value::Array(bench_values)),
    ]);

    // Trajectory: append to the existing history. A pre-trajectory file
    // (top-level "benchmarks") is migrated into entry 0.
    let mut entries: Vec<Value> = Vec::new();
    if let Ok(prior) = std::fs::read_to_string(&out_path) {
        if let Ok(v) = serde_json::from_str::<Value>(&prior) {
            if let Some(fields) = v.as_object() {
                if let Some((_, Value::Array(prev))) = fields.iter().find(|(k, _)| k == "entries") {
                    entries = prev.clone();
                } else if fields.iter().any(|(k, _)| k == "benchmarks") {
                    entries.push(v.clone());
                }
            }
        }
    }
    entries.push(entry);
    let doc = Value::Object(vec![
        (
            "note".to_string(),
            Value::Str(
                "interpreter-dispatch trajectory: one timestamped entry per \
                 `cargo run --release -p bench-harness --bin bench_interp` \
                 (best-of-N wall times); engines: legacy tree-walker (feature \
                 legacy-oracle), resolved-IR engine, bytecode VM"
                    .to_string(),
            ),
        ),
        ("entries".to_string(), Value::Array(entries)),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("render json");
    std::fs::write(&out_path, json + "\n").expect("write BENCH_interp.json");
    println!("wrote {out_path}");

    // CI smoke: the VM must beat the resolved engine where dispatch
    // dominates; a regression here fails the build. The floors *rose*
    // when the tier-3.5 optimizer landed (pre-optimizer the varaccess
    // gate was 1.0×; measured post-optimizer quick-mode ratios sit well
    // above these, the slack absorbs shared-runner noise). A missing
    // case yields no entry and fails via `required`.
    const TIER_FLOORS: &[(&str, f64)] = &[("varaccess", 1.5), ("matmul64", 1.3), ("arraysum", 1.3)];
    for (name, floor) in TIER_FLOORS {
        let s = tier_speedups
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| *s)
            .unwrap_or(f64::NAN);
        if s.is_nan() || s < *floor {
            eprintln!(
                "FAIL: bytecode VM speedup vs resolved on {name} is {s:.2}x \
                 (floor {floor:.2}x)"
            );
            std::process::exit(1);
        }
        eprintln!("{name} bytecode speedup vs resolved: {s:.2}x (floor {floor:.2}x)");
    }
    // The optimizer itself must pay for its dispatch savings: optimized
    // bytecode may not lose to the raw lowering on the A/B cases. The
    // dispatch-bound cases get a tight floor (small tolerance for
    // wall-clock noise on shared runners); matmul64 is bound by counted
    // float ops and the memo machinery, so its optimizer win is ~1.0× in
    // the noise band — its floor only catches a catastrophic regression.
    const OPT_FLOORS: &[(&str, f64)] =
        &[("varaccess", 0.95), ("matmul64", 0.80), ("arraysum", 0.95)];
    for (name, floor) in OPT_FLOORS {
        let s = opt_speedups
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| *s)
            .unwrap_or(f64::NAN);
        if s.is_nan() || s < *floor {
            eprintln!(
                "FAIL: optimized bytecode vs --no-opt on {name} is {s:.2}x \
                 (floor {floor:.2}x)"
            );
            std::process::exit(1);
        }
        eprintln!("{name} optimizer speedup vs --no-opt: {s:.2}x (floor {floor:.2}x)");
    }

    // CI smoke: the always-on dataflow-lint pass must stay cheap — under
    // 5% of the end-to-end matmul64 lowering. (The race-verdict tier
    // pays for itself by letting the engines skip the dynamic race
    // pre-pass; the lints are pure overhead and get the hard gate.)
    let lint_frac = matmul_lint_secs / matmul_compile_secs;
    if lint_frac >= 0.05 {
        eprintln!(
            "FAIL: always-on lint pass is {:.1}% of the matmul64 compile \
             ({:.0}us of {:.0}us; cap 5%)",
            lint_frac * 100.0,
            matmul_lint_secs * 1e6,
            matmul_compile_secs * 1e6
        );
        std::process::exit(1);
    }
    eprintln!(
        "matmul64 compile {:.0}us, analysis {:.0}us, lint share {:.1}% (cap 5%)",
        matmul_compile_secs * 1e6,
        matmul_analysis_secs * 1e6,
        lint_frac * 100.0
    );

    // CI smoke: the pooled runtime must beat spawn-per-region where
    // region-launch overhead dominates — the persistent-pool routing is
    // a perf claim, and this gate keeps it true.
    if pool_speedup.is_nan() || pool_speedup < 1.0 {
        eprintln!(
            "FAIL: pooled runtime not faster than spawn-per-region on \
             region_heavy (speedup {pool_speedup:.2}x < 1.0x)"
        );
        std::process::exit(1);
    }
    eprintln!("region_heavy pooled speedup vs spawn-per-region: {pool_speedup:.2}x");

    // CI smoke: pure-call futures must actually parallelize the two
    // divide-and-conquer benchmarks — statement-level sites
    // (fib_futures) and expression-level sites over the work-stealing
    // deques (treesum_expr). The bar depends on the host's CPU budget —
    // the subsystem cannot conjure cores: ≥ 2× on ≥ 4 CPUs (full runs;
    // quick-mode problem sizes are too small to amortize spawn overhead
    // at full margin, so the bar drops to 1.1×), ≥ 1× on 2–3 CPUs, and
    // on a single CPU the number is recorded but not gated.
    let required = match (host_cpus, quick) {
        (0..=1, _) => None,
        (2..=3, _) => Some(1.0),
        (_, true) => Some(1.1),
        (_, false) => Some(2.0),
    };
    let gate_futures = |case: &str, speedup: f64| match required {
        Some(bar) if speedup.is_nan() || speedup < bar => {
            eprintln!(
                "FAIL: pure-call futures speedup {speedup:.2}x < {bar:.1}x \
                 on {case} ({host_cpus} CPUs)"
            );
            std::process::exit(1);
        }
        Some(bar) => {
            eprintln!(
                "{case} speedup with futures on 4 threads: {speedup:.2}x \
                 (gate {bar:.1}x, {host_cpus} CPUs)"
            );
        }
        None => {
            eprintln!(
                "{case} speedup with futures on 4 threads: {speedup:.2}x \
                 (not gated: single-CPU host)"
            );
        }
    };
    gate_futures("fib_futures", futures_speedup);
    gate_futures("treesum_expr", treesum_speedup);

    // CI smoke: the schedule-aware lowering must beat the literal
    // skeletons. Single-threaded matmul gets the hard floor (the
    // AffineFor index streams and hoisted bounds shave dispatches even
    // with no parallelism in play); heat's stencil is load-bound, so
    // its single-threaded floor only catches a real regression. The
    // parallel legs additionally exercise the fused regions (fewer join
    // barriers) but depend on the host's CPU budget, so they relax to
    // "recorded, not gated" on a single-CPU runner.
    const POLY_SEQ_FLOORS: &[(&str, f64)] = &[("matmul128_poly", 1.15), ("heat_poly", 0.95)];
    for (name, floor) in POLY_SEQ_FLOORS {
        let s = poly_seq_speedups
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| *s)
            .unwrap_or(f64::NAN);
        if s.is_nan() || s < *floor {
            eprintln!(
                "FAIL: poly-vs-literal speedup on {name} (1 thread) is {s:.2}x \
                 (floor {floor:.2}x)"
            );
            std::process::exit(1);
        }
        eprintln!("{name} poly speedup vs literal (1 thread): {s:.2}x (floor {floor:.2}x)");
    }
    for (name, s) in &poly_par_speedups {
        if host_cpus < 2 {
            eprintln!(
                "{name} poly speedup vs literal (4 threads): {s:.2}x (not gated: single-CPU host)"
            );
        } else if s.is_nan() || *s < 0.95 {
            eprintln!(
                "FAIL: poly-vs-literal speedup on {name} (4 threads) is {s:.2}x \
                 (floor 0.95x)"
            );
            std::process::exit(1);
        } else {
            eprintln!("{name} poly speedup vs literal (4 threads): {s:.2}x (floor 0.95x)");
        }
    }
    // CI smoke: the transform itself must stay cheap — the bounded
    // Fourier–Motzkin elimination caps the constraint blow-up, and this
    // gate pins the resulting compile-time budget: the polyhedral share
    // of the chain compile stays under 250 ms even on the 128³ nest.
    const POLY_COMPILE_CAP_SECS: f64 = 0.25;
    for (name, delta) in &poly_compile_deltas {
        if *delta >= POLY_COMPILE_CAP_SECS {
            eprintln!(
                "FAIL: polyhedral transform adds {:.0} ms to the {name} compile \
                 (cap {:.0} ms)",
                delta * 1e3,
                POLY_COMPILE_CAP_SECS * 1e3
            );
            std::process::exit(1);
        }
        eprintln!(
            "{name} polyhedral compile share: {:.1} ms (cap {:.0} ms)",
            delta * 1e3,
            POLY_COMPILE_CAP_SECS * 1e3
        );
    }

    // CI smoke: a live trace session must stay cheap — every probe is
    // one branch plus a buffered append, so a traced run may cost at
    // most 15% over the probes-off run. (The probes-*off* cost has no
    // separate gate: it is folded into the tier floors above.)
    const TRACED_CEILING: f64 = 1.15;
    for (name, ratio) in &traced_ratios {
        if ratio.is_nan() || *ratio > TRACED_CEILING {
            eprintln!(
                "FAIL: traced run on {name} costs {ratio:.3}x the untraced run \
                 (ceiling {TRACED_CEILING:.2}x)"
            );
            std::process::exit(1);
        }
        eprintln!("{name} traced-vs-untraced ratio: {ratio:.3}x (ceiling {TRACED_CEILING:.2}x)");
    }
}
