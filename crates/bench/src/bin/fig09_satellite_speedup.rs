//! Regenerate the paper's fig09 series (see apps::figures).
fn main() {
    bench_harness::emit(
        &apps::figures::fig9_satellite_speedup(),
        bench_harness::json_flag(),
    );
}
