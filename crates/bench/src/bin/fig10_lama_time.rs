//! Regenerate the paper's fig10 series (see apps::figures).
fn main() {
    bench_harness::emit(
        &apps::figures::fig10_lama_time(),
        bench_harness::json_flag(),
    );
}
