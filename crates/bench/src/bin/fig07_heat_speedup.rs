//! Regenerate the paper's fig07 series (see apps::figures).
fn main() {
    bench_harness::emit(
        &apps::figures::fig7_heat_speedup(),
        bench_harness::json_flag(),
    );
}
