//! Regenerate the paper's fig08 series (see apps::figures).
fn main() {
    bench_harness::emit(
        &apps::figures::fig8_satellite_time(),
        bench_harness::json_flag(),
    );
}
