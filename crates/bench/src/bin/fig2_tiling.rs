//! Regenerate the paper's Fig. 2: invalid vs valid tiling after skewing.
fn main() {
    print!("{}", bench_harness::fig2_report());
}
