//! Regenerate the paper's fig06 series (see apps::figures).
fn main() {
    bench_harness::emit(&apps::figures::fig6_heat_time(), bench_harness::json_flag());
}
