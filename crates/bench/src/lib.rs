//! # bench-harness — regenerates every table/figure of the paper
//!
//! One binary per figure (`fig2_tiling`, `fig03_matmul_gcc`, …,
//! `fig11_lama_speedup`) plus `all_figures` which emits everything at once
//! (and `--json` for machine-readable output). Criterion benches cover the
//! pipeline stages, the polyhedral engine, the omprt runtime, the figure
//! model, and the ablations called out in DESIGN.md.

use apps::Figure;

/// Print a figure to stdout, optionally as JSON.
pub fn emit(fig: &Figure, json: bool) {
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(fig).expect("serializable")
        );
    } else {
        println!("{}", fig.render());
    }
}

/// Shared `--json` flag handling for the fig binaries.
pub fn json_flag() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Fig. 2 demonstration: the invalid-vs-valid tiling story on the paper's
/// stencil, produced by the real dependence analyzer and scheduler.
pub fn fig2_report() -> String {
    use cfront::ast::{Stmt, StmtKind};
    use cfront::parser::parse;
    use polyhedral::{analyze, compute_schedule, extract_scop, generate, CodegenOptions};

    let src = "\
void kernel(float** a) {
    for (int i = 1; i < 64; i++)
        for (int j = 1; j < 63; j++)
            a[i][j] = a[i - 1][j] + a[i - 1][j + 1];
}
";
    let unit = parse(src).unit;
    let mut found: Option<Stmt> = None;
    for f in unit.functions() {
        if let Some(body) = &f.body {
            for s in &body.stmts {
                s.walk(&mut |st| {
                    if found.is_none() && matches!(st.kind, StmtKind::For { .. }) {
                        found = Some(st.clone());
                    }
                });
            }
        }
    }
    let scop = extract_scop(&found.expect("loop")).expect("scop");
    let deps = polyhedral::analyze(&scop);
    let transform = compute_schedule(&scop, &deps);
    let _ = analyze;

    let mut out = String::new();
    out.push_str("== fig2 — iteration points and dependency structure ==\n");
    out.push_str(&format!("kernel:\n{src}\n"));
    out.push_str("dependences (distance vectors):\n");
    for d in &deps {
        out.push_str(&format!("  {d}\n"));
    }
    out.push_str(
        "\nrectangular tiling of the ORIGINAL space: INVALID \
         (distance (1,-1) has a negative component — backward arrow in Fig. 2 left)\n",
    );
    out.push_str(&format!(
        "schedule found: hyperplanes {:?} (skewed: {}), permutable band {} of {}\n",
        transform.matrix,
        transform.skewed,
        transform.band,
        transform.depth()
    ));
    out.push_str(
        "after the shear t2 = i + j all transformed distances are non-negative \
         → rectangular tiling VALID (Fig. 2 right)\n\n",
    );
    let gen = generate(
        &scop,
        &transform,
        CodegenOptions {
            tile: Some(32),
            sica: false,
            omp: true,
        },
    )
    .expect("codegen");
    out.push_str("generated tiled code:\n");
    for s in &gen.stmts {
        out.push_str(&cfront::print_stmt(s));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_report_tells_the_skewing_story() {
        let r = fig2_report();
        assert!(r.contains("INVALID"));
        assert!(r.contains("VALID"));
        assert!(r.contains("skewed: true"));
        assert!(r.contains("[1, 1]"), "{r}");
        assert!(r.contains("t1t"), "tiled code expected:\n{r}");
    }
}
