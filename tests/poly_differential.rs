//! Differential tests for the schedule-aware execution path: programs
//! compiled through the polyhedral stage (transformed nests, `#pragma
//! affine` markers, `AffineHead`/`AffineNext` bytecode) must be
//! observably identical to the same source compiled with `--no-poly`
//! (every nest literal), and — within the poly build — the bytecode VM,
//! the resolved-IR engine and the legacy tree-walking oracle must agree
//! bit-for-bit on executed-op counters.
//!
//! The compensation contract across poly/no-poly: exit code, output,
//! flops and stores are equal; loads may *shrink* (row-pointer hoisting
//! loads an invariant row once per outer iteration instead of once per
//! inner one) but never grow; control-flow bookkeeping (int_ops,
//! branches) may differ because the transformed nest executes a
//! different — strictly cheaper per iteration — loop skeleton. Fuel only
//! ever shrinks: a fuel budget sufficient for the literal build is
//! sufficient for the poly build.

use proptest::prelude::*;
use pure_c::prelude::*;

/// A generated program with a guaranteed-affine `omp parallel for` nest
/// (routed through the transformer as an implicit SCoP), a second affine
/// nest reading the first (fusion candidate), verified-pure tree-recursive
/// calls in spawnable batches, and a printf/exit-code observable.
fn poly_source(n: usize, c1: i64, c2: i64, m: usize, sched: usize) -> String {
    let sched = [
        "",
        " schedule(static)",
        " schedule(static,3)",
        " schedule(dynamic,2)",
        " schedule(guided,1)",
    ][sched % 5];
    format!(
        "pure int leaf(int x) {{\n\
             int acc = 0;\n\
             for (int i = 0; i < (x % 5) + 2; i++) acc += i * x;\n\
             return acc % 97;\n\
         }}\n\
         pure int tree(int n, int s) {{\n\
             if (n < 2) return leaf(n + s);\n\
             int a = tree(n - 1, s);\n\
             int b = tree(n - 2, s + 1);\n\
             return a + b;\n\
         }}\n\
         int main() {{\n\
             int* a = (int*) malloc({n} * sizeof(int));\n\
             int* b = (int*) malloc({n} * sizeof(int));\n\
             int* out = (int*) malloc({m} * sizeof(int));\n\
         #pragma omp parallel for{sched}\n\
             for (int i = 0; i < {n}; i++)\n\
                 a[i] = i * {c2} + {c1};\n\
         #pragma omp parallel for{sched}\n\
             for (int j = 0; j < {n}; j++)\n\
                 b[j] = a[j] + j;\n\
             for (int k = 0; k < {m}; k++) {{\n\
                 out[k] = tree(3 + k % 3, k) + leaf(k + {c1});\n\
             }}\n\
             int acc = 0;\n\
             for (int i = 0; i < {n}; i++) acc += b[i] % 31;\n\
             for (int k = 0; k < {m}; k++) acc += out[k] % 31;\n\
             printf(\"acc=%d\\n\", acc);\n\
             return (acc % 113 + 113) % 113;\n\
         }}"
    )
}

fn compile_pair(src: &str) -> (purec::ChainOutput, purec::ChainOutput) {
    let poly = compile(src, ChainOptions::default()).expect("poly chain compiles");
    let nopoly = compile(
        src,
        ChainOptions {
            no_poly: true,
            ..Default::default()
        },
    )
    .expect("no-poly chain compiles");
    (poly, nopoly)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// poly == no-poly == resolved == legacy: on generated programs with
    /// implicit-SCoP parallel nests, pure-call spawns and all four omp
    /// schedules, the poly and literal builds agree on exit code, output
    /// and data counters — and within the poly build, all three engines
    /// agree on every executed-op counter — sequentially and with 4
    /// threads.
    #[test]
    fn poly_matches_no_poly_and_oracles(
        n in 16usize..48,
        c1 in -20i64..50,
        c2 in 1i64..40,
        m in 4usize..10,
        sched in 0usize..5,
    ) {
        let src = poly_source(n, c1, c2, m, sched);
        let (poly, nopoly) = compile_pair(&src);
        prop_assert!(
            poly.regions_transformed >= 1,
            "the affine nest must be transformed:\n{}",
            poly.text
        );
        prop_assert_eq!(nopoly.regions_transformed, 0);
        let pp = poly.program();
        let pn = nopoly.program();
        for threads in [1usize, 4] {
            let opts = InterpOptions { threads, memo: false, ..Default::default() };
            let vm_p = pp.run(opts).expect("poly VM runs");
            let vm_n = pn.run(opts).expect("no-poly VM runs");
            // Across builds: observables and data counters.
            prop_assert_eq!(vm_p.exit_code, vm_n.exit_code, "threads={}", threads);
            prop_assert_eq!(&vm_p.output, &vm_n.output, "threads={}", threads);
            prop_assert_eq!(vm_p.counters.flops, vm_n.counters.flops, "threads={}", threads);
            prop_assert_eq!(vm_p.counters.loads, vm_n.counters.loads, "threads={}", threads);
            prop_assert_eq!(vm_p.counters.stores, vm_n.counters.stores, "threads={}", threads);
            // Within the poly build: all three tiers bit-identical.
            let res_p = pp.run_resolved(opts).expect("poly resolved runs");
            prop_assert_eq!(res_p.exit_code, vm_p.exit_code, "threads={}", threads);
            prop_assert_eq!(&res_p.output, &vm_p.output, "threads={}", threads);
            prop_assert_eq!(
                res_p.counters.without_memo(),
                vm_p.counters.without_memo(),
                "threads={}",
                threads
            );
            let leg_p = pp.run_legacy(opts).expect("poly legacy runs");
            prop_assert_eq!(leg_p.exit_code, vm_p.exit_code, "threads={}", threads);
            prop_assert_eq!(&leg_p.output, &vm_p.output, "threads={}", threads);
            prop_assert_eq!(
                leg_p.counters.without_memo(),
                vm_p.counters.without_memo(),
                "threads={}",
                threads
            );
            // And the no-poly build's tiers agree with each other too.
            let res_n = pn.run_resolved(opts).expect("no-poly resolved runs");
            prop_assert_eq!(
                res_n.counters.without_memo(),
                vm_n.counters.without_memo(),
                "threads={}",
                threads
            );
        }
    }

    /// `--poly-unmarked` routes bare pure nests through the transformer
    /// without changing observables relative to the literal build.
    #[test]
    fn poly_unmarked_matches_no_poly(
        n in 16usize..48,
        c in 1i64..40,
        flag in any::<bool>(),
    ) {
        // The nest hangs directly off an `if`, so no scop markers can
        // surround it: only `--poly-unmarked` can route it.
        let src = format!(
            "int main() {{\n\
                 int* a = (int*) malloc({n} * sizeof(int));\n\
                 int go = 1;\n\
                 if (go)\n\
                     for (int i = 0; i < {n}; i++)\n\
                         a[i] = i * {c} + 1;\n\
                 int acc = 0;\n\
                 for (int i = 0; i < {n}; i++) acc += a[i] % 29;\n\
                 printf(\"acc=%d\\n\", acc);\n\
                 return acc % 113;\n\
             }}"
        );
        let unmarked = compile(
            &src,
            ChainOptions {
                poly_unmarked: flag,
                ..Default::default()
            },
        )
        .expect("poly-unmarked chain compiles");
        let nopoly = compile(
            &src,
            ChainOptions {
                no_poly: true,
                ..Default::default()
            },
        )
        .expect("no-poly chain compiles");
        if flag {
            prop_assert!(
                unmarked.regions_transformed >= 1,
                "bare-body nest must be routed:\n{}",
                unmarked.text
            );
        }
        for threads in [1usize, 4] {
            let opts = InterpOptions { threads, memo: false, ..Default::default() };
            let u = unmarked.program().run(opts).expect("unmarked runs");
            let l = nopoly.program().run(opts).expect("literal runs");
            prop_assert_eq!(u.exit_code, l.exit_code, "threads={}", threads);
            prop_assert_eq!(&u.output, &l.output, "threads={}", threads);
        }
    }

    /// Fuel only ever shrinks under the polyhedral stage: the transformed
    /// nest dispatches once per iteration where the literal loop skeleton
    /// dispatches several times, so any fuel budget sufficient for the
    /// literal build is sufficient for the poly build — and a poly fuel
    /// trap implies the literal build would have trapped too.
    #[test]
    fn poly_fuel_trap_implies_literal_trap(
        n in 16usize..64,
        c1 in -20i64..50,
        c2 in 1i64..40,
        fuel in 1u64..6000,
    ) {
        let src = poly_source(n, c1, c2, 4, 0);
        let (poly, nopoly) = compile_pair(&src);
        prop_assert!(poly.regions_transformed >= 1);
        let at = |prog: &Program| prog.run(InterpOptions {
            fuel: Some(fuel),
            memo: false,
            ..Default::default()
        });
        let literal = at(&nopoly.program());
        let fast = at(&poly.program());
        match (&literal, &fast) {
            // Literal finished within budget -> poly must finish too.
            (Ok(l), f) => {
                let f = f.as_ref().expect("poly burns no more fuel than literal");
                prop_assert_eq!(f.exit_code, l.exit_code);
                prop_assert_eq!(&f.output, &l.output);
            }
            // Poly trapped on fuel -> so must the literal build.
            (Err(l), Err(f)) => {
                prop_assert_eq!(f.trap, Some(Trap::FuelExhausted));
                prop_assert_eq!(l.trap, Some(Trap::FuelExhausted));
            }
            (Err(_), Ok(_)) => {} // the transformation saved enough fuel: fine.
        }
    }

    /// Resource traps survive the polyhedral stage verbatim: a tripped
    /// memory cap and a tripped call-depth cap produce the same trap kind
    /// and message in the poly and literal builds, across all tiers.
    #[test]
    fn poly_preserves_resource_traps(cap in 1u64..64) {
        let src = poly_source(24, 3, 5, 4, 0);
        let (poly, nopoly) = compile_pair(&src);
        prop_assert!(poly.regions_transformed >= 1);
        let cases = [
            InterpOptions {
                max_memory_bytes: Some(cap),
                ..Default::default()
            },
            InterpOptions {
                max_call_depth: Some(1 + cap as usize % 3),
                ..Default::default()
            },
        ];
        for opts in cases {
            // The structured trap *kind* is identical across builds and
            // tiers (messages embed engine- and build-specific details
            // like frame sizes, so only the kind is load-bearing).
            let l = nopoly.program().run(opts).expect_err("literal build traps");
            let f = poly.program().run(opts).expect_err("poly build traps");
            prop_assert_eq!(f.trap, l.trap);
            let r = poly.program().run_resolved(opts).expect_err("resolved traps");
            prop_assert_eq!(r.trap, f.trap);
            let g = poly.program().run_legacy(opts).expect_err("legacy traps");
            prop_assert_eq!(g.trap, f.trap);
        }
    }
}

/// The paper's two figure applications end-to-end: matmul (fig. 3) and
/// heat (fig. 7) produce bit-identical output under the poly and literal
/// builds, sequentially and with 4 threads, with the transformed build
/// burning strictly fewer dispatches.
#[test]
fn matmul_and_heat_poly_match_no_poly() {
    for src in [
        apps::matmul::c_source(24),
        apps::matmul::c_source_inline(24),
        apps::heat::c_source(16, 3),
    ] {
        let (poly, nopoly) = compile_pair(&src);
        assert!(poly.regions_transformed >= 1, "{}", poly.text);
        let pp = poly.program();
        let pn = nopoly.program();
        for threads in [1usize, 4] {
            let opts = InterpOptions {
                threads,
                memo: false,
                ..Default::default()
            };
            let fast = pp.run(opts).expect("poly runs");
            let literal = pn.run(opts).expect("literal runs");
            assert_eq!(fast.exit_code, literal.exit_code, "threads={threads}");
            assert_eq!(fast.output, literal.output, "threads={threads}");
            assert_eq!(fast.counters.flops, literal.counters.flops);
            // Row-pointer hoisting loads each invariant row once per
            // outer iteration instead of once per inner one, so the
            // poly build may do strictly fewer loads — never more.
            assert!(
                fast.counters.loads <= literal.counters.loads,
                "threads={threads}: poly {} vs literal {} loads",
                fast.counters.loads,
                literal.counters.loads
            );
            assert_eq!(fast.counters.stores, literal.counters.stores);
            // The schedule-aware skeleton must dispatch less often: fewer
            // counted branches than the literal loop shape.
            assert!(
                fast.counters.branches < literal.counters.branches,
                "threads={threads}: poly {} vs literal {} branches",
                fast.counters.branches,
                literal.counters.branches
            );
            // Tiers agree within the poly build.
            let res = pp.run_resolved(opts).expect("resolved runs");
            assert_eq!(
                res.counters.without_memo(),
                fast.counters.without_memo(),
                "threads={threads}"
            );
            let leg = pp.run_legacy(opts).expect("legacy runs");
            assert_eq!(
                leg.counters.without_memo(),
                fast.counters.without_memo(),
                "threads={threads}"
            );
        }
    }
}

/// The fused pair in [`poly_source`] collapses into one parallel region:
/// the literal build launches two `omp` regions where the poly build
/// launches one (one join barrier saved), with identical output.
#[test]
fn fused_nests_collapse_parallel_regions() {
    // Just the producer/consumer pair — no other transformable nests, so
    // the parallel-region count is exactly what fusion determines.
    let src = "\
int main() {
    int* a = (int*) malloc(32 * sizeof(int));
    int* b = (int*) malloc(32 * sizeof(int));
#pragma omp parallel for
    for (int i = 0; i < 32; i++)
        a[i] = i * 5 + 3;
#pragma omp parallel for
    for (int j = 0; j < 32; j++)
        b[j] = a[j] + j;
    printf(\"b=%d\\n\", b[31]);
    return 0;
}"
    .to_string();
    let (poly, nopoly) = compile_pair(&src);
    assert!(
        poly.regions_fused >= 1,
        "adjacent compatible nests must fuse:\n{}",
        poly.text
    );
    assert_eq!(
        poly.text.matches("#pragma omp parallel for").count(),
        nopoly.text.matches("#pragma omp parallel for").count() - 1,
        "fusion must remove one parallel region:\npoly:\n{}\nliteral:\n{}",
        poly.text,
        nopoly.text
    );
    let opts = InterpOptions {
        threads: 4,
        ..Default::default()
    };
    let fast = poly.program().run(opts).expect("poly runs");
    let literal = nopoly.program().run(opts).expect("literal runs");
    assert_eq!(fast.output, literal.output);
    assert_eq!(fast.exit_code, literal.exit_code);
}
