#![cfg(feature = "fault-inject")]
//! Fault-injection hammer: with the `fault-inject` feature armed, the
//! machine crate deterministically injects task panics, forced steal
//! races and allocation failures by seed. Whatever mix of faults a seed
//! produces, every run must end in exactly one of three clean outcomes —
//! success with the reference output, a structured memory trap, or a
//! contained task panic — and the process-wide pool must come out
//! reusable. Run this binary's tests with `--features fault-inject`.

use pure_c::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

const HAMMER_SRC: &str = "\
pure int leaf(int x) {
    int acc = 0;
    for (int i = 0; i < (x % 5) + 2; i++) acc += i * x;
    return acc % 97;
}
pure int tree(int n, int s) {
    if (n < 2) return leaf(n + s);
    int a = tree(n - 1, s);
    int b = tree(n - 2, s + 1);
    return a + b;
}
int main() {
    int n = 12;
    int* out = (int*) malloc(12 * sizeof(int));
#pragma omp parallel for schedule(dynamic,1)
    for (int i = 0; i < n; i++) {
        int* scratch = (int*) malloc(64 * sizeof(int));
        scratch[0] = tree(6 + i % 3, i);
        out[i] = scratch[0] + tree(5 + i % 2, i + 1);
    }
    int acc = 0;
    for (int i = 0; i < n; i++) acc += out[i];
    printf(\"acc=%d\\n\", acc);
    return (acc % 113 + 113) % 113;
}";

fn hammer_program() -> cinterp::Program {
    let parsed = parse(HAMMER_SRC);
    assert!(
        !parsed.diags.has_errors(),
        "{}",
        parsed.diags.render_all(HAMMER_SRC)
    );
    let pure_set: std::collections::HashSet<String> =
        ["leaf", "tree"].iter().map(|s| s.to_string()).collect();
    cinterp::Program::with_pure_set(&parsed.unit, &pure_set)
}

#[test]
fn injected_faults_are_contained_and_pool_survives() {
    let prog = hammer_program();
    let opts = InterpOptions {
        threads: 4,
        futures: true,
        ..Default::default()
    };
    machine::fault::disarm();
    let reference = prog.run(opts).expect("fault-free reference run");

    let mut ok = 0u32;
    let mut trapped = 0u32;
    let mut panicked = 0u32;
    for seed in 1..=24u64 {
        machine::fault::seed(seed * 0x9e37_79b9);
        let outcome = catch_unwind(AssertUnwindSafe(|| prog.run(opts)));
        machine::fault::disarm();
        match outcome {
            Ok(Ok(run)) => {
                // Jitter-only seeds must not corrupt the result.
                assert_eq!(run.output, reference.output, "seed {seed}");
                assert_eq!(run.exit_code, reference.exit_code, "seed {seed}");
                ok += 1;
            }
            Ok(Err(err)) => {
                // Injected allocation failures surface as the structured
                // memory trap, exactly like a real cap.
                assert_eq!(
                    err.trap,
                    Some(cinterp::Trap::MemoryLimit),
                    "seed {seed}: {err}"
                );
                trapped += 1;
            }
            Err(payload) => {
                // Injected task panics are re-raised at the region join;
                // the payload is the injected message, not an engine
                // invariant violation.
                let msg = payload
                    .downcast_ref::<&str>()
                    .copied()
                    .map(str::to_owned)
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string payload>".into());
                assert!(
                    msg.contains("injected fault"),
                    "seed {seed}: unexpected panic: {msg}"
                );
                panicked += 1;
            }
        }
        // The pool must be reusable immediately, whatever just happened.
        let clean = prog.run(opts).expect("pool reusable after faulty run");
        assert_eq!(clean.output, reference.output, "seed {seed} aftermath");
    }
    // The fault rates make all-ok or all-fault over 24 seeds vanishingly
    // unlikely; seeing both sides proves the harness actually injects.
    assert!(
        ok > 0,
        "every seed faulted (ok={ok} trapped={trapped} panicked={panicked})"
    );
    assert!(
        trapped + panicked > 0,
        "no seed injected anything (ok={ok} trapped={trapped} panicked={panicked})"
    );

    // Disarmed: deterministic clean finish, bit-identical observables.
    machine::fault::disarm();
    let after = prog.run(opts).expect("clean run after disarm");
    assert_eq!(after.output, reference.output);
    assert_eq!(after.exit_code, reference.exit_code);
}

/// Whatever faults a seed injects — task panics unwinding mid-span,
/// allocation traps aborting a region, forced steal races — a traced
/// run must still export structurally valid Chrome trace JSON: every
/// `B` closed by a matching `E` (the span guards record their end on
/// unwind too), timestamps monotonic per thread. Run single-threaded
/// like the rest of this binary: both the fault injector and the trace
/// switch are process-global.
#[test]
fn traced_json_stays_well_formed_under_faults() {
    let prog = hammer_program();
    let opts = InterpOptions {
        threads: 4,
        futures: true,
        ..Default::default()
    };
    machine::fault::disarm();
    for seed in 1..=12u64 {
        machine::fault::seed(seed * 0x517c_c1b7);
        let session = cinterp::TraceSession::start();
        let outcome = catch_unwind(AssertUnwindSafe(|| prog.run(opts)));
        machine::fault::disarm();
        let data = session.finish();
        let json = cinterp::chrome_trace_json(&data);
        let stats = cinterp::validate_chrome_trace(&json).unwrap_or_else(|e| {
            panic!(
                "seed {seed} (outcome ok={}): invalid trace: {e}",
                outcome.is_ok()
            )
        });
        assert_eq!(
            data.dropped, 0,
            "seed {seed}: event buffers overflowed ({} events)",
            stats.events
        );
        // A clean run always records its parallel region; a fault may
        // strike before the region opens (e.g. the very first malloc),
        // but a structured trap must then leave its instant behind.
        match &outcome {
            Ok(Ok(_)) => assert!(
                stats.has_name("region"),
                "seed {seed}: no region span in {:?}",
                stats.names
            ),
            Ok(Err(_)) => assert!(
                stats.has_name("trap"),
                "seed {seed}: trapped run left no trap instant in {:?}",
                stats.names
            ),
            Err(_) => {} // injected panic: containment is the other test's job.
        }
    }
    machine::fault::disarm();
}
