//! Golden schedule snapshots: each C file in `examples/schedules/`
//! carries `// expect:` annotations, one per polyhedral region, in
//! region order. The file is compiled through the full chain and every
//! annotation's tokens must appear in the corresponding line of the
//! schedule dump (the `--dump-schedule` rendering). This pins the
//! figure-level outcomes from the paper — which nests tile, which
//! parallelize, which are rejected — against regressions in the
//! dependence test, scheduler, or codegen.

use pure_c::prelude::*;
use std::fs;
use std::path::Path;

/// Parse `// options: key=value ...` (at most one line per file) and
/// `// expect: ...` annotations in file order.
fn parse_annotations(src: &str) -> (ChainOptions, Vec<String>) {
    let mut opts = ChainOptions::default();
    let mut expects = Vec::new();
    for line in src.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("// options:") {
            for kv in rest.split_whitespace() {
                match kv.split_once('=') {
                    Some(("tile", v)) => {
                        opts.polycc.codegen.tile = Some(v.parse().expect("tile value"));
                    }
                    _ => panic!("unknown option {kv:?}"),
                }
            }
        } else if let Some(rest) = line.strip_prefix("// expect:") {
            expects.push(rest.trim().to_string());
        }
    }
    (opts, expects)
}

fn check_file(path: &Path) {
    let src = fs::read_to_string(path).expect("read corpus file");
    let (opts, expects) = parse_annotations(&src);
    assert!(
        !expects.is_empty(),
        "{}: corpus file has no // expect: annotations",
        path.display()
    );
    let out = compile(&src, opts).expect("chain");
    assert_eq!(
        out.schedules.len(),
        expects.len(),
        "{}: annotation count must match region count; schedule dump:\n{}",
        path.display(),
        out.schedules.join("\n")
    );
    for (k, (expect, line)) in expects.iter().zip(&out.schedules).enumerate() {
        // `skipped` regions render their reason in parentheses; token
        // matching keeps the annotations stable across wording tweaks.
        for token in expect.split_whitespace() {
            assert!(
                line.contains(token),
                "{}: region {k}: expected token {token:?} in {line:?}",
                path.display()
            );
        }
    }
    // Snapshots must stay executable: reparse and run the transformed
    // text to make sure the pinned schedules describe a live program.
    let (_, run) = compile_and_run(
        &src,
        parse_annotations(&src).0,
        InterpOptions {
            threads: 4,
            ..Default::default()
        },
    )
    .expect("transformed corpus program runs");
    assert_eq!(run.exit_code, 0, "{}", path.display());
}

#[test]
fn schedule_corpus_matches_annotations() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/schedules");
    let mut files: Vec<_> = fs::read_dir(&dir)
        .expect("examples/schedules exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "c"))
        .collect();
    files.sort();
    assert!(
        files.len() >= 2,
        "corpus must hold the fig03/fig07 snapshots"
    );
    for f in &files {
        check_file(f);
    }
}

#[test]
fn fig03_matmul_product_nest_is_parallel_and_tiled() {
    // Belt and braces for the headline figure: independent of the
    // annotation mechanism, the matmul product nest must come out as a
    // depth-2 parallel band when tiling is requested.
    let src = fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/schedules/fig03_matmul.c"),
    )
    .expect("read fig03");
    let (opts, _) = parse_annotations(&src);
    let out = compile(&src, opts).expect("chain");
    assert!(
        out.schedules
            .iter()
            .any(|l| l.contains("depth=2") && l.contains("parallel") && l.contains("tiled")),
        "schedule dump:\n{}",
        out.schedules.join("\n")
    );
    assert!(out.regions_tiled >= 1);
    assert!(out.regions_parallelized >= 1);
}
