//! Property-based tests over the core data structures and invariants
//! (DESIGN.md §6): printer/parser round trips, Fourier–Motzkin vs brute
//! force, omprt schedule partitioning, parallel-equals-sequential
//! execution, and purity-verdict stability under reformatting.

use proptest::prelude::*;
use pure_c::prelude::*;

// ---------------------------------------------------------------------------
// Printer ∘ parser round trips
// ---------------------------------------------------------------------------

/// Generator for well-formed C expressions of bounded depth.
fn arb_expr(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (0i64..1000).prop_map(|v| v.to_string()),
        "[a-d]".prop_map(|s| s),
        Just("x".to_string()),
    ];
    leaf.prop_recursive(depth, 64, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} + {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} * {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} - {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} < {b})")),
            inner.clone().prop_map(|a| format!("(-{a})")),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(c, t, e)| format!("({c} ? {t} : {e})")),
        ]
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// print ∘ parse is a fixed point on expressions.
    #[test]
    fn expr_print_parse_fixed_point(src in arb_expr(4)) {
        let e1 = cfront::parse_expr_str(&src).expect("generated expr parses");
        let printed = cfront::print_expr(&e1);
        let e2 = cfront::parse_expr_str(&printed).expect("printed expr reparses");
        prop_assert_eq!(cfront::print_expr(&e2), printed);
    }

    /// Whole-program canonical form is a fixed point of parse ∘ print.
    #[test]
    fn unit_print_parse_fixed_point(n in 1usize..24, lit in 0i64..500) {
        let src = format!(
            "pure int f(pure int* a, int k) {{ return a[k] + {lit}; }}\n\
             int main() {{\n\
                 int buf[{n}];\n\
                 for (int i = 0; i < {n}; i++) buf[i] = i * {lit};\n\
                 return buf[{m}];\n\
             }}",
            m = n - 1
        );
        let once = print_unit(&parse(&src).unit);
        let twice = print_unit(&parse(&once).unit);
        prop_assert_eq!(once, twice);
    }

    /// Purity verdicts are invariant under whitespace/comment mutation.
    #[test]
    fn purity_verdict_stable_under_reformatting(pad in 0usize..6, cmt in any::<bool>()) {
        let spacer = " ".repeat(pad + 1);
        let comment = if cmt { "/* noise */" } else { "" };
        let src_a = "int g;\npure int f(int x) { g = x; return x; }\nint main() { return 0; }";
        let src_b = format!(
            "int g;{comment}\npure{spacer}int f(int x){spacer}{{ g{spacer}={spacer}x; return x; }}\nint main() {{ return 0; }}"
        );
        let a = run_pc_cc(src_a, PcCcOptions::default()).is_err();
        let b = run_pc_cc(&src_b, PcCcOptions::default()).is_err();
        prop_assert_eq!(a, b);
    }
}

// ---------------------------------------------------------------------------
// Fourier–Motzkin vs exhaustive enumeration
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// FM never reports "empty" when an integer point exists in a box.
    #[test]
    fn fm_is_sound_vs_brute_force(
        coeffs in proptest::collection::vec((-3i64..=3, -3i64..=3, -6i64..=6, any::<bool>()), 1..5)
    ) {
        use polyhedral::{AffineExpr, Constraint, ConstraintSystem};
        let mut sys = ConstraintSystem::new();
        for (a, b, c, eq) in &coeffs {
            let mut e = AffineExpr::constant(*c);
            e = e.add(&AffineExpr::term("x", *a));
            e = e.add(&AffineExpr::term("y", *b));
            if *eq {
                sys.push(Constraint::eq0(e));
            } else {
                sys.push(Constraint::ge0(e));
            }
        }
        let brute = !sys
            .enumerate_points(&["x".to_string(), "y".to_string()], -10, 10)
            .is_empty();
        if brute {
            prop_assert!(sys.is_satisfiable(), "FM missed an integer point of {sys}");
        }
    }
}

// ---------------------------------------------------------------------------
// omprt schedules
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Static chunk assignments partition 0..n exactly.
    #[test]
    fn static_chunks_partition(n in 0u64..10_000, threads in 1u64..96, chunk in 1u64..64) {
        for sched in [OmpSchedule::Static, OmpSchedule::StaticChunk(chunk)] {
            let mut all: Vec<(u64, u64)> = Vec::new();
            for tid in 0..threads {
                all.extend(sched.static_chunks(n, threads, tid));
            }
            all.sort_unstable();
            let covered: u64 = all.iter().map(|(s, e)| e - s).sum();
            prop_assert_eq!(covered, n);
            let mut pos = 0;
            for (s, e) in all {
                prop_assert_eq!(s, pos, "gap or overlap under {}", sched);
                prop_assert!(e > s);
                pos = e;
            }
        }
    }

    /// parallel_for executes every iteration exactly once for any schedule.
    #[test]
    fn parallel_for_exactly_once(
        n in 0u64..512,
        threads in 1usize..9,
        sched_pick in 0usize..4,
        chunk in 1u64..16,
    ) {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sched = match sched_pick {
            0 => OmpSchedule::Static,
            1 => OmpSchedule::StaticChunk(chunk),
            2 => OmpSchedule::Dynamic(chunk),
            _ => OmpSchedule::Guided(chunk),
        };
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(n, threads, sched, |i| {
            hits[i as usize].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            prop_assert_eq!(h.load(Ordering::Relaxed), 1, "iteration {} under {}", i, sched);
        }
    }
}

// ---------------------------------------------------------------------------
// End-to-end: transformed parallel execution equals sequential
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For random small matmul sizes, the transformed program yields the
    /// same output at any thread count (data-race freedom in practice).
    #[test]
    fn transformed_matmul_thread_invariant(n in 2usize..14, threads in 2usize..9) {
        let src = apps::matmul::c_source(n);
        let run = |t: usize| {
            purec::compile_and_run(
                &src,
                ChainOptions::default(),
                InterpOptions { threads: t, ..Default::default() },
            )
            .expect("runs")
            .1
            .output
        };
        prop_assert_eq!(run(1), run(threads));
    }

    /// Native matmul: par == seq for arbitrary seeds and schedules.
    #[test]
    fn native_matmul_par_equals_seq(seed in 0u64..1000, threads in 1usize..9) {
        let a = apps::matmul::Matrix::random(21, seed);
        let bt = apps::matmul::Matrix::random(21, seed ^ 0xABCD);
        let seq = apps::matmul::matmul_seq(&a, &bt);
        let par = apps::matmul::matmul_par(&a, &bt, threads, OmpSchedule::Dynamic(2));
        prop_assert_eq!(seq.max_abs_diff(&par), 0.0);
    }
}

// ---------------------------------------------------------------------------
// Differential: bytecode VM vs resolved-IR interpreter vs legacy walker
// ---------------------------------------------------------------------------

/// Build a generated-but-well-formed C program exercising scalars, arrays,
/// floats, same-named struct fields, globals, calls and a parallel loop.
fn differential_source(n: usize, c1: i64, c2: i64, op1: usize, op2: usize, sched: usize) -> String {
    let ops = ["+", "-", "*", "^", "|", "&"];
    let op1 = ops[op1 % ops.len()];
    let op2 = ops[op2 % ops.len()];
    let sched = [
        "",
        " schedule(static)",
        " schedule(static,3)",
        " schedule(dynamic,2)",
        " schedule(guided,1)",
    ][sched % 5];
    format!(
        "int g;\n\
         struct s1 {{ int v; int w; }};\n\
         struct s2 {{ int pad[3]; int w; }};\n\
         int helper(int x, int y) {{ int t = x {op1} y; if (t < 0) t = -t; return t % 97; }}\n\
         float fhelper(float x) {{ return x * 0.5f + 3.0f; }}\n\
         int main() {{\n\
             int acc = 0;\n\
             g = {c1};\n\
             struct s1 p;\n\
             struct s2 q;\n\
             p.w = {c2};\n\
             q.w = {c1} + 2;\n\
             int* a = (int*) malloc({n} * sizeof(int));\n\
             float* b = (float*) malloc({n} * sizeof(float));\n\
         #pragma omp parallel for{sched}\n\
             for (int i = 0; i < {n}; i++) {{\n\
                 a[i] = helper(i, {c2}) + (i {op2} {c1});\n\
                 a[i] += i % 7;\n\
                 b[i] = fhelper(i);\n\
             }}\n\
             for (int i = 0; i < {n}; i++) {{ acc += a[i] % 31; acc += (int) b[i]; }}\n\
             acc += p.w * 10 + q.w + g;\n\
             printf(\"acc=%d g=%d\\n\", acc, g);\n\
             return acc % 113;\n\
         }}"
    )
}

/// Generated program with a *nested* parallel region (outer and inner
/// schedules drawn independently) plus a read-only global in the body.
fn nested_region_source(outer: usize, inner: usize, c: i64, so: usize, si: usize) -> String {
    let scheds = [
        "",
        " schedule(static)",
        " schedule(static,2)",
        " schedule(dynamic,1)",
        " schedule(guided,1)",
    ];
    let so = scheds[so % scheds.len()];
    let si = scheds[si % scheds.len()];
    let total = outer * inner;
    format!(
        "int g;\n\
         int main() {{\n\
             int acc = 0;\n\
             g = {c};\n\
             int* a = (int*) malloc({total} * sizeof(int));\n\
         #pragma omp parallel for{so}\n\
             for (int i = 0; i < {outer}; i++) {{\n\
         #pragma omp parallel for{si}\n\
                 for (int j = 0; j < {inner}; j++) {{\n\
                     a[i * {inner} + j] = (i + 1) * (j + 2) + g;\n\
                 }}\n\
             }}\n\
             for (int k = 0; k < {total}; k++) acc += a[k] % 23;\n\
             printf(\"acc=%d\\n\", acc);\n\
             return acc % 113;\n\
         }}"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The three execution tiers are bit-identical — exit code, captured
    /// output and executed-op counters (modulo memo bookkeeping) — on
    /// generated programs, sequentially and with 4 threads, across
    /// `static`, `static,c`, `dynamic,c` and `guided,c` schedules:
    /// bytecode VM == resolved-IR engine == legacy tree-walking oracle.
    #[test]
    fn bytecode_and_resolved_match_legacy_oracle(
        n in 4usize..48,
        c1 in -20i64..50,
        c2 in 1i64..40,
        op1 in 0usize..6,
        op2 in 0usize..6,
        sched in 0usize..5,
    ) {
        let src = differential_source(n, c1, c2, op1, op2, sched);
        let parsed = parse(&src);
        prop_assert!(!parsed.diags.has_errors(), "{}", parsed.diags.render_all(&src));
        let prog = Program::new(&parsed.unit);
        for threads in [1usize, 4] {
            let opts = InterpOptions { threads, ..Default::default() };
            let vm = prog.run(opts).expect("bytecode VM runs");
            let resolved = prog.run_resolved(opts).expect("resolved engine runs");
            let legacy = prog.run_legacy(opts).expect("legacy engine runs");
            // VM vs resolved oracle.
            prop_assert_eq!(vm.exit_code, resolved.exit_code, "threads={}", threads);
            prop_assert_eq!(&vm.output, &resolved.output, "threads={}", threads);
            prop_assert_eq!(
                vm.counters.without_memo(),
                resolved.counters.without_memo(),
                "threads={}",
                threads
            );
            // Resolved vs legacy oracle.
            prop_assert_eq!(resolved.exit_code, legacy.exit_code, "threads={}", threads);
            prop_assert_eq!(&resolved.output, &legacy.output, "threads={}", threads);
            prop_assert_eq!(
                resolved.counters.without_memo(),
                legacy.counters,
                "threads={}",
                threads
            );
        }
    }

    /// Substrate equivalence: regions routed through the persistent
    /// thread pool produce bit-identical exit code, output and
    /// executed-op counters (modulo memo bookkeeping) to the scoped
    /// spawn-per-region path — and both match the resolved and legacy
    /// oracles — sequentially and with 4 threads, across all four
    /// schedules.
    #[test]
    fn pooled_regions_match_scoped_and_oracles(
        n in 4usize..40,
        c1 in -20i64..50,
        c2 in 1i64..40,
        op1 in 0usize..6,
        op2 in 0usize..6,
        sched in 0usize..5,
    ) {
        let src = differential_source(n, c1, c2, op1, op2, sched);
        let parsed = parse(&src);
        prop_assert!(!parsed.diags.has_errors(), "{}", parsed.diags.render_all(&src));
        let prog = Program::new(&parsed.unit);
        for threads in [1usize, 4] {
            let opt = |pool: bool| InterpOptions { threads, pool, ..Default::default() };
            let pooled = prog.run(opt(true)).expect("pooled VM runs");
            let scoped = prog.run(opt(false)).expect("scoped VM runs");
            prop_assert_eq!(pooled.exit_code, scoped.exit_code, "threads={}", threads);
            prop_assert_eq!(&pooled.output, &scoped.output, "threads={}", threads);
            prop_assert_eq!(
                pooled.counters.without_memo(),
                scoped.counters.without_memo(),
                "threads={}",
                threads
            );
            let res_pooled = prog.run_resolved(opt(true)).expect("pooled resolved runs");
            let res_scoped = prog.run_resolved(opt(false)).expect("scoped resolved runs");
            prop_assert_eq!(res_pooled.exit_code, res_scoped.exit_code, "threads={}", threads);
            prop_assert_eq!(&res_pooled.output, &res_scoped.output, "threads={}", threads);
            prop_assert_eq!(
                res_pooled.counters.without_memo(),
                res_scoped.counters.without_memo(),
                "threads={}",
                threads
            );
            let legacy = prog.run_legacy(opt(true)).expect("pooled legacy runs");
            prop_assert_eq!(pooled.exit_code, legacy.exit_code, "threads={}", threads);
            prop_assert_eq!(&pooled.output, &legacy.output, "threads={}", threads);
            prop_assert_eq!(
                pooled.counters.without_memo(),
                legacy.counters,
                "threads={}",
                threads
            );
            prop_assert_eq!(res_pooled.exit_code, legacy.exit_code, "threads={}", threads);
        }
    }

    /// Nested parallel regions on the shared pool (a worker joining an
    /// inner generation helps instead of blocking): pooled == scoped ==
    /// oracles on observable behaviour, for independently drawn outer
    /// and inner schedules.
    #[test]
    fn pooled_nested_regions_match_scoped_and_oracles(
        outer in 2usize..8,
        inner in 2usize..8,
        c in 1i64..30,
        so in 0usize..5,
        si in 0usize..5,
    ) {
        let src = nested_region_source(outer, inner, c, so, si);
        let parsed = parse(&src);
        prop_assert!(!parsed.diags.has_errors(), "{}", parsed.diags.render_all(&src));
        let prog = Program::new(&parsed.unit);
        for threads in [1usize, 4] {
            let opt = |pool: bool| InterpOptions { threads, pool, ..Default::default() };
            let pooled = prog.run(opt(true)).expect("pooled VM runs");
            let scoped = prog.run(opt(false)).expect("scoped VM runs");
            let resolved = prog.run_resolved(opt(true)).expect("resolved runs");
            let legacy = prog.run_legacy(opt(true)).expect("legacy runs");
            prop_assert_eq!(pooled.exit_code, scoped.exit_code, "threads={}", threads);
            prop_assert_eq!(&pooled.output, &scoped.output, "threads={}", threads);
            prop_assert_eq!(
                pooled.counters.without_memo(),
                scoped.counters.without_memo(),
                "threads={}",
                threads
            );
            prop_assert_eq!(pooled.exit_code, resolved.exit_code, "threads={}", threads);
            prop_assert_eq!(&pooled.output, &resolved.output, "threads={}", threads);
            prop_assert_eq!(
                pooled.counters.without_memo(),
                resolved.counters.without_memo(),
                "threads={}",
                threads
            );
            prop_assert_eq!(resolved.exit_code, legacy.exit_code, "threads={}", threads);
            prop_assert_eq!(&resolved.output, &legacy.output, "threads={}", threads);
            prop_assert_eq!(
                resolved.counters.without_memo(),
                legacy.counters,
                "threads={}",
                threads
            );
        }
    }

    /// Pure-call futures differential: on a generated program whose
    /// verified-pure, tree-recursive function is called in spawnable
    /// batches — at top level *and* inside a parallel region — the
    /// bytecode VM and resolved engine with futures on must match the
    /// no-futures runs and the legacy oracle bit-for-bit on exit code
    /// and output, and (memo off, where op totals are deterministic) on
    /// executed-op counters modulo the memo/futures bookkeeping,
    /// sequentially and on 4 threads across schedules.
    #[test]
    fn futures_match_no_futures_and_oracles(
        depth in 5usize..10,
        m in 4usize..16,
        c in 1i64..40,
        sched in 0usize..5,
    ) {
        let sched = [
            "",
            " schedule(static)",
            " schedule(static,2)",
            " schedule(dynamic,1)",
            " schedule(guided,1)",
        ][sched];
        let src = format!(
            "pure int leaf(int x) {{\n\
                 int acc = 0;\n\
                 for (int i = 0; i < (x % 5) + 2; i++) acc += i * x;\n\
                 return acc % 97;\n\
             }}\n\
             pure int tree(int n, int s) {{\n\
                 if (n < 2) return leaf(n + s);\n\
                 int a = tree(n - 1, s);\n\
                 int b = tree(n - 2, s + 1);\n\
                 return a + b;\n\
             }}\n\
             int main() {{\n\
                 int* out = (int*) malloc({m} * sizeof(int));\n\
             #pragma omp parallel for{sched}\n\
                 for (int i = 0; i < {m}; i++) {{\n\
                     int l = tree(4 + i % 3, i);\n\
                     int r = tree(3 + i % 2, i + 1);\n\
                     out[i] = l + r;\n\
                 }}\n\
                 int acc = 0;\n\
                 for (int i = 0; i < {m}; i++) acc += out[i];\n\
                 int p = tree({depth}, {c});\n\
                 int q = tree({depth} - 1, {c} + 1);\n\
                 acc += p - q;\n\
                 printf(\"acc=%d\\n\", acc);\n\
                 return (acc % 113 + 113) % 113;\n\
             }}"
        );
        let parsed = parse(&src);
        prop_assert!(!parsed.diags.has_errors(), "{}", parsed.diags.render_all(&src));
        let pure_set: std::collections::HashSet<String> =
            ["leaf", "tree"].iter().map(|s| s.to_string()).collect();
        let prog = Program::with_pure_set(&parsed.unit, &pure_set);
        prop_assert!(!prog.resolved().spawn_sites().is_empty());
        for threads in [1usize, 4] {
            let opt = |futures: bool| InterpOptions {
                threads,
                futures,
                memo: false,
                ..Default::default()
            };
            let base = prog.run(opt(false)).expect("no-futures VM runs");
            let fut = prog.run(opt(true)).expect("futures VM runs");
            prop_assert_eq!(fut.exit_code, base.exit_code, "threads={}", threads);
            prop_assert_eq!(&fut.output, &base.output, "threads={}", threads);
            prop_assert_eq!(
                fut.counters.without_memo(),
                base.counters.without_memo(),
                "threads={}",
                threads
            );
            let res_fut = prog.run_resolved(opt(true)).expect("futures resolved runs");
            prop_assert_eq!(res_fut.exit_code, base.exit_code, "threads={}", threads);
            prop_assert_eq!(&res_fut.output, &base.output, "threads={}", threads);
            prop_assert_eq!(
                res_fut.counters.without_memo(),
                base.counters.without_memo(),
                "threads={}",
                threads
            );
            let legacy = prog.run_legacy(opt(true)).expect("legacy runs");
            prop_assert_eq!(legacy.exit_code, base.exit_code, "threads={}", threads);
            prop_assert_eq!(&legacy.output, &base.output, "threads={}", threads);
            prop_assert_eq!(
                legacy.counters.without_memo(),
                base.counters.without_memo(),
                "threads={}",
                threads
            );
            // Memoized runs agree on observables (counters are
            // scheduling-dependent under memo and not compared).
            let memo_fut = prog
                .run(InterpOptions { memo: true, ..opt(true) })
                .expect("memoized futures VM runs");
            prop_assert_eq!(memo_fut.exit_code, base.exit_code, "threads={}", threads);
            prop_assert_eq!(&memo_fut.output, &base.output, "threads={}", threads);
        }
    }

    /// Expression-level spawns: a tree-recursive pure function whose
    /// recursive calls sit *inside* `return` expressions (no locals —
    /// sites exist only through the hoisting pass), called at top level,
    /// inside a parallel region, and from a compound-assign value. The
    /// bytecode VM and resolved engine with futures on must match the
    /// no-futures runs and the legacy oracle (which executes the
    /// original, un-hoisted AST) bit-for-bit on exit code and output,
    /// and (memo off) on executed-op counters modulo the memo/futures/
    /// steal bookkeeping, sequentially and on 4 threads across
    /// schedules.
    #[test]
    fn expression_spawns_match_no_futures_and_oracles(
        depth in 5usize..10,
        m in 4usize..14,
        c in 1i64..40,
        sched in 0usize..5,
    ) {
        let sched = [
            "",
            " schedule(static)",
            " schedule(static,2)",
            " schedule(dynamic,1)",
            " schedule(guided,1)",
        ][sched];
        let src = format!(
            "pure int leaf(int x) {{\n\
                 int acc = 0;\n\
                 for (int i = 0; i < (x % 5) + 2; i++) acc += i * x;\n\
                 return acc % 97;\n\
             }}\n\
             pure int tree(int n, int s) {{\n\
                 if (n < 2) return leaf(n + s);\n\
                 return tree(n - 1, s) + tree(n - 2, s + 1);\n\
             }}\n\
             int main() {{\n\
                 int* out = (int*) malloc({m} * sizeof(int));\n\
             #pragma omp parallel for{sched}\n\
                 for (int i = 0; i < {m}; i++) {{\n\
                     out[i] = tree(4 + i % 3, i) + tree(3 + i % 2, i + 1);\n\
                 }}\n\
                 int acc = 0;\n\
                 for (int i = 0; i < {m}; i++) acc += out[i];\n\
                 acc += tree({depth}, {c}) - tree({depth} - 1, {c} + 1);\n\
                 printf(\"acc=%d\\n\", acc);\n\
                 return (acc % 113 + 113) % 113;\n\
             }}"
        );
        let parsed = parse(&src);
        prop_assert!(!parsed.diags.has_errors(), "{}", parsed.diags.render_all(&src));
        let pure_set: std::collections::HashSet<String> =
            ["leaf", "tree"].iter().map(|s| s.to_string()).collect();
        let prog = Program::with_pure_set(&parsed.unit, &pure_set);
        // The expression-level sites must exist in `tree` itself (its
        // body has no statement-shaped candidates at all).
        let sites = prog.resolved().spawn_sites();
        prop_assert!(
            sites.iter().any(|(f, n)| *f == "tree" && *n > 0),
            "no expression spawn site in tree: {sites:?}"
        );
        for threads in [1usize, 4] {
            let opt = |futures: bool| InterpOptions {
                threads,
                futures,
                memo: false,
                ..Default::default()
            };
            let base = prog.run(opt(false)).expect("no-futures VM runs");
            let fut = prog.run(opt(true)).expect("futures VM runs");
            prop_assert_eq!(fut.exit_code, base.exit_code, "threads={}", threads);
            prop_assert_eq!(&fut.output, &base.output, "threads={}", threads);
            prop_assert_eq!(
                fut.counters.without_memo(),
                base.counters.without_memo(),
                "threads={}",
                threads
            );
            let res_fut = prog.run_resolved(opt(true)).expect("futures resolved runs");
            prop_assert_eq!(res_fut.exit_code, base.exit_code, "threads={}", threads);
            prop_assert_eq!(&res_fut.output, &base.output, "threads={}", threads);
            prop_assert_eq!(
                res_fut.counters.without_memo(),
                base.counters.without_memo(),
                "threads={}",
                threads
            );
            let legacy = prog.run_legacy(opt(true)).expect("legacy runs");
            prop_assert_eq!(legacy.exit_code, base.exit_code, "threads={}", threads);
            prop_assert_eq!(&legacy.output, &base.output, "threads={}", threads);
            prop_assert_eq!(
                legacy.counters.without_memo(),
                base.counters.without_memo(),
                "threads={}",
                threads
            );
            // Memoized runs agree on observables (counters are
            // scheduling-dependent under memo and not compared).
            let memo_fut = prog
                .run(InterpOptions { memo: true, ..opt(true) })
                .expect("memoized futures VM runs");
            prop_assert_eq!(memo_fut.exit_code, base.exit_code, "threads={}", threads);
            prop_assert_eq!(&memo_fut.output, &base.output, "threads={}", threads);
        }
    }

    /// Speculative purity inference as a drop-in for annotations: on a
    /// generated program whose helper functions are pure-shaped, deleting
    /// every `pure` keyword and re-deriving the set via
    /// `PcCcOptions::infer_pure` must yield the same verified pure set,
    /// the same transformed program text, and bit-identical observable
    /// behaviour (exit code, output, executed-op counters modulo memo
    /// bookkeeping) across the bytecode VM, the resolved engine and the
    /// legacy oracle, sequentially and with 4 threads.
    #[test]
    fn inferred_pure_matches_annotated_and_oracles(
        depth in 4usize..8,
        m in 4usize..12,
        c in 1i64..40,
    ) {
        let src = format!(
            "pure int leaf(int x) {{\n\
                 int acc = 0;\n\
                 for (int i = 0; i < (x % 5) + 2; i++) acc += i * x;\n\
                 return acc % 97;\n\
             }}\n\
             pure int tree(int n, int s) {{\n\
                 if (n < 2) return leaf(n + s);\n\
                 int a = tree(n - 1, s);\n\
                 int b = tree(n - 2, s + 1);\n\
                 return a + b;\n\
             }}\n\
             int main() {{\n\
                 int* out = (int*) malloc({m} * sizeof(int));\n\
                 for (int i = 0; i < {m}; i++) {{\n\
                     out[i] = tree(3 + i % 3, i) + leaf(i + {c});\n\
                 }}\n\
                 int acc = 0;\n\
                 for (int i = 0; i < {m}; i++) acc += out[i];\n\
                 acc += tree({depth}, {c});\n\
                 printf(\"acc=%d\\n\", acc);\n\
                 return (acc % 113 + 113) % 113;\n\
             }}"
        );
        let plain = src.replace("pure ", "");
        prop_assert!(!plain.contains("pure"));
        let ann = compile(&src, ChainOptions::default()).expect("annotated chain");
        let inf = compile(
            &plain,
            ChainOptions {
                pc_cc: PcCcOptions {
                    infer_pure: true,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .expect("inferred chain");
        prop_assert_eq!(ann.verified_pure_set(), inf.verified_pure_set());
        prop_assert_eq!(&ann.text, &inf.text, "transformed programs diverge");
        let pa = ann.program();
        let pi = inf.program();
        for threads in [1usize, 4] {
            let opts = InterpOptions {
                threads,
                memo: false,
                ..Default::default()
            };
            let base = pa.run(opts).expect("annotated VM runs");
            let vm = pi.run(opts).expect("inferred VM runs");
            prop_assert_eq!(vm.exit_code, base.exit_code, "threads={}", threads);
            prop_assert_eq!(&vm.output, &base.output, "threads={}", threads);
            prop_assert_eq!(
                vm.counters.without_memo(),
                base.counters.without_memo(),
                "threads={}",
                threads
            );
            let resolved = pi.run_resolved(opts).expect("inferred resolved runs");
            prop_assert_eq!(resolved.exit_code, base.exit_code, "threads={}", threads);
            prop_assert_eq!(&resolved.output, &base.output, "threads={}", threads);
            prop_assert_eq!(
                resolved.counters.without_memo(),
                base.counters.without_memo(),
                "threads={}",
                threads
            );
            let legacy = pi.run_legacy(opts).expect("inferred legacy runs");
            prop_assert_eq!(legacy.exit_code, base.exit_code, "threads={}", threads);
            prop_assert_eq!(&legacy.output, &base.output, "threads={}", threads);
            prop_assert_eq!(
                legacy.counters.without_memo(),
                base.counters.without_memo(),
                "threads={}",
                threads
            );
            // Memoized inferred run agrees on observables (memo is only
            // legal because inference verified the functions).
            let memo = pi
                .run(InterpOptions { memo: true, ..opts })
                .expect("inferred memoized VM runs");
            prop_assert_eq!(memo.exit_code, base.exit_code, "threads={}", threads);
            prop_assert_eq!(&memo.output, &base.output, "threads={}", threads);
        }
    }

    /// Chain-compiled matmul (purity verified ⇒ memoization active): the
    /// bytecode VM and the resolved engine, each with and without memo,
    /// and the legacy oracle all agree on observable behaviour.
    #[test]
    fn memoized_chain_output_matches_oracle(n in 2usize..10, threads in 1usize..5) {
        let src = apps::matmul::c_source(n);
        let out = purec::compile(&src, ChainOptions::default()).expect("chain");
        let prog = out.program();
        let opts = InterpOptions { threads, ..Default::default() };
        let vm_memo = prog.run(opts).expect("VM memoized run");
        let vm_plain = prog
            .run(InterpOptions { memo: false, ..opts })
            .expect("VM memo-off run");
        let memoized = prog.run_resolved(opts).expect("memoized run");
        let plain = prog
            .run_resolved(InterpOptions { memo: false, ..opts })
            .expect("memo-off run");
        let legacy = prog.run_legacy(opts).expect("oracle run");
        prop_assert_eq!(&vm_memo.output, &legacy.output);
        prop_assert_eq!(vm_memo.exit_code, legacy.exit_code);
        prop_assert_eq!(&memoized.output, &legacy.output);
        prop_assert_eq!(memoized.exit_code, legacy.exit_code);
        // Without memo the VM and the resolved engine are exactly the
        // oracle.
        prop_assert_eq!(vm_plain.counters.without_memo(), legacy.counters);
        prop_assert_eq!(vm_plain.counters.memo_hits, 0);
        prop_assert_eq!(plain.counters.without_memo(), legacy.counters);
        prop_assert_eq!(plain.counters.memo_hits, 0);
    }
}

// ---------------------------------------------------------------------------
// Resource governance (fuel / memory / depth limits)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Resource governance is observably free when the limits never
    /// fire: with fuel, memory and call-depth caps set far above what
    /// the generated program needs, every engine produces bit-identical
    /// exit code, output and executed-op counters (modulo memo
    /// bookkeeping) to its unlimited run — and the tiers still agree
    /// with each other — sequentially and with 4 threads, across all
    /// schedules.
    #[test]
    fn generous_limits_do_not_change_observables(
        n in 4usize..40,
        c1 in -20i64..50,
        c2 in 1i64..40,
        op1 in 0usize..6,
        op2 in 0usize..6,
        sched in 0usize..5,
    ) {
        let src = differential_source(n, c1, c2, op1, op2, sched);
        let parsed = parse(&src);
        prop_assert!(!parsed.diags.has_errors(), "{}", parsed.diags.render_all(&src));
        let prog = Program::new(&parsed.unit);
        for threads in [1usize, 4] {
            let unlimited = InterpOptions { threads, ..Default::default() };
            let governed = InterpOptions {
                fuel: Some(1 << 40),
                max_memory_bytes: Some(1 << 40),
                max_call_depth: Some(1 << 16),
                ..unlimited
            };
            let vm_u = prog.run(unlimited).expect("VM unlimited");
            let vm_g = prog.run(governed).expect("VM governed");
            prop_assert_eq!(vm_g.exit_code, vm_u.exit_code, "threads={}", threads);
            prop_assert_eq!(&vm_g.output, &vm_u.output, "threads={}", threads);
            prop_assert_eq!(
                vm_g.counters.without_memo(),
                vm_u.counters.without_memo(),
                "threads={}",
                threads
            );
            let res_g = prog.run_resolved(governed).expect("resolved governed");
            prop_assert_eq!(res_g.exit_code, vm_u.exit_code, "threads={}", threads);
            prop_assert_eq!(&res_g.output, &vm_u.output, "threads={}", threads);
            prop_assert_eq!(
                res_g.counters.without_memo(),
                vm_u.counters.without_memo(),
                "threads={}",
                threads
            );
            let legacy_g = prog.run_legacy(governed).expect("legacy governed");
            prop_assert_eq!(legacy_g.exit_code, vm_u.exit_code, "threads={}", threads);
            prop_assert_eq!(&legacy_g.output, &vm_u.output, "threads={}", threads);
            prop_assert_eq!(
                legacy_g.counters.without_memo(),
                vm_u.counters.without_memo(),
                "threads={}",
                threads
            );
            // The tier-3.5 optimizer (on by default above) changes none of
            // this: the governed raw-bytecode run agrees with the governed
            // optimized run on every observable.
            let vm_g0 = prog
                .run(InterpOptions { opt_level: 0, ..governed })
                .expect("VM governed, optimizer off");
            prop_assert_eq!(vm_g0.exit_code, vm_u.exit_code, "threads={}", threads);
            prop_assert_eq!(&vm_g0.output, &vm_u.output, "threads={}", threads);
            prop_assert_eq!(
                vm_g0.counters.without_memo(),
                vm_u.counters.without_memo(),
                "threads={}",
                threads
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Tier-3.5 bytecode optimizer differential
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The optimizer is observably the identity: on generated programs
    /// (scalars, floats, arrays, structs, globals, calls, a parallel
    /// region across all schedules) every optimization level produces
    /// the exit code, output and executed-op counters of the raw
    /// bytecode — which in turn match the resolved and legacy oracles —
    /// sequentially and with 4 threads. Only the `insns_folded` /
    /// `insns_fused` / `icache_hits` bookkeeping (zeroed by
    /// `without_memo`) may differ.
    #[test]
    fn optimizer_levels_match_raw_and_oracles(
        n in 4usize..40,
        c1 in -20i64..50,
        c2 in 1i64..40,
        op1 in 0usize..6,
        op2 in 0usize..6,
        sched in 0usize..5,
    ) {
        let src = differential_source(n, c1, c2, op1, op2, sched);
        let parsed = parse(&src);
        prop_assert!(!parsed.diags.has_errors(), "{}", parsed.diags.render_all(&src));
        let prog = Program::new(&parsed.unit);
        for threads in [1usize, 4] {
            let at = |opt_level: u8| InterpOptions {
                threads,
                opt_level,
                ..Default::default()
            };
            let raw = prog.run(at(0)).expect("raw VM runs");
            for level in [1u8, 2] {
                let o = prog.run(at(level)).expect("optimized VM runs");
                prop_assert_eq!(o.exit_code, raw.exit_code, "threads={} level={}", threads, level);
                prop_assert_eq!(&o.output, &raw.output, "threads={} level={}", threads, level);
                prop_assert_eq!(
                    o.counters.without_memo(),
                    raw.counters.without_memo(),
                    "threads={} level={}",
                    threads,
                    level
                );
            }
            prop_assert_eq!(raw.counters.insns_folded, 0);
            prop_assert_eq!(raw.counters.insns_fused, 0);
            let resolved = prog.run_resolved(at(2)).expect("resolved runs");
            prop_assert_eq!(resolved.exit_code, raw.exit_code, "threads={}", threads);
            prop_assert_eq!(&resolved.output, &raw.output, "threads={}", threads);
            prop_assert_eq!(
                resolved.counters.without_memo(),
                raw.counters.without_memo(),
                "threads={}",
                threads
            );
            let legacy = prog.run_legacy(at(2)).expect("legacy runs");
            prop_assert_eq!(legacy.exit_code, raw.exit_code, "threads={}", threads);
            prop_assert_eq!(&legacy.output, &raw.output, "threads={}", threads);
            prop_assert_eq!(
                legacy.counters.without_memo(),
                raw.counters.without_memo(),
                "threads={}",
                threads
            );
        }
    }

    /// Pure-call futures + memoization + inline caches under the
    /// optimizer: optimized and raw runs agree on exit code and output
    /// with spawns active (memo on and off), and with memo off they
    /// agree on executed-op counters exactly, sequentially and with 4
    /// threads across schedules.
    #[test]
    fn optimizer_preserves_spawn_observables(
        depth in 5usize..9,
        m in 4usize..12,
        c in 1i64..40,
        sched in 0usize..5,
    ) {
        let sched = [
            "",
            " schedule(static)",
            " schedule(static,2)",
            " schedule(dynamic,1)",
            " schedule(guided,1)",
        ][sched];
        let src = format!(
            "pure int leaf(int x) {{\n\
                 int acc = 0;\n\
                 for (int i = 0; i < (x % 5) + 2; i++) acc += i * x;\n\
                 return acc % 97;\n\
             }}\n\
             pure int tree(int n, int s) {{\n\
                 if (n < 2) return leaf(n + s);\n\
                 return tree(n - 1, s) + tree(n - 2, s + 1);\n\
             }}\n\
             int main() {{\n\
                 int* out = (int*) malloc({m} * sizeof(int));\n\
             #pragma omp parallel for{sched}\n\
                 for (int i = 0; i < {m}; i++) {{\n\
                     out[i] = tree(4 + i % 3, i) + tree(3 + i % 2, i + 1);\n\
                 }}\n\
                 int acc = 0;\n\
                 for (int i = 0; i < {m}; i++) acc += out[i];\n\
                 acc += tree({depth}, {c});\n\
                 printf(\"acc=%d\\n\", acc);\n\
                 return (acc % 113 + 113) % 113;\n\
             }}"
        );
        let parsed = parse(&src);
        prop_assert!(!parsed.diags.has_errors(), "{}", parsed.diags.render_all(&src));
        let pure_set: std::collections::HashSet<String> =
            ["leaf", "tree"].iter().map(|s| s.to_string()).collect();
        let prog = Program::with_pure_set(&parsed.unit, &pure_set);
        for threads in [1usize, 4] {
            let at = |opt_level: u8, memo: bool| InterpOptions {
                threads,
                opt_level,
                memo,
                ..Default::default()
            };
            let raw = prog.run(at(0, false)).expect("raw VM runs");
            let opt = prog.run(at(2, false)).expect("optimized VM runs");
            prop_assert_eq!(opt.exit_code, raw.exit_code, "threads={}", threads);
            prop_assert_eq!(&opt.output, &raw.output, "threads={}", threads);
            prop_assert_eq!(
                opt.counters.without_memo(),
                raw.counters.without_memo(),
                "threads={}",
                threads
            );
            // Memo on: inline caches may serve hits, but never change
            // what the program computes.
            let raw_memo = prog.run(at(0, true)).expect("raw memoized runs");
            let opt_memo = prog.run(at(2, true)).expect("optimized memoized runs");
            prop_assert_eq!(opt_memo.exit_code, raw.exit_code, "threads={}", threads);
            prop_assert_eq!(&opt_memo.output, &raw.output, "threads={}", threads);
            prop_assert_eq!(raw_memo.counters.icache_hits, 0);
        }
    }

    /// Structured traps survive optimization verbatim: a runtime divide
    /// by zero, a tripped memory cap and a tripped call-depth cap each
    /// produce the same error message and trap kind at every
    /// optimization level.
    #[test]
    fn optimizer_preserves_traps(d in 3i64..40, cap in 1u64..64) {
        let div_src = format!(
            "int main() {{\n\
                 int z = {d};\n\
                 for (int i = 0; i < {d}; i++) z = z - 1;\n\
                 return 100 / z;\n\
             }}"
        );
        let mem_src = "int main() {\n\
                 int* p = (int*) malloc(4096 * sizeof(int));\n\
                 for (int i = 0; i < 4096; i++) p[i] = i;\n\
                 return p[7];\n\
             }"
        .to_string();
        let depth_src = "int down(int n) { if (n == 0) return 0; return down(n - 1) + 1; }\n\
             int main() { return down(4000); }"
            .to_string();
        let cases: [(String, InterpOptions); 3] = [
            (div_src, InterpOptions::default()),
            (
                mem_src,
                InterpOptions {
                    max_memory_bytes: Some(cap),
                    ..Default::default()
                },
            ),
            (
                depth_src,
                InterpOptions {
                    max_call_depth: Some(cap as usize),
                    ..Default::default()
                },
            ),
        ];
        for (src, base) in cases {
            let parsed = parse(&src);
            prop_assert!(!parsed.diags.has_errors(), "{}", parsed.diags.render_all(&src));
            let prog = Program::new(&parsed.unit);
            let raw = prog
                .run(InterpOptions { opt_level: 0, ..base })
                .expect_err("raw run traps");
            for level in [1u8, 2] {
                let e = prog
                    .run(InterpOptions { opt_level: level, ..base })
                    .expect_err("optimized run traps");
                prop_assert_eq!(&e.message, &raw.message, "level={}", level);
                prop_assert_eq!(e.trap, raw.trap, "level={}", level);
            }
        }
    }

    /// Fuel monotonicity: level-1 optimization only ever *removes*
    /// dispatches, so any fuel budget sufficient for the raw bytecode is
    /// sufficient for the optimized bytecode, and a fuel trap at level 1
    /// implies the raw program would have trapped too.
    #[test]
    fn optimized_fuel_trap_implies_raw_trap(
        n in 4usize..32,
        c1 in -20i64..50,
        c2 in 1i64..40,
        fuel in 1u64..4000,
    ) {
        let src = differential_source(n, c1, c2, 0, 1, 0);
        let parsed = parse(&src);
        prop_assert!(!parsed.diags.has_errors(), "{}", parsed.diags.render_all(&src));
        let prog = Program::new(&parsed.unit);
        let at = |opt_level: u8| InterpOptions {
            fuel: Some(fuel),
            opt_level,
            ..Default::default()
        };
        let raw = prog.run(at(0));
        let opt = prog.run(at(1));
        match (&raw, &opt) {
            // Raw finished within budget -> level 1 must finish too.
            (Ok(r), o) => {
                let o = o.as_ref().expect("level 1 burns no more fuel than raw");
                prop_assert_eq!(o.exit_code, r.exit_code);
                prop_assert_eq!(&o.output, &r.output);
            }
            // Level 1 trapped on fuel -> so must raw.
            (Err(r), Err(o)) => {
                prop_assert_eq!(r.trap, Some(Trap::FuelExhausted));
                prop_assert_eq!(o.trap, Some(Trap::FuelExhausted));
            }
            (Err(_), Ok(_)) => {} // optimization saved enough fuel: fine.
        }
    }
}

// ---------------------------------------------------------------------------
// Observability: tracing must not change observables
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The tracing layer is observably free: with a [`cinterp::TraceSession`]
    /// live (every probe site armed, per-thread buffers recording), every
    /// engine produces bit-identical exit code, output and executed-op
    /// counters (modulo scheduling-dependent bookkeeping, zeroed by
    /// `without_memo`) to its untraced run — sequentially and with 4
    /// threads, across generated programs with parallel regions.
    #[test]
    fn tracing_does_not_change_observables(
        n in 4usize..40,
        c1 in -20i64..50,
        c2 in 1i64..40,
        op1 in 0usize..6,
        op2 in 0usize..6,
        sched in 0usize..5,
    ) {
        let src = differential_source(n, c1, c2, op1, op2, sched);
        let parsed = parse(&src);
        prop_assert!(!parsed.diags.has_errors(), "{}", parsed.diags.render_all(&src));
        let prog = Program::new(&parsed.unit);
        for threads in [1usize, 4] {
            let opts = InterpOptions { threads, ..Default::default() };
            let off_vm = prog.run(opts).expect("VM untraced");
            let off_res = prog.run_resolved(opts).expect("resolved untraced");
            let off_legacy = prog.run_legacy(opts).expect("legacy untraced");

            let session = cinterp::TraceSession::start();
            let on_vm = prog.run(opts).expect("VM traced");
            let on_res = prog.run_resolved(opts).expect("resolved traced");
            let on_legacy = prog.run_legacy(opts).expect("legacy traced");
            // (Structural validation of the exported JSON lives in the
            // fault-hammer suite, which controls test concurrency; other
            // tests of this binary may hold spans open while we drain.)
            let _ = session.finish();

            for (on, off, tier) in [
                (&on_vm, &off_vm, "vm"),
                (&on_res, &off_res, "resolved"),
                (&on_legacy, &off_legacy, "legacy"),
            ] {
                prop_assert_eq!(
                    on.exit_code, off.exit_code,
                    "threads={} tier={}", threads, tier
                );
                prop_assert_eq!(&on.output, &off.output, "threads={} tier={}", threads, tier);
                prop_assert_eq!(
                    on.counters.without_memo(),
                    off.counters.without_memo(),
                    "threads={} tier={}",
                    threads,
                    tier
                );
            }
        }
    }
}
