//! Conformance suite: every listing of the paper (Sect. 3) as an
//! executable specification of the `pure` extension, run through the full
//! chain. Listing numbers refer to the IJPP 2020 version.

use cfront::diag::Code;
use pure_c::prelude::*;

fn accepts(src: &str) {
    let r = run_pc_cc(src, PcCcOptions::default());
    assert!(
        r.is_ok(),
        "expected ACCEPT:\n{src}\n{:?}",
        r.err().map(|d| d.render_all(src))
    );
}

fn rejects_with(src: &str, code: Code) {
    let r = run_pc_cc(src, PcCcOptions::default());
    match r {
        Ok(_) => panic!("expected REJECT ({code:?}):\n{src}"),
        Err(d) => assert!(
            d.has_code(code),
            "wrong code, wanted {code:?}:\n{}",
            d.render_all(src)
        ),
    }
}

// ---------------------------------------------------------------------------
// Listing 1 — declaration syntax
// ---------------------------------------------------------------------------

#[test]
fn listing1_declaration_parses_with_both_pure_positions() {
    let r = parse("pure int* func(pure int* p1, int p2);");
    assert!(!r.diags.has_errors());
    let f = r.unit.find_function("func").unwrap();
    assert!(f.is_pure, "first pure labels the function");
    assert!(f.params[0].ty.pure_qual, "second pure labels the pointer");
    assert!(!f.params[1].ty.pure_qual);
}

// ---------------------------------------------------------------------------
// Listing 2 — valid and invalid operations in pure functions
// ---------------------------------------------------------------------------

const LISTING2_VALID: &str = "
int* globalPtr;
void func1();
pure int* func2(pure int* p1, int p2) {
    int a = p2;
    int b = a + 42;
    int* c = (int*) malloc(3 * sizeof(int));
    pure int* ptr = p1;
    pure int* extPtr2;
    extPtr2 = (pure int*) globalPtr;
    pure int* extPtr3;
    extPtr3 = (pure int*) func2(p1, p2);
    return c;
}
int main() { return 0; }
";

#[test]
fn listing2_valid_operations_accepted() {
    accepts(LISTING2_VALID);
}

#[test]
fn listing2_line11_external_ptr_to_plain_local_rejected() {
    rejects_with(
        "int* globalPtr;
pure int f(int x) { int* extPtr1 = globalPtr; return x; }
int main() { return 0; }",
        Code::PureAssignsExternalPtrWithoutCast,
    );
}

#[test]
fn listing2_line14_impure_call_rejected() {
    rejects_with(
        "void func1();
pure int f(int x) { func1(); return x; }
int main() { return 0; }",
        Code::PureCallsImpure,
    );
}

#[test]
fn listing2_self_call_allowed_via_hashset() {
    // func2 calls itself — the hashset registration makes this legal.
    accepts(
        "pure int fact(int n) { if (n < 2) return 1; return n * fact(n - 1); }
int main() { return fact(5); }",
    );
}

// ---------------------------------------------------------------------------
// Listing 3 — external pointer assignment discipline
// ---------------------------------------------------------------------------

#[test]
fn listing3_pure_cast_binding_accepted() {
    accepts(
        "float* external;
pure float f(int i) {
    pure float* internal = (pure float*) external;
    return internal[i];
}
int main() { return 0; }",
    );
}

// ---------------------------------------------------------------------------
// Listing 4 — valid and invalid assignments
// ---------------------------------------------------------------------------

#[test]
fn listing4_local_struct_write_valid() {
    accepts(
        "struct datatype { int storage; };
pure int f(int data) {
    struct datatype intStruct;
    intStruct.storage = data;
    return intStruct.storage;
}
int main() { return 0; }",
    );
}

#[test]
fn listing4_plain_reassignment_rejected() {
    rejects_with(
        "int* extPtr;
pure void f() {
    pure int* intPtr = (pure int*) extPtr;
    intPtr = extPtr;
}
int main() { return 0; }",
        Code::PurePointerReassigned,
    );
}

// ---------------------------------------------------------------------------
// Listing 5 / Listing 6 — caller-side safety and its documented limit
// ---------------------------------------------------------------------------

const LISTING5: &str = "
pure int func(pure int* a, int idx) { return a[idx - 1] + a[idx]; }
int main() {
    int array[100];
    for (int i = 1; i < 100; i++)
        array[i] = func((pure int*)array, i);
    return 0;
}
";

#[test]
fn listing5_feedback_rejected() {
    rejects_with(LISTING5, Code::PureParamWrittenInLoop);
}

#[test]
fn listing6_alias_deceives_static_check_but_dynamic_check_catches_it() {
    let listing6 = "
pure int func(pure int* a, int idx) { return a[idx - 1] + a[idx]; }
int main() {
    int array[100];
    int* alias = array;
    array[0] = 1;
    for (int i = 1; i < 100; i++)
        alias[i] = func((pure int*)array, i);
    return array[99];
}
";
    // Statically accepted — the paper's documented limitation.
    let out = run_pc_cc(listing6, PcCcOptions::default()).expect("accepted");
    assert!(out.scops_marked >= 1, "the deceiving loop gets marked");

    // But our dynamic race checker refuses to run it in parallel.
    let err = purec::compile_and_run(
        listing6,
        ChainOptions::default(),
        InterpOptions {
            threads: 4,
            race_check: true,
            ..Default::default()
        },
    );
    match err {
        Err(purec::ChainError::Runtime(e)) => {
            assert!(e.message.contains("race"), "{e}");
        }
        other => panic!("expected a detected race, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Listings 7/8 — the matmul transformation
// ---------------------------------------------------------------------------

#[test]
fn listing7_to_listing8_shape() {
    let src = "
float **A, **Bt, **C;
pure float mult(float a, float b) {
    return a * b;
}
pure float dot(pure float* a, pure float* b, int size) {
    float res = 0.0f;
    for (int i = 0; i < size; ++i)
        res += mult(a[i], b[i]);
    return res;
}
int main(int argc, char** argv) {
    for (int i = 0; i < 64; ++i)
        for (int j = 0; j < 64; ++j)
            C[i][j] = dot((pure float*)A[i], (pure float*)Bt[j], 64);
    return 0;
}
";
    let out = compile(src, ChainOptions::default()).expect("chain");
    // Listing 8's signature shapes.
    assert!(
        out.text.contains("float mult(float a, float b)"),
        "{}",
        out.text
    );
    assert!(
        out.text
            .contains("float dot(const float* a, const float* b, int size)"),
        "{}",
        out.text
    );
    // Parallel pragma with privatized inner iterator, renamed t1/t2.
    assert!(
        out.text.contains("#pragma omp parallel for private(t2)"),
        "{}",
        out.text
    );
    // The store keeps Listing 8's call, with the invariant row pointer
    // strength-reduced out of the inner loop by the backend.
    assert!(
        out.text.contains("float* __pc_row1 = C[t1];"),
        "{}",
        out.text
    );
    assert!(
        out.text
            .contains("__pc_row1[t2] = dot((const float*)A[t1], (const float*)Bt[t2], 64);"),
        "{}",
        out.text
    );
    // No extension syntax leaks into the final program.
    assert!(!out.text.contains("pure"));
    assert!(!out.text.contains("#pragma scop"));
}

// ---------------------------------------------------------------------------
// Sect. 3.2 — free() discipline and malloc admission
// ---------------------------------------------------------------------------

#[test]
fn free_of_non_local_memory_rejected() {
    rejects_with(
        "pure void f(int* p) { free(p); }\nint main() { return 0; }",
        Code::PureFreesForeign,
    );
    rejects_with(
        "int* g;\npure void f() { free(g); }\nint main() { return 0; }",
        Code::PureFreesForeign,
    );
}

#[test]
fn free_of_locally_malloced_memory_accepted_and_runs() {
    let src = "
pure int sum_squares(int n) {
    int* buf = (int*) malloc(n * sizeof(int));
    for (int i = 0; i < n; i++) buf[i] = i * i;
    int total = 0;
    for (int i = 0; i < n; i++) total += buf[i];
    free(buf);
    return total;
}
int main() { return sum_squares(10); }
";
    accepts(src);
    let (_, run) = purec::compile_and_run(src, ChainOptions::default(), InterpOptions::default())
        .expect("runs");
    assert_eq!(run.exit_code, 285);
}

#[test]
fn removing_pure_keyword_does_not_change_results() {
    // Sect. 3.2: "Removing it has no effect on the results of a program
    // other than that the program might not be as parallelizable."
    let with_pure = "
pure int twice(int x) { return 2 * x; }
int main() {
    int* a = (int*) malloc(32 * sizeof(int));
    for (int i = 0; i < 32; i++) a[i] = twice(i);
    int acc = 0;
    for (int i = 0; i < 32; i++) acc += a[i];
    return acc % 128;
}
";
    let without_pure = with_pure.replace("pure ", "");
    let (out_with, run_with) =
        purec::compile_and_run(with_pure, ChainOptions::default(), InterpOptions::default())
            .expect("with pure");
    let (out_without, run_without) = purec::compile_and_run(
        &without_pure,
        ChainOptions::default(),
        InterpOptions::default(),
    )
    .expect("without pure");
    assert_eq!(run_with.exit_code, run_without.exit_code);
    // With pure: loops parallelized; without: fewer or none.
    assert!(out_with.regions_parallelized >= out_without.regions_parallelized);
}
