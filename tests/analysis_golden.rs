//! Golden tests for `purec check` over the `examples/analysis/` corpus.
//!
//! Every corpus file annotates the lines it expects diagnostics on with
//! `// expect: <Code>`; the runner asserts the checker produces *exactly*
//! those (code, line) pairs — no false positives, no missed findings —
//! and pins each new stable code to a concrete program shape.

use analysis::LoopVerdict;
use cfront::span::LineMap;
use purec::check::{check_source, CheckOptions};
use std::collections::BTreeMap;
use std::path::Path;

/// Parse `// expect: Code` annotations into a (line, code) multiset.
fn expected_codes(source: &str) -> BTreeMap<(usize, String), usize> {
    let mut out = BTreeMap::new();
    for (idx, line) in source.lines().enumerate() {
        if let Some(pos) = line.find("// expect:") {
            let code = line[pos + "// expect:".len()..].trim().to_string();
            assert!(
                !code.is_empty(),
                "empty expect annotation on line {}",
                idx + 1
            );
            *out.entry((idx + 1, code)).or_insert(0) += 1;
        }
    }
    out
}

fn actual_codes(outcome: &purec::check::CheckOutcome) -> BTreeMap<(usize, String), usize> {
    let map = LineMap::new(&outcome.text);
    let mut out = BTreeMap::new();
    for d in outcome.diags.items() {
        let line = map.line_col(d.span.start).line as usize;
        *out.entry((line, d.code.to_string())).or_insert(0) += 1;
    }
    out
}

fn run_corpus_file(name: &str, infer_pure: bool) -> purec::check::CheckOutcome {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("examples/analysis")
        .join(name);
    let source = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {name}: {e}"));
    let outcome = check_source(
        &source,
        &CheckOptions {
            infer_pure,
            ..Default::default()
        },
    );
    assert_eq!(
        expected_codes(&source),
        actual_codes(&outcome),
        "diagnostic mismatch for {name}; rendered:\n{}",
        outcome.render()
    );
    outcome
}

#[test]
fn racy_loops_are_rejected_with_spanned_errors() {
    let outcome = run_corpus_file("racy.c", false);
    assert!(outcome.has_errors(), "racy.c must exit non-zero");
    assert_eq!(outcome.diags.error_count(), 2);
}

#[test]
fn reduction_loop_warns_but_passes() {
    let outcome = run_corpus_file("reduction.c", false);
    assert!(!outcome.has_errors(), "reductions are warnings, not errors");
}

#[test]
fn inferable_and_blocked_functions_are_noted() {
    let outcome = run_corpus_file("infer_pure.c", true);
    assert!(!outcome.has_errors());
    assert_eq!(outcome.inferred_pure, vec!["square".to_string()]);
    // Without --infer-pure the same file is silent.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/analysis/infer_pure.c");
    let source = std::fs::read_to_string(path).unwrap();
    let quiet = check_source(&source, &CheckOptions::default());
    assert!(quiet.diags.is_empty(), "{}", quiet.render());
}

#[test]
fn dataflow_lints_fire_with_exact_spans() {
    let outcome = run_corpus_file("uninit.c", false);
    assert!(!outcome.has_errors(), "lints are warnings");
    assert_eq!(outcome.diags.len(), 3);
}

#[test]
fn clean_file_produces_zero_diagnostics() {
    let outcome = run_corpus_file("clean.c", false);
    assert!(outcome.diags.is_empty(), "{}", outcome.render());
}

#[test]
fn clean_parallel_loop_gets_independent_verdict() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/analysis/clean.c");
    let source = std::fs::read_to_string(path).unwrap();
    let parsed = cfront::parser::parse(&source);
    assert!(!parsed.diags.has_errors());
    let report = analysis::analyze_unit(
        &parsed.unit,
        &purec_core::PureSet::seeded(),
        &analysis::AnalysisOptions::default(),
    );
    assert_eq!(report.loops.len(), 1);
    assert_eq!(report.loops[0].verdict, LoopVerdict::Independent);
}

#[test]
fn racy_corpus_verdicts_are_racy() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/analysis/racy.c");
    let source = std::fs::read_to_string(path).unwrap();
    let parsed = cfront::parser::parse(&source);
    let report = analysis::analyze_unit(
        &parsed.unit,
        &purec_core::PureSet::seeded(),
        &analysis::AnalysisOptions::default(),
    );
    assert_eq!(report.loops.len(), 2);
    assert!(report.loops.iter().all(|l| l.verdict == LoopVerdict::Racy));
}

#[test]
fn json_output_is_one_object_per_line_with_spans() {
    let outcome = run_corpus_file("uninit.c", false);
    let json = outcome.render_json();
    let lines: Vec<&str> = json.lines().collect();
    assert_eq!(lines.len(), 3);
    for line in lines {
        let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON");
        let obj = v.as_object().expect("object");
        for key in ["severity", "code", "message", "line", "col", "start", "end"] {
            assert!(
                obj.iter().any(|(k, _)| k.as_str() == key),
                "missing key {key} in {line}"
            );
        }
    }
}

/// A/B proof that an `Independent` verdict actually skips the O(n)
/// dynamic race check: the chain-compiled program (verdicts wired in)
/// must count static skips and zero dynamic iterations, while the same
/// unit rebuilt *without* verdicts must fall back to the dynamic check —
/// with bit-identical output either way.
#[test]
fn independent_verdict_skips_dynamic_race_check() {
    for src in [apps::matmul::c_source(16), apps::heat::c_source(16, 2)] {
        let opts = cinterp::InterpOptions {
            threads: 4,
            race_check: true,
            ..Default::default()
        };
        let (out, run) =
            purec::compile_and_run(&src, purec::ChainOptions::default(), opts).expect("chain runs");
        assert!(
            out.verdicts
                .values()
                .any(|v| *v == cinterp::RaceVerdict::Independent),
            "no Independent verdict: {:?}",
            out.verdicts
        );
        assert!(run.counters.race_static_skips > 0, "no static skip counted");
        assert_eq!(run.counters.race_dyn_iters, 0, "dynamic check still ran");
        // B side: same unit, no verdicts -> every region is Unknown and
        // the dynamic pre-pass runs.
        let prog = cinterp::Program::with_pure_set(&out.unit, &out.verified_pure_set());
        let run_b = prog.run(opts).expect("verdict-free run");
        assert_eq!(run_b.counters.race_static_skips, 0);
        assert!(
            run_b.counters.race_dyn_iters > 0,
            "dynamic check skipped without a verdict"
        );
        assert_eq!(run.output, run_b.output);
        assert_eq!(run.exit_code, run_b.exit_code);
    }
}

/// Zero false positives over every non-corpus example and demo source:
/// the always-on passes must stay silent on code that is known-good.
#[test]
fn demo_sources_check_clean_of_errors() {
    for (name, src) in [
        ("matmul", apps::matmul::c_source(8)),
        ("heat", apps::heat::c_source(8, 2)),
        ("satellite", apps::satellite::c_source(4, 4)),
        ("lama", apps::lama::c_source(16, 3)),
        (
            "spin",
            std::fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/spin.c"))
                .unwrap(),
        ),
    ] {
        let outcome = check_source(&src, &CheckOptions::default());
        assert!(
            !outcome.has_errors(),
            "false positive on {name}:\n{}",
            outcome.render()
        );
    }
}
