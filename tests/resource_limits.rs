//! Resource-governance trap paths: fuel exhaustion, memory caps and
//! call-depth limits must convert runaway executions into structured
//! [`cinterp::Trap`]s on every engine — including from inside parallel
//! regions and with pure-call futures in flight — and must leave the
//! process-wide worker pool fully reusable afterwards.

use cinterp::Trap;
use pure_c::prelude::*;

fn program(src: &str) -> Program {
    let parsed = parse(src);
    assert!(
        !parsed.diags.has_errors(),
        "{}",
        parsed.diags.render_all(src)
    );
    Program::new(&parsed.unit)
}

const INFINITE_LOOP: &str = "int main() { int i = 0; while (1) { i = i + 1; } return i; }";

const ALLOC_BOMB: &str = "\
int main() {
    int acc = 0;
    for (int i = 0; i < 1000000; i++) {
        int* p = (int*) malloc(4096 * sizeof(int));
        p[0] = i;
        acc += p[0];
    }
    return acc % 100;
}";

const DEEP_RECURSION: &str = "\
int rec(int n) {
    if (n <= 0) return 0;
    return 1 + rec(n - 1);
}
int main() { return rec(1000000); }";

/// Run `src` on all three engines with `opts`, asserting each traps with
/// `want` and mentions `msg_frag` in its error message.
fn assert_traps_everywhere(src: &str, opts: InterpOptions, want: Trap, msg_frag: &str) {
    let prog = program(src);
    for (name, res) in [
        ("vm", prog.run(opts)),
        ("resolved", prog.run_resolved(opts)),
        ("legacy", prog.run_legacy(opts)),
    ] {
        let err = res.expect_err("the limit must fire");
        assert_eq!(err.trap, Some(want), "{name}: wrong trap: {err}");
        assert!(
            err.to_string().contains(msg_frag),
            "{name}: error message {err:?} lacks {msg_frag:?}"
        );
    }
}

#[test]
fn infinite_loop_traps_on_fuel_in_every_engine() {
    let opts = InterpOptions {
        fuel: Some(10_000),
        ..Default::default()
    };
    assert_traps_everywhere(INFINITE_LOOP, opts, Trap::FuelExhausted, "fuel exhausted");
}

/// The meter brackets real work: a 20 000-iteration loop traps under a
/// small budget and completes untouched under a generous one, with the
/// same observables as an unlimited run.
#[test]
fn fuel_threshold_brackets_loop_cost() {
    let src = "\
int main() {
    int acc = 0;
    for (int i = 0; i < 20000; i++) acc += i % 7;
    printf(\"acc=%d\\n\", acc);
    return acc % 113;
}";
    let prog = program(src);
    let starved = prog
        .run(InterpOptions {
            fuel: Some(1_000),
            ..Default::default()
        })
        .expect_err("1k fuel cannot cover 20k iterations");
    assert_eq!(starved.trap, Some(Trap::FuelExhausted));
    let unlimited = prog.run(InterpOptions::default()).expect("unlimited run");
    let generous = prog
        .run(InterpOptions {
            fuel: Some(100_000_000),
            ..Default::default()
        })
        .expect("generous fuel covers the loop");
    assert_eq!(generous.exit_code, unlimited.exit_code);
    assert_eq!(generous.output, unlimited.output);
    assert_eq!(
        generous.counters.without_memo(),
        unlimited.counters.without_memo()
    );
}

#[test]
fn alloc_bomb_traps_on_memory_limit_in_every_engine() {
    let opts = InterpOptions {
        max_memory_bytes: Some(1 << 20),
        ..Default::default()
    };
    assert_traps_everywhere(ALLOC_BOMB, opts, Trap::MemoryLimit, "memory limit exceeded");
}

/// A would-be 1M-deep recursion becomes a clean `DepthLimit` trap — not
/// a Rust stack overflow aborting the process. The tree-walking engines
/// recurse on the Rust stack (double-digit KB per interpreted call in
/// debug builds), so the cap test runs on a thread with a generous
/// native stack: the trap must come from the governor, not from the
/// host stack giving out first.
#[test]
fn deep_recursion_traps_on_depth_limit_in_every_engine() {
    std::thread::Builder::new()
        .stack_size(256 << 20)
        .spawn(|| {
            let opts = InterpOptions {
                max_call_depth: Some(2_000),
                ..Default::default()
            };
            assert_traps_everywhere(
                DEEP_RECURSION,
                opts,
                Trap::DepthLimit,
                "call depth limit exceeded",
            );
        })
        .expect("spawn big-stack thread")
        .join()
        .expect("depth-limit thread must not panic");
}

/// Without an explicit cap the legacy 512-frame guard still fires with
/// its historical message — and no trap classification.
#[test]
fn default_depth_guard_is_unchanged() {
    std::thread::Builder::new()
        .stack_size(256 << 20)
        .spawn(|| {
            let prog = program(DEEP_RECURSION);
            for res in [
                prog.run(InterpOptions::default()),
                prog.run_resolved(InterpOptions::default()),
                prog.run_legacy(InterpOptions::default()),
            ] {
                let err = res.expect_err("the default guard must fire");
                assert_eq!(err.trap, None, "default guard is not a governance trap");
                assert!(err.to_string().contains("call stack overflow"), "{err}");
            }
        })
        .expect("spawn big-stack thread")
        .join()
        .expect("default-guard thread must not panic");
}

const PARALLEL_SPIN: &str = "\
int main() {
    int n = 8;
    int* a = (int*) malloc(8 * sizeof(int));
#pragma omp parallel for schedule(dynamic,1)
    for (int i = 0; i < n; i++) {
        int acc = 0;
        for (int j = 0; j < 100000; j++) acc += j % 5;
        a[i] = acc;
    }
    return a[0] % 100;
}";

const PARALLEL_CLEAN: &str = "\
int main() {
    int n = 16;
    int* a = (int*) malloc(16 * sizeof(int));
#pragma omp parallel for schedule(static,2)
    for (int i = 0; i < n; i++) a[i] = (i + 1) * 3;
    int acc = 0;
    for (int i = 0; i < n; i++) acc += a[i];
    printf(\"acc=%d\\n\", acc);
    return acc % 113;
}";

/// A trap raised inside a parallel region unwinds through the region
/// join, cancels the sibling iterations, and leaves the process-wide
/// pool reusable: a second program runs on the same pool in-process.
#[test]
fn trap_in_parallel_region_leaves_pool_reusable() {
    let spin = program(PARALLEL_SPIN);
    let clean = program(PARALLEL_CLEAN);
    for _ in 0..3 {
        for (name, res) in [
            (
                "vm",
                spin.run(InterpOptions {
                    threads: 4,
                    fuel: Some(20_000),
                    ..Default::default()
                }),
            ),
            (
                "resolved",
                spin.run_resolved(InterpOptions {
                    threads: 4,
                    fuel: Some(20_000),
                    ..Default::default()
                }),
            ),
        ] {
            let err = res.expect_err("the region must run out of fuel");
            assert_eq!(err.trap, Some(Trap::FuelExhausted), "{name}: {err}");
        }
        // Same process-wide pool, next program: must run to completion.
        let ok = clean
            .run(InterpOptions {
                threads: 4,
                ..Default::default()
            })
            .expect("pool must be reusable after a trap");
        assert_eq!(ok.output, "acc=408\n");
    }
}

/// Memory traps inside a parallel region behave the same way.
#[test]
fn memory_trap_in_parallel_region_leaves_pool_reusable() {
    let src = "\
int main() {
    int n = 8;
    int* out = (int*) malloc(8 * sizeof(int));
#pragma omp parallel for schedule(dynamic,1)
    for (int i = 0; i < n; i++) {
        int* p = (int*) malloc(65536 * sizeof(int));
        p[0] = i;
        out[i] = p[0];
    }
    return out[0];
}";
    let bomb = program(src);
    let err = bomb
        .run(InterpOptions {
            threads: 4,
            max_memory_bytes: Some(1 << 19),
            ..Default::default()
        })
        .expect_err("the region allocations must exceed the cap");
    assert_eq!(err.trap, Some(Trap::MemoryLimit), "{err}");
    let clean = program(PARALLEL_CLEAN);
    let ok = clean
        .run(InterpOptions {
            threads: 4,
            ..Default::default()
        })
        .expect("pool must be reusable after a memory trap");
    assert_eq!(ok.output, "acc=408\n");
}

/// A fuel trap with pure-call futures pending (spawned, not yet awaited)
/// must cancel or drain them and leave the pool reusable.
#[test]
fn trap_with_pending_futures_leaves_pool_reusable() {
    let src = "\
pure int leaf(int x) {
    int acc = 0;
    for (int i = 0; i < (x % 5) + 2; i++) acc += i * x;
    return acc % 97;
}
pure int tree(int n, int s) {
    if (n < 2) return leaf(n + s);
    int a = tree(n - 1, s);
    int b = tree(n - 2, s + 1);
    return a + b;
}
int main() {
    int acc = 0;
    for (int r = 0; r < 50; r++) {
        int p = tree(12, r);
        int q = tree(11, r + 1);
        acc += p - q;
    }
    printf(\"acc=%d\\n\", acc);
    return (acc % 113 + 113) % 113;
}";
    let parsed = parse(src);
    assert!(!parsed.diags.has_errors());
    let pure_set: std::collections::HashSet<String> =
        ["leaf", "tree"].iter().map(|s| s.to_string()).collect();
    let prog = cinterp::Program::with_pure_set(&parsed.unit, &pure_set);
    assert!(
        !prog.resolved().spawn_sites().is_empty(),
        "the program must actually spawn futures"
    );
    let reference = prog
        .run(InterpOptions {
            threads: 4,
            futures: true,
            memo: false,
            ..Default::default()
        })
        .expect("unlimited reference run");
    for engine_run in [Program::run, Program::run_resolved] {
        let err = engine_run(
            &prog,
            InterpOptions {
                threads: 4,
                futures: true,
                memo: false,
                fuel: Some(5_000),
                ..Default::default()
            },
        )
        .expect_err("the futures workload must exhaust 5k fuel");
        assert_eq!(err.trap, Some(Trap::FuelExhausted), "{err}");
        // The pool survives with no stuck tasks: the same program runs
        // clean immediately afterwards.
        let ok = engine_run(
            &prog,
            InterpOptions {
                threads: 4,
                futures: true,
                memo: false,
                ..Default::default()
            },
        )
        .expect("pool must be reusable after a trap with futures in flight");
        assert_eq!(ok.output, reference.output);
        assert_eq!(ok.exit_code, reference.exit_code);
    }
}

/// Fuel accounting is engine-agnostic enough that all three tiers trap
/// (rather than complete) under the same starved budget, and none of
/// them classifies a *successful* run as trapped.
#[test]
fn traps_do_not_leak_into_successful_runs() {
    let prog = program(PARALLEL_CLEAN);
    let opts = InterpOptions {
        threads: 2,
        fuel: Some(100_000_000),
        max_memory_bytes: Some(1 << 30),
        max_call_depth: Some(10_000),
        ..Default::default()
    };
    let vm = prog.run(opts).expect("governed run succeeds");
    let resolved = prog.run_resolved(opts).expect("governed resolved run");
    let legacy = prog.run_legacy(opts).expect("governed legacy run");
    assert_eq!(vm.output, "acc=408\n");
    assert_eq!(resolved.output, vm.output);
    assert_eq!(legacy.output, vm.output);
    assert_eq!(vm.exit_code, resolved.exit_code);
    assert_eq!(vm.exit_code, legacy.exit_code);
}
