//! Integration tests spanning the whole workspace: for every evaluation
//! application, the transformed program must compute exactly what the
//! original computes — sequentially and on the parallel runtime — and the
//! interpreter output must match the native Rust reference.

use pure_c::prelude::*;
use purec_core::finish;
use std::collections::HashMap;

/// Interpret the ORIGINAL program (PC-CC lowering only, no polyhedral
/// transformation, no parallel pragmas).
fn run_original(src: &str) -> String {
    let out = run_pc_cc(src, PcCcOptions::default()).expect("PC-CC");
    let finished = finish(out.unit, &out.subst, &HashMap::new(), &out.system_includes);
    let program = Program::new(&finished.unit);
    program
        .run(InterpOptions::default())
        .expect("original runs")
        .output
}

/// Interpret the fully transformed program with `threads` workers.
fn run_transformed(src: &str, threads: usize) -> String {
    let (_, result) = compile_and_run(
        src,
        ChainOptions::default(),
        InterpOptions {
            threads,
            ..Default::default()
        },
    )
    .expect("transformed runs");
    result.output
}

#[test]
fn matmul_original_equals_transformed_across_threads() {
    let src = apps::matmul::c_source(16);
    let original = run_original(&src);
    assert_eq!(
        original,
        format!("checksum={:.1}\n", apps::matmul::c_source_checksum(16)),
        "interpreter must match the native Rust reference"
    );
    for threads in [1, 2, 8] {
        assert_eq!(
            run_transformed(&src, threads),
            original,
            "threads={threads}"
        );
    }
}

#[test]
fn heat_original_equals_transformed() {
    let src = apps::heat::c_source(14, 4);
    let original = run_original(&src);
    for threads in [1, 4] {
        assert_eq!(
            run_transformed(&src, threads),
            original,
            "threads={threads}"
        );
    }
}

#[test]
fn satellite_original_equals_transformed() {
    let src = apps::satellite::c_source(8, 8);
    let original = run_original(&src);
    for threads in [1, 4] {
        assert_eq!(
            run_transformed(&src, threads),
            original,
            "threads={threads}"
        );
    }
}

#[test]
fn lama_original_equals_transformed() {
    let src = apps::lama::c_source(64, 7);
    let original = run_original(&src);
    for threads in [1, 8] {
        assert_eq!(
            run_transformed(&src, threads),
            original,
            "threads={threads}"
        );
    }
}

#[test]
fn transformed_output_is_standard_c_for_all_apps() {
    for src in [
        apps::matmul::c_source(12),
        apps::heat::c_source(10, 2),
        apps::satellite::c_source(6, 6),
        apps::lama::c_source(32, 5),
    ] {
        let out = compile(&src, ChainOptions::default()).expect("chain");
        assert!(!out.text.contains("pure "), "{}", out.text);
        assert!(!out.text.contains("tmpConst"), "{}", out.text);
        assert!(
            out.text.contains("#pragma omp parallel for"),
            "{}",
            out.text
        );
        let reparsed = parse(&out.text);
        assert!(!reparsed.diags.has_errors());
        // No `pure` anywhere in the reparsed unit.
        for f in reparsed.unit.functions() {
            assert!(!f.is_pure);
        }
    }
}

#[test]
fn race_check_passes_for_all_transformed_apps() {
    for src in [
        apps::matmul::c_source(8),
        apps::heat::c_source(8, 2),
        apps::satellite::c_source(4, 4),
        apps::lama::c_source(24, 5),
    ] {
        let result = compile_and_run(
            &src,
            ChainOptions::default(),
            InterpOptions {
                threads: 4,
                race_check: true,
                ..Default::default()
            },
        );
        assert!(
            result.is_ok(),
            "race check must pass: {:?}",
            result.err().map(|e| e.to_string())
        );
    }
}

#[test]
fn sica_mode_preserves_semantics() {
    let src = apps::matmul::c_source(20);
    let opts = ChainOptions {
        pc_cc: PcCcOptions::default(),
        polycc: PolyccOptions {
            codegen: CodegenOptions::default(),
            sica: Some(SicaParams::default()),
            ..Default::default()
        },
        ..Default::default()
    };
    let (out, run) = purec::compile_and_run(
        &src,
        opts,
        InterpOptions {
            threads: 4,
            ..Default::default()
        },
    )
    .expect("sica chain runs");
    assert!(out.regions_tiled >= 1);
    assert_eq!(
        run.output,
        format!("checksum={:.1}\n", apps::matmul::c_source_checksum(20))
    );
}

#[test]
fn instruction_counters_show_call_overhead() {
    // The interpreted analogue of the paper's 87.8G vs 47.5G comparison:
    // the pure (extracted-call) heat program executes more calls than an
    // inlined-by-hand version.
    let n = 12;
    let extracted = apps::heat::c_source(n, 2);
    let (_, with_calls) = compile_and_run(
        &extracted,
        ChainOptions::default(),
        InterpOptions::default(),
    )
    .expect("runs");
    // Inlined variant: the stencil expression written out in the loop.
    let inlined = format!(
        "float **cur, **nxt;\n\
         int main() {{\n\
             cur = (float**) malloc({n} * sizeof(float*));\n\
             nxt = (float**) malloc({n} * sizeof(float*));\n\
             for (int i = 0; i < {n}; i++) {{\n\
                 cur[i] = (float*) malloc({n} * sizeof(float));\n\
                 nxt[i] = (float*) malloc({n} * sizeof(float));\n\
                 for (int j = 0; j < {n}; j++) {{ cur[i][j] = 0.0f; nxt[i][j] = 0.0f; }}\n\
             }}\n\
             cur[{mid}][0] = 100.0f;\n\
             for (int t = 0; t < 2; t++) {{\n\
                 for (int i = 1; i < {nm1}; i++)\n\
                     for (int j = 1; j < {nm1}; j++)\n\
                         nxt[i][j] = 0.25f * (cur[i - 1][j] + cur[i + 1][j] + cur[i][j - 1] + cur[i][j + 1]);\n\
                 for (int i = 1; i < {nm1}; i++)\n\
                     for (int j = 1; j < {nm1}; j++)\n\
                         cur[i][j] = nxt[i][j];\n\
                 cur[{mid}][0] = 100.0f;\n\
             }}\n\
             return 0;\n\
         }}\n",
        mid = n / 2,
        nm1 = n - 1,
    );
    let (_, inl) = compile_and_run(&inlined, ChainOptions::default(), InterpOptions::default())
        .expect("inlined runs");
    assert!(
        with_calls.counters.calls > inl.counters.calls + 100,
        "extracted version must execute more calls: {} vs {}",
        with_calls.counters.calls,
        inl.counters.calls
    );
}

#[test]
fn pipeline_rejects_each_purity_violation_class() {
    use cfront::diag::Code;
    let cases: &[(&str, Code)] = &[
        (
            "int g;\npure int f(int x) { g = x; return x; }\nint main() { return 0; }",
            Code::PureGlobalWrite,
        ),
        (
            "void imp();\npure int f(int x) { imp(); return x; }\nint main() { return 0; }",
            Code::PureCallsImpure,
        ),
        (
            "pure void f(int* p, int v) { p[0] = v; }\nint main() { return 0; }",
            Code::PureWritesExternal,
        ),
        (
            "pure void f(int* p) { free(p); }\nint main() { return 0; }",
            Code::PureFreesForeign,
        ),
        (
            "int* g;\npure void f() { int* q = g; }\nint main() { return 0; }",
            Code::PureAssignsExternalPtrWithoutCast,
        ),
    ];
    for (src, code) in cases {
        let err = compile(src, ChainOptions::default()).unwrap_err();
        assert!(err.has_code(*code), "expected {code:?} for:\n{src}");
    }
}
