//! Figure-harness smoke tests at the integration level: every figure of
//! the paper regenerates, renders, serializes, and keeps its headline
//! qualitative claims (the detailed per-figure shape assertions live in
//! `apps::figures::tests`).

use pure_c::prelude::*;

#[test]
fn all_nine_figures_regenerate() {
    let figs = all_figures();
    assert_eq!(figs.len(), 9);
    let ids: Vec<&str> = figs.iter().map(|f| f.id.as_str()).collect();
    assert_eq!(
        ids,
        vec!["fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11"]
    );
    for f in &figs {
        let txt = f.render();
        assert!(txt.contains("series \\ cores"), "{txt}");
        for s in &f.series {
            assert_eq!(s.points.len(), CORES.len(), "{} / {}", f.id, s.label);
            for (c, v) in &s.points {
                assert!(CORES.contains(c));
                assert!(v.is_finite() && *v > 0.0, "{}:{} at {c}", f.id, s.label);
            }
        }
    }
}

#[test]
fn headline_claims_hold() {
    // Fig. 3: pure wins big at 64 cores thanks to the parallel init loop.
    let f3 = apps::figures::fig3_matmul_gcc();
    assert!(f3.find("pure").at(64) < f3.find("PluTo").at(64) * 0.7);
    // Fig. 3: PluTo is non-monotonic 16 → 32 (first-touch NUMA).
    assert!(f3.find("PluTo").at(32) > f3.find("PluTo").at(16));
    // Fig. 4: ICC vectorizes the extracted dot (≥2.5× at 1 core).
    let f4 = apps::figures::fig4_matmul_icc();
    assert!(f4.find("pure").at(1) * 2.5 < f3.find("pure").at(1));
    // Fig. 6: inlined PluTo beats extracted pure on the tiny stencil.
    let f6 = apps::figures::fig6_heat_time();
    assert!(f6.find("PluTo-SICA (GCC)").at(1) < f6.find("pure (GCC)").at(1));
    // Fig. 9: best satellite speedup is auto + ICC at 64 cores.
    let f9 = apps::figures::fig9_satellite_speedup();
    let best = f9.find("auto (ICC)").at(64);
    for s in &f9.series {
        assert!(s.at(64) <= best + 1e-9, "{}", s.label);
    }
    // Fig. 10: auto vs manual within the paper's 0.8 ms bound.
    let f10 = apps::figures::fig10_lama_time();
    assert!(f10.find("auto (GCC)").at(64) - f10.find("manual static (GCC)").at(64) <= 8e-4);
}

#[test]
fn figures_serialize_to_json_and_back() {
    for f in all_figures() {
        let json = serde_json::to_string(&f).unwrap();
        let back: Figure = serde_json::from_str(&json).unwrap();
        assert_eq!(back.id, f.id);
        assert_eq!(back.series.len(), f.series.len());
    }
}

#[test]
fn speedup_figures_are_consistent_with_time_figures() {
    let t = apps::figures::fig6_heat_time();
    let s = apps::figures::fig7_heat_speedup();
    let t_seq = t.baselines[0].1;
    for (ts, ss) in t.series.iter().zip(&s.series) {
        for &c in &CORES {
            let expect = t_seq / ts.at(c);
            assert!(
                (ss.at(c) - expect).abs() < 1e-9,
                "speedup mismatch for {} at {c}",
                ts.label
            );
        }
    }
}
