//! # pure-c — *Pure Functions in C: A Small Keyword for Automatic
//! Parallelization*, reproduced in Rust
//!
//! A from-scratch reproduction of the compiler chain of Süß et al.
//! (CLUSTER 2017 / IJPP 2020): the `pure` keyword for C, a verifying
//! purity pass, a PluTo-style polyhedral parallelizer, a mini OpenMP
//! runtime, a C interpreter for validation, the machine model of the
//! paper's 4×Opteron-6272 testbed, and the four evaluation applications.
//!
//! ```
//! use pure_c::prelude::*;
//!
//! let src = "
//! pure float mult(float a, float b) { return a * b; }
//! int main() {
//!     float* acc = (float*) malloc(64 * sizeof(float));
//!     for (int i = 0; i < 64; i++) acc[i] = mult(i, 2.0f);
//!     return 0;
//! }";
//! let out = compile(src, ChainOptions::default()).unwrap();
//! assert!(out.text.contains("#pragma omp parallel for"));
//! assert!(!out.text.contains("pure"));
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every figure.

pub use apps;
pub use cfront;
pub use cinterp;
pub use cprep;
pub use machine;
pub use polyhedral;
pub use purec_core;

/// The most common entry points, re-exported flat.
pub mod prelude {
    pub use apps::{all_figures, Figure, Series, CORES};
    pub use cfront::{parse, print_unit, Diagnostics};
    pub use cinterp::{InterpOptions, Program, Trap};
    pub use machine::{parallel_for, Machine, OmpSchedule};
    pub use polyhedral::{CodegenOptions, PolyccOptions, SicaParams};
    pub use purec::chain::{compile, compile_and_run, ChainOptions};
    pub use purec_core::{run_pc_cc, PcCcOptions, PureSet};
}
